"""Microbenchmarks of the simulator itself: cycles/second throughput of
each core model and the trace generator (pytest-benchmark's bread and
butter — these DO use repeated rounds)."""

import pytest

from repro.common.params import (
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.cores import build_core
from repro.workloads import get_profile
from repro.workloads.generator import SyntheticWorkload

TRACE = None


def _trace():
    global TRACE
    if TRACE is None:
        TRACE = SyntheticWorkload(get_profile("hmmer")).generate(4000)
    return TRACE


@pytest.mark.parametrize("factory", [make_ino_config, make_casino_config,
                                     make_ooo_config],
                         ids=["ino", "casino", "ooo"])
def test_core_simulation_throughput(benchmark, factory):
    trace = _trace()
    core = build_core(factory())

    def run():
        return core.run(trace).committed

    committed = benchmark(run)
    assert committed == 4000


def test_trace_generation_throughput(benchmark):
    profile = get_profile("gcc")

    def gen():
        return len(SyntheticWorkload(profile).generate(4000))

    n = benchmark(gen)
    assert n == 4000
