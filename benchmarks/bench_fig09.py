"""Figure 9 benchmark: core area and energy.

Paper shape: CASINO ~+5% area over InO (OoO much larger); energy InO <
CASINO (+22%) << OoO (+94%); CASINO has the best performance/area; the
OoO+NoLQ variant trims OoO's energy.
"""

from repro.experiments import fig9_area_energy


def test_fig9_area_energy(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig9_area_energy.run(runner, profiles),
        iterations=1, rounds=1)
    ino, cas, ooo = result["ino"], result["casino"], result["ooo"]
    assert 1.02 < cas["area_rel"] < 1.12          # ~+5% in the paper
    assert ooo["area_rel"] > 1.20
    assert 1.05 < cas["energy_rel"] < 1.45        # ~+22% in the paper
    assert ooo["energy_rel"] > 1.6                # ~+94% in the paper
    assert cas["perf_per_area"] > max(1.0, ooo["perf_per_area"] * 0.95)
    assert result["ooo+nolq"]["energy_rel"] <= ooo["energy_rel"]
