"""Figure 11 benchmark: width scaling (2/3/4-way).

Paper shape: performance grows with width for CASINO and OoO; CASINO keeps
the best performance-per-energy at every width, reaching ~2x the OoO PER at
4-way while staying within striking distance on raw performance.
"""

from repro.experiments import fig11_wider_issue


def test_fig11_wider_issue(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig11_wider_issue.run(runner, profiles),
        iterations=1, rounds=1)
    for kind in ("casino", "ooo"):
        assert result[(kind, 4)]["perf"] > result[(kind, 2)]["perf"]
    for width in (2, 3, 4):
        assert result[("casino", width)]["per"] > result[("ooo", width)]["per"]
        assert result[("casino", width)]["per"] > result[("ino", 2)]["per"] * 0.95
    # 4-way CASINO approaches 2x the OoO energy efficiency (paper: 2.0x).
    ratio = result[("casino", 4)]["per"] / result[("ooo", 4)]["per"]
    assert ratio > 1.5
