"""Figure 6 benchmark: per-app IPC of LSC / Freeway / CASINO / OoO vs InO.

Paper shape: geomeans LSC +28% < Freeway +34% < CASINO +51% < OoO +68%,
CASINO gaining on every application.
"""

from repro.experiments import fig6_ipc


def test_fig6_ipc(benchmark, runner, profiles):
    result = benchmark.pedantic(lambda: fig6_ipc.run(runner, profiles),
                                iterations=1, rounds=1)
    g = {name: result[name]["geomean"] for name in result}
    assert 1.0 < g["lsc"] <= g["freeway"] * 1.02
    assert g["freeway"] < g["casino"] < g["ooo"]
    # CASINO gains on every application.
    assert all(v > 1.0 for app, v in result["casino"].items())
    # CASINO lands in the paper's neighbourhood (+51% on the full suite).
    assert 1.25 < g["casino"] < 1.85
