"""Figure 2 benchmark: SpecInO scheduling potential.

Paper shape: InO < SpecInO[2,1] Non-mem < SpecInO[2,1] All < OoO, with
memory speculation contributing a large share of the gain.
"""

from repro.experiments import fig2_specino_potential


def test_fig2_specino_potential(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig2_specino_potential.run(runner, profiles),
        iterations=1, rounds=1)
    nonmem = result["specino[2,1]-nonmem"]
    allmem = result["specino[2,1]"]
    ooo = result["ooo"]
    assert 1.0 < nonmem < allmem < ooo
    # MLP matters: All-Types adds a solid margin over Non-mem (paper: +16pp).
    assert allmem - nonmem > 0.08
