"""Sensitivity benchmarks (extensions beyond the paper's figures).

MLP is capped by the instruction window, so the windowed cores' speedups
over InO shrink together toward the serial-miss bound as memory slows,
while staying above 1 and tracking each other — the shape
`repro.experiments.sensitivity_memory` documents and these benches pin.
"""

from repro.experiments import sensitivity_memory


def test_dram_latency_sensitivity(benchmark, profiles):
    result = benchmark.pedantic(
        lambda: sensitivity_memory.run_latency_sweep(
            profiles[:5], n_instrs=8_000, warmup=2_000),
        iterations=1, rounds=1)
    scales = sorted(result)
    # Window-capped MLP: speedups shrink monotonically as memory slows...
    casino = [result[s]["casino"] for s in scales]
    ooo = [result[s]["ooo"] for s in scales]
    assert casino == sorted(casino, reverse=True)
    assert ooo == sorted(ooo, reverse=True)
    # ...while CASINO beats InO at every point, stays below OoO, and
    # tracks OoO (the gap ratio moves by < 15% across an 8x latency range).
    ratios = [result[s]["casino"] / result[s]["ooo"] for s in scales]
    for scale in scales:
        assert 1.0 < result[scale]["casino"] <= result[scale]["ooo"] * 1.02
    assert max(ratios) / min(ratios) < 1.15


def test_prefetch_ablation(benchmark, profiles):
    result = benchmark.pedantic(
        lambda: sensitivity_memory.run_prefetch_ablation(
            profiles[:5], n_instrs=8_000, warmup=2_000),
        iterations=1, rounds=1)
    # Without the prefetcher, more raw latency is exposed: windowed
    # schedulers gain at least as much over InO.
    assert result["off"]["casino"] >= result["on"]["casino"] * 0.97
    assert result["off"]["ooo"] >= result["on"]["ooo"] * 0.97
