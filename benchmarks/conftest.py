"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark regenerates one table/figure of the paper on the
representative 8-app subset (set ``REPRO_BENCH_FULL=1`` for all 25 apps)
and asserts the paper's qualitative shape on the result.  The runner is
session-scoped so later benches reuse earlier simulations where configs
overlap; each bench's reported time is the incremental cost of its figure.
"""

import os

import pytest

from repro.experiments.common import QUICK_APPS
from repro.harness.runner import Runner
from repro.workloads.suite import SUITE, suite_profiles


@pytest.fixture(scope="session")
def runner():
    return Runner(n_instrs=12_000, warmup=3_000)


@pytest.fixture(scope="session")
def profiles():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return suite_profiles("all")
    return [SUITE[name] for name in QUICK_APPS]
