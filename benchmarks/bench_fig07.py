"""Figure 7 benchmark: conditional vs conventional renaming.

Paper shape: ConD[32,14] allocates ~27% fewer registers per cycle than
ConV[32,14] and runs ~6% faster; ConV[48,24] shows that the conditional
scheme effectively enlarges the PRF.
"""

from repro.experiments import fig7_renaming


def test_fig7_renaming(benchmark, runner, profiles):
    result = benchmark.pedantic(lambda: fig7_renaming.run(runner, profiles),
                                iterations=1, rounds=1)
    conv, cond, big = (result["ConV[32,14]"], result["ConD[32,14]"],
                       result["ConV[48,24]"])
    assert cond["speedup"] > 1.0
    assert cond["allocs_per_cycle"] < 0.85 * conv["allocs_per_cycle"]
    assert big["speedup"] >= cond["speedup"] * 0.95
    # Conditional renaming raises the combined issue rate.
    rate = lambda r: (r["spec_mem"] + r["spec_nonmem"]
                      + r["iq_mem"] + r["iq_nonmem"])
    assert rate(cond) > rate(conv)
