"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs its design rests on: the OSCA
size heuristic (Section III-C4 "we use a heuristic ... 64 counters"), the
S-IQ/IQ split of the scheduling budget, and the data-buffer size.
"""

import dataclasses

from repro.common.params import DISAMBIG_NOLQ, make_casino_config
from repro.common.stats import geomean


def _perf(runner, profiles, cfg):
    return geomean(runner.run(cfg, p).ipc for p in profiles)


def test_osca_size_ablation(benchmark, runner, profiles):
    """Larger OSCAs filter more searches (fewer aliases); 64 already gets
    most of the benefit — the paper's heuristic design point."""
    base = make_casino_config()

    def run():
        out = {}
        for entries in (8, 64, 512):
            cfg = dataclasses.replace(base, name=f"osca{entries}",
                                      osca_entries=entries)
            searches = sum(runner.run(cfg, p).stats.get("sq_searches")
                           for p in profiles)
            skips = sum(runner.run(cfg, p).stats.get("osca_search_skips")
                        for p in profiles)
            out[entries] = (searches, skips)
        nolq = dataclasses.replace(base, name="no-osca",
                                   disambiguation=DISAMBIG_NOLQ)
        out["off"] = (sum(runner.run(nolq, p).stats.get("sq_searches")
                          for p in profiles), 0)
        return out

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    # Any OSCA beats none; more counters filter at least as well.
    assert result[8][0] < result["off"][0]
    assert result[64][0] <= result[8][0]
    assert result[512][0] <= result[64][0] * 1.02
    # 64 counters already capture most of the skip opportunity.
    assert result[64][1] > 0.85 * result[512][1]


def test_siq_split_ablation(benchmark, runner, profiles):
    """Splitting the 16-entry budget: the Table I point (4/12) should not
    lose to the extremes."""
    base = make_casino_config()

    def run():
        return {s: _perf(runner, profiles,
                         dataclasses.replace(base, name=f"split{s}",
                                             siq_size=s, iq_size=16 - s))
                for s in (2, 4, 8, 12)}

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    table_point = result[4]
    assert table_point >= 0.95 * max(result.values())


def test_data_buffer_ablation(benchmark, runner, profiles):
    """The 4-entry data buffer is sized to the in-flight IQ results; going
    below it costs, going above barely helps."""
    base = make_casino_config()

    def run():
        return {n: _perf(runner, profiles,
                         dataclasses.replace(base, name=f"dbuf{n}",
                                             data_buffer_size=n))
                for n in (1, 4, 16)}

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result[4] >= result[1]
    assert result[16] <= result[4] * 1.05
