"""Figure 10 benchmark: speculative-issue design space.

Paper shape: (a) the IQ-issue fraction grows with IQ size and performance
peaks in the interior of the sweep (paper: 12 entries); (b) [WS, SO] around
[2,1] is the sweet spot, with [2,2] below [2,1].
"""

from repro.experiments import fig10_design_space


def test_fig10a_iq_size(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig10_design_space.run_iq_sweep(runner, profiles),
        iterations=1, rounds=1)
    sizes = fig10_design_space.IQ_SIZES
    fracs = [result[n]["iq_issue_frac"] for n in sizes]
    assert fracs == sorted(fracs)  # monotone growth of the Issue fraction
    # Growing the IQ from 4 to 12 helps; the tail of the sweep saturates
    # (paper shows a slight decline past 12; we require saturation).
    assert result[12]["speedup"] > 1.02
    assert result[20]["speedup"] < result[12]["speedup"] * 1.08


def test_fig10b_ws_so(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig10_design_space.run_ws_so_sweep(runner, profiles),
        iterations=1, rounds=1)
    assert result[(2, 1)] > result[(1, 1)]
    assert result[(2, 2)] <= result[(2, 1)] * 1.01
    # No configuration runs away from [2,1] (the paper's chosen point).
    assert max(result.values()) < result[(2, 1)] * 1.05
