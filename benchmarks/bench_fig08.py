"""Figure 8 benchmark: memory disambiguation schemes on CASINO.

Paper shape: AGI-ordering ~-11% perf with zero LQ activity; NoLQ restores
performance but +31% SQ searches; the OSCA removes ~70% of NoLQ's searches
and adds ~5 points of energy efficiency.
"""

from repro.experiments import fig8_memdisambig


def test_fig8_memdisambig(benchmark, runner, profiles):
    result = benchmark.pedantic(
        lambda: fig8_memdisambig.run(runner, profiles),
        iterations=1, rounds=1)
    agi, nolq, osca = (result["agi_ordering"], result["nolq"],
                       result["nolq_osca"])
    assert agi["perf"] < 0.97           # ordering AGIs costs performance
    assert agi["violations"] == 0
    assert nolq["perf"] > agi["perf"]
    assert nolq["sq_searches"] > 1.10   # value-check adds commit searches
    assert osca["sq_searches"] < 0.70 * nolq["sq_searches"]
    assert osca["perf"] == nolq["perf"]  # filtering is timing-neutral here
    assert osca["efficiency"] > nolq["efficiency"]
    assert osca["lq_ops"] == 0.0
