#!/usr/bin/env python
"""Host-side simulator benchmark: how fast does the model itself run?

Simulated results are deterministic, so the repo's correctness suite never
notices when a refactor makes the simulator 2x slower to *execute*.  This
harness times a fixed set of (core, app) simulations on the host:

* a warm-up iteration per pair (allocator/caches), then ``--repeats``
  timed iterations; the report carries the **median and IQR**;
* a pure-Python **calibration loop** timed alongside, so scores can be
  normalised (``median / calibration``) and compared across hosts of
  different speeds — the CI gate checks normalised scores, not seconds;
* a provenance manifest (git rev, python, platform, config hashes) so a
  checked-in baseline is attributable.

Run:    python scripts/bench.py [--quick] [--out BENCH_core.json]
Gate:   python scripts/bench.py --quick --check \
            --baseline BENCH_core.json --tolerance 0.25

``--check`` exits 1 when any pair's normalised median regresses more than
``--tolerance`` (fraction) over the baseline, printing the offenders.
"""

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.params import (  # noqa: E402
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.cores import build_core  # noqa: E402
from repro.obs.provenance import config_hash, git_rev  # noqa: E402
from repro.workloads.generator import SyntheticWorkload  # noqa: E402
from repro.workloads.suite import get_profile  # noqa: E402

_CORES = {"ino": make_ino_config, "casino": make_casino_config,
          "ooo": make_ooo_config}

#: (core, app) pairs spanning the cost spectrum: the cheap scoreboard
#: core, the cascaded-queue core, and the OoO core on a memory-bound and
#: a compute-bound app.
PAIRS = (("ino", "hmmer"), ("ino", "mcf"),
         ("casino", "hmmer"), ("casino", "mcf"),
         ("ooo", "hmmer"), ("ooo", "mcf"))

#: Pairs also timed with quiescence fast-forward disabled
#: (``<core>/<app>:noskip`` keys).  mcf is DRAM-bound, so these measure
#: what the event-driven skip layer buys; ``--check`` additionally
#: requires skip-on to beat skip-off here by ``--min-ff-speedup``.
NOSKIP_PAIRS = (("ino", "mcf"), ("casino", "mcf"))

#: Legs the cross-tier gate covers: both the DRAM-bound and the
#: compute-bound app on the kernelized cores, so a single-workload
#: regression in the vectorized tier cannot hide behind the other.
TIER_PAIRS = (("ino", "mcf"), ("casino", "mcf"),
              ("ino", "hmmer"), ("casino", "hmmer"))


def default_engine_tier() -> str:
    """The tier this process would auto-select for a kernelized core —
    what the manifest records, and what the cross-tier gate keys on."""
    from repro.engine.vectortier import select_kernel
    core = build_core(_CORES["ino"]())
    return ("vector"
            if select_kernel(core, None, False) is not None else "pure")


def calibrate(iters: int = 300_000, repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload (min over ``repeats``).

    The loop shape (attribute-free arithmetic + list append) tracks the
    interpreter dispatch cost that dominates the simulator itself.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc, out = 0, []
        for i in range(iters):
            acc = (acc + i * 31) & 0xFFFF
            if not i & 1023:
                out.append(acc)
        best = min(best, time.perf_counter() - start)
    return best


def bench_pair(core_name: str, app: str, n_instrs: int, warmup: int,
               repeats: int, fast_forward=None) -> dict:
    cfg = _CORES[core_name]()
    trace = SyntheticWorkload(get_profile(app)).generate(n_instrs)
    build_core(cfg).run(trace, warmup=warmup,       # untimed warm-up pass
                        fast_forward=fast_forward)
    times = []
    cycles = 0
    for _ in range(repeats):
        core = build_core(cfg)
        start = time.perf_counter()
        stats = core.run(trace, warmup=warmup, fast_forward=fast_forward)
        times.append(time.perf_counter() - start)
        cycles = int(stats.cycles)
    median = statistics.median(times)
    if len(times) >= 2:
        quartiles = statistics.quantiles(sorted(times), n=4,
                                         method="inclusive")
        iqr = quartiles[2] - quartiles[0]
    else:
        iqr = 0.0
    return {"median_s": median, "iqr_s": iqr, "repeats": repeats,
            "cycles": cycles, "kcycles_per_s": cycles / median / 1e3,
            "engine_tier": core.engine_tier_used,
            "config_hash": config_hash(cfg)}


def bench_pool_sweep(n_instrs: int, warmup: int, repeats: int,
                     workers: int = 2) -> dict:
    """Wall time for the PAIRS batch through the simulation-service
    worker pool, cold store each repeat — the service path the pooled
    sweep (``sweep --workers``) takes, dispatch overhead included."""
    import tempfile

    from repro.service.jobs import JobSpec
    from repro.service.pool import SimulationPool
    from repro.service.store import ResultStore

    specs = [JobSpec.make(_CORES[core_name](), get_profile(app),
                          n_instrs=n_instrs, warmup=warmup)
             for core_name, app in PAIRS]
    times = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            with SimulationPool(n_workers=workers,
                                store=ResultStore(tmp)) as pool:
                start = time.perf_counter()
                records = pool.run_batch(specs)
                times.append(time.perf_counter() - start)
            assert not any(r["failed"] for r in records)
    median = statistics.median(times)
    if len(times) >= 2:
        quartiles = statistics.quantiles(sorted(times), n=4,
                                         method="inclusive")
        iqr = quartiles[2] - quartiles[0]
    else:
        iqr = 0.0
    return {"median_s": median, "iqr_s": iqr, "repeats": repeats,
            "workers": workers, "jobs": len(specs),
            "jobs_per_s": len(specs) / median}


def bench_submit_throughput(repeats: int, jobs: int = 250) -> dict:
    """Service submit throughput, journal-on vs journal-off.

    Every spec's result is pre-seeded in the store, so each submission
    exercises the full acceptance path (key, store hit, registry,
    journal write-through) without simulating — isolating what the
    write-ahead journal costs per accepted job.  The gate is
    self-relative (same host, same seconds), so it needs no baseline.

    The journal's per-submit cost (~15us against a ~300us acceptance
    path) sits well below this host's leg-to-leg jitter, so the legs
    are interleaved in alternating order, GC is paused while a leg is
    timed, and the best-of-N time is compared — the min estimates the
    noise-free floor that median-of-few cannot resolve.
    """
    import gc
    import tempfile

    from repro.service.jobs import JobSpec
    from repro.service.journal import Journal
    from repro.service.pool import SimulationPool
    from repro.service.server import SimulationService
    from repro.service.store import ResultStore

    profile = get_profile("hmmer")
    cfg = _CORES["ino"]()
    specs = [JobSpec.make(cfg, profile, n_instrs=1_000 + i, warmup=100)
             for i in range(jobs)]
    on_times, off_times = [], []
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "store")
        for spec in specs:
            store.put(spec.key(), {"schema": 1, "bench": True})
        pool = SimulationPool(n_workers=1, store=store)
        for spec in specs:  # untimed warm pass (page cache, allocator)
            SimulationService(pool, store).submit(spec)
        for rep in range(repeats):
            legs = [("on", on_times), ("off", off_times)]
            if rep & 1:  # alternate order so neither leg always runs cold
                legs.reverse()
            for leg, times in legs:
                journal = None
                if leg == "on":
                    journal = Journal(Path(tmp) / f"journal-{rep}",
                                      sync="batch")
                service = SimulationService(pool, store, journal=journal)
                gc.collect()
                gc.disable()
                try:
                    start = time.perf_counter()
                    for spec in specs:
                        service.submit(spec)
                    times.append(time.perf_counter() - start)
                finally:
                    gc.enable()
                if journal is not None:
                    journal.close()
        pool.close()
    best_on = min(on_times)
    best_off = min(off_times)
    return {"jobs": jobs, "repeats": repeats,
            "journal_on_s": best_on, "journal_off_s": best_off,
            "jobs_per_s": jobs / best_on,
            "journal_overhead": best_on / best_off - 1.0}


def bench_telemetry_submit(repeats: int, jobs: int = 250) -> dict:
    """Cached-submit throughput, telemetry-on vs telemetry-off.

    Same shape as :func:`bench_submit_throughput` but isolating the
    telemetry plane: neither leg journals, so the delta is purely the
    trace-id mint, span-log appends and metric increments riding each
    accepted job.  The hot cached path is the one the sweep drivers
    hammer, so this is where per-job observability cost would show.
    Interleaved legs, GC paused while timing, best-of-N compared.
    """
    import gc
    import tempfile

    from repro.service.jobs import JobSpec
    from repro.service.pool import SimulationPool
    from repro.service.server import SimulationService
    from repro.service.store import ResultStore

    profile = get_profile("hmmer")
    cfg = _CORES["ino"]()
    specs = [JobSpec.make(cfg, profile, n_instrs=1_000 + i, warmup=100)
             for i in range(jobs)]
    on_times, off_times = [], []
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "store")
        for spec in specs:
            store.put(spec.key(), {"schema": 1, "bench": True})
        pool = SimulationPool(n_workers=1, store=store)
        for spec in specs:  # untimed warm pass (page cache, allocator)
            SimulationService(pool, store, telemetry=False).submit(spec)
        for rep in range(repeats):
            legs = [("on", on_times), ("off", off_times)]
            if rep & 1:  # alternate order so neither leg always runs cold
                legs.reverse()
            for leg, times in legs:
                pool.on_event = None  # drop the previous leg's hook
                service = SimulationService(pool, store,
                                            telemetry=(leg == "on"))
                gc.collect()
                gc.disable()
                try:
                    start = time.perf_counter()
                    for spec in specs:
                        service.submit(spec)
                    times.append(time.perf_counter() - start)
                finally:
                    gc.enable()
        pool.close()
    best_on = min(on_times)
    best_off = min(off_times)
    return {"jobs": jobs, "repeats": repeats,
            "telemetry_on_s": best_on, "telemetry_off_s": best_off,
            "jobs_per_s": jobs / best_on,
            "telemetry_overhead": best_on / best_off - 1.0}


def _hist_quantile(buckets, counts, q: float) -> float:
    """Linear-interpolated quantile from fixed histogram buckets."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for index, count in enumerate(counts):
        upper = (buckets[index] if index < len(buckets)
                 else buckets[-1])
        if count and cumulative + count >= target:
            fraction = (target - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
        lower = upper
    return buckets[-1]


def _queue_wait_counts(service) -> list:
    for series in service.telemetry.snapshot()["series"]:
        if series["name"] == "repro_queue_wait_seconds":
            return list(series["counts"]), list(series["buckets"])
    return [], []


def bench_cluster_throughput(repeats: int, nodes: int = 2,
                             node_workers: int = 1,
                             jobs: int = 16) -> dict:
    """Cluster throughput under closed-loop load vs a single pool.

    Baseline: the same cache-miss batch through one local
    ``SimulationPool`` sized like one node.  Cluster: a coordinator +
    ``nodes`` real node processes, driven over HTTP by closed-loop
    client threads at swept concurrency (each submits, long-polls to
    completion, submits the next).  Queue-wait p50/p95 come from the
    coordinator's ``repro_queue_wait_seconds`` histogram, diffed per
    leg.

    Workload: with fewer host cores than ``nodes x node_workers + 1``
    (this 1-CPU container), pure-CPU jobs cannot show cluster scaling —
    every simulator would share one core.  There the jobs carry a small
    ``test_stall_s`` sleep (first-delivery only, not part of the result
    key) modelling each node's independent compute capacity, and the
    entry self-describes via ``workload``.  On real multi-core hosts
    the sweep runs pure-CPU automatically.
    """
    import os
    import tempfile
    import threading

    from repro.service.chaos import ClusterChaosFabric
    from repro.service.client import ServiceClient
    from repro.service.jobs import JobSpec
    from repro.service.pool import SimulationPool
    from repro.service.store import ResultStore

    cores = os.cpu_count() or 1
    stall_s = 0.0 if cores >= nodes * node_workers + 1 else 0.45
    workload = ("cpu" if stall_s == 0.0
                else f"stall-augmented ({stall_s:g}s/job)")
    profile = get_profile("hmmer")
    cfg = _CORES["ino"]()

    leg_seq = iter(range(10_000))

    def batch():
        # Distinct n_instrs per job and leg: every submission is a
        # genuine cache miss, never served from the store.  Tags are
        # sequential so all legs stay in one narrow n_instrs band and
        # per-job simulation cost is comparable across legs.
        tag = next(leg_seq)
        return [JobSpec.make(cfg, profile,
                             n_instrs=900 + tag * jobs + i,
                             warmup=200, test_stall_s=stall_s)
                for i in range(jobs)]

    base_times = []
    with tempfile.TemporaryDirectory() as tmp:
        with SimulationPool(n_workers=node_workers,
                            store=ResultStore(tmp)) as pool:
            for rep in range(repeats):
                specs = batch()
                start = time.perf_counter()
                records = pool.run_batch(specs)
                base_times.append(time.perf_counter() - start)
                assert not any(r["failed"] for r in records)
    base_s = min(base_times)
    base_jps = jobs / base_s

    sweep = {}
    with tempfile.TemporaryDirectory() as tmp:
        fabric = ClusterChaosFabric(tmp, node_workers=node_workers)
        fabric.start()
        try:
            for _ in range(nodes):
                fabric.spawn_node()
            fabric.wait_nodes_alive(nodes)
            for conc in (2, 8):
                leg_times = []
                p50 = p95 = 0.0
                for rep in range(repeats):
                    specs = batch()
                    before, _ = _queue_wait_counts(fabric.service)
                    shares = [specs[c::conc] for c in range(conc)]
                    errors = []

                    def drive(share):
                        client = ServiceClient(fabric.url, timeout=60)
                        try:
                            for spec in share:  # closed loop
                                body = {
                                    "core": "ino", "app": "hmmer",
                                    "n": spec.n_instrs,
                                    "warmup": spec.warmup,
                                    "test_stall_s": spec.test_stall_s,
                                }
                                (entry, ) = client.submit(
                                    body, retries_on_busy=8,
                                    deadline_s=120)
                                final = client.wait(
                                    [entry["id"]], timeout_s=120,
                                    long_poll_s=10.0)[entry["id"]]
                                if final["status"] != "done":
                                    errors.append(final)
                        except Exception as exc:  # surfaced below
                            errors.append(exc)
                        finally:
                            client.close()

                    threads = [threading.Thread(target=drive, args=(s, ))
                               for s in shares if s]
                    start = time.perf_counter()
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    leg_times.append(time.perf_counter() - start)
                    assert not errors, errors[:2]
                    after, buckets = _queue_wait_counts(fabric.service)
                    delta = [b - a for a, b in zip(before, after)]
                    p50 = _hist_quantile(buckets, delta, 0.50)
                    p95 = _hist_quantile(buckets, delta, 0.95)
                best = min(leg_times)
                sweep[str(conc)] = {
                    "clients": conc, "wall_s": best,
                    "jobs_per_s": jobs / best,
                    "queue_wait_p50_s": p50,
                    "queue_wait_p95_s": p95,
                }
        finally:
            fabric.stop()

    cluster_jps = max(leg["jobs_per_s"] for leg in sweep.values())
    return {"nodes": nodes, "node_workers": node_workers, "jobs": jobs,
            "repeats": repeats, "workload": workload,
            "host_cores": cores,
            "single_pool_s": base_s,
            "single_pool_jobs_per_s": base_jps,
            "concurrency": sweep,
            "cluster_jobs_per_s": cluster_jps,
            "cluster_speedup": cluster_jps / base_jps}


def run_suite(n_instrs: int, warmup: int, repeats: int) -> dict:
    calibration = calibrate()
    results = {}
    for core_name, app in PAIRS:
        entry = bench_pair(core_name, app, n_instrs, warmup, repeats)
        entry["normalized"] = entry["median_s"] / calibration
        results[f"{core_name}/{app}"] = entry
        print(f"  {core_name}/{app}: median {entry['median_s']:.3f}s "
              f"(IQR {entry['iqr_s']:.3f}s, "
              f"{entry['kcycles_per_s']:.0f} kcycles/s, "
              f"normalized {entry['normalized']:.2f})")
    for core_name, app in NOSKIP_PAIRS:
        entry = bench_pair(core_name, app, n_instrs, warmup, repeats,
                           fast_forward=False)
        entry["normalized"] = entry["median_s"] / calibration
        results[f"{core_name}/{app}:noskip"] = entry
        skip_on = results[f"{core_name}/{app}"]
        skip_on["speedup_vs_noskip"] = (entry["median_s"]
                                        / skip_on["median_s"])
        print(f"  {core_name}/{app}:noskip: median {entry['median_s']:.3f}s"
              f" (fast-forward buys "
              f"{skip_on['speedup_vs_noskip']:.2f}x)")
    pool_entry = bench_pool_sweep(n_instrs, warmup, repeats)
    pool_entry["normalized"] = pool_entry["median_s"] / calibration
    results["pool/sweep"] = pool_entry
    print(f"  pool/sweep: median {pool_entry['median_s']:.3f}s for "
          f"{pool_entry['jobs']} jobs x {pool_entry['workers']} workers "
          f"({pool_entry['jobs_per_s']:.1f} jobs/s, "
          f"normalized {pool_entry['normalized']:.2f})")
    submit_entry = bench_submit_throughput(max(repeats * 3, 9))
    results["service/submit"] = submit_entry
    print(f"  service/submit: {submit_entry['jobs_per_s']:.0f} jobs/s "
          f"journal-on ({submit_entry['journal_on_s']:.3f}s vs "
          f"{submit_entry['journal_off_s']:.3f}s journal-off, "
          f"overhead {submit_entry['journal_overhead']:+.1%})")
    tel_entry = bench_telemetry_submit(max(repeats * 3, 9))
    results["service/telemetry"] = tel_entry
    print(f"  service/telemetry: {tel_entry['jobs_per_s']:.0f} jobs/s "
          f"telemetry-on ({tel_entry['telemetry_on_s']:.3f}s vs "
          f"{tel_entry['telemetry_off_s']:.3f}s telemetry-off, "
          f"overhead {tel_entry['telemetry_overhead']:+.1%})")
    cluster_entry = bench_cluster_throughput(min(repeats, 3))
    results["service/cluster"] = cluster_entry
    busiest = max(cluster_entry["concurrency"].values(),
                  key=lambda leg: leg["jobs_per_s"])
    print(f"  service/cluster: {cluster_entry['cluster_jobs_per_s']:.1f} "
          f"jobs/s over {cluster_entry['nodes']} nodes "
          f"({cluster_entry['cluster_speedup']:.2f}x single pool, "
          f"{cluster_entry['workload']}; queue wait "
          f"p50 {busiest['queue_wait_p50_s']:.3f}s / "
          f"p95 {busiest['queue_wait_p95_s']:.3f}s at "
          f"{busiest['clients']} clients)")
    return {
        "manifest": {
            "git_rev": git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "engine_tier": default_engine_tier(),
            "n_instrs": n_instrs, "warmup": warmup, "repeats": repeats,
        },
        "calibration_s": calibration,
        "results": results,
    }


def load_baseline(baseline_path: Path):
    """The parsed baseline report, or None (with a message) on failure."""
    try:
        with open(baseline_path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return None


def check_regressions(report: dict, baseline: dict, baseline_path: Path,
                      tolerance: float) -> int:
    """Exit status: 1 when any normalised median regressed > tolerance,
    or when the baseline is missing a leg this run produced.

    A missing leg is a hard, *named* failure — a baseline predating a
    new benchmark (say a ``:noskip`` pair) silently gating nothing is
    exactly the failure mode this harness exists to prevent; the fix is
    to regenerate and commit ``BENCH_core.json``.
    """
    base_results = baseline.get("results", {})
    failures = []
    missing = []
    for key, entry in report["results"].items():
        base = base_results.get(key)
        if base is None or not base.get("normalized"):
            if entry.get("normalized"):
                missing.append(key)
                print(f"  {key}: MISSING from baseline")
            else:
                print(f"  {key}: not normalised (skipped)")
            continue
        ratio = entry["normalized"] / base["normalized"]
        verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(f"  {key}: {ratio:.2f}x baseline ({verdict})")
        if ratio > 1.0 + tolerance:
            failures.append((key, ratio))
    status = 0
    if missing:
        print(f"\nFAIL: baseline {baseline_path} has no entry for "
              f"{len(missing)} leg(s) this run produced — regenerate the "
              f"baseline:", file=sys.stderr)
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        status = 1
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{tolerance:.0%} vs {baseline_path}:", file=sys.stderr)
        for key, ratio in failures:
            print(f"  {key}: {ratio:.2f}x baseline", file=sys.stderr)
        status = 1
    if not status:
        print(f"\nOK: no benchmark regressed more than {tolerance:.0%}")
    return status


def check_tier_speedup(report: dict, baseline: dict,
                       min_speedup: float) -> int:
    """Cross-tier gate: the vectorized tier must buy ``min_speedup`` on
    every :data:`TIER_PAIRS` leg relative to the pure interpreter.

    Engages only when this run's auto-selected tier differs from the
    baseline's (manifests without the key predate the vectorized tier
    and count as ``pure``) — e.g. the first ``--check`` after the tier
    lands, or a ``REPRO_PURE_PY=1`` run against a vectorized baseline.
    Same-tier drift is the ``--tolerance`` gate's job.  Whichever side
    is pure, the comparison is oriented pure/vector, so a silently
    disengaged fast path reads as ~1.0x and fails loudly.
    """
    report_tier = report.get("manifest", {}).get("engine_tier", "pure")
    base_tier = baseline.get("manifest", {}).get("engine_tier", "pure")
    if report_tier == base_tier:
        print(f"  tier gate: baseline and run both on the "
              f"{report_tier!r} tier (cross-tier gate idle)")
        return 0
    failures = []
    for core_name, app in TIER_PAIRS:
        key = f"{core_name}/{app}"
        entry = report["results"].get(key, {})
        base = baseline.get("results", {}).get(key, {})
        if not entry.get("normalized") or not base.get("normalized"):
            continue  # missing legs already failed check_regressions
        if report_tier == "pure":  # baseline is the vectorized side
            speedup = entry["normalized"] / base["normalized"]
        else:
            speedup = base["normalized"] / entry["normalized"]
        verdict = "ok" if speedup >= min_speedup else "TOO SLOW"
        print(f"  {key}: vectorized tier {speedup:.2f}x pure "
              f"(need >= {min_speedup:.2f}x, {verdict})")
        if speedup < min_speedup:
            failures.append((key, speedup))
    if failures:
        print(f"\nFAIL: vectorized tier under {min_speedup:.2f}x the "
              f"pure interpreter on {len(failures)} leg(s):",
              file=sys.stderr)
        for key, speedup in failures:
            print(f"  {key}: {speedup:.2f}x < {min_speedup:.2f}x",
                  file=sys.stderr)
        return 1
    return 0


def check_fastforward(report: dict, min_speedup: float) -> int:
    """Exit status: 1 when quiescence skipping stopped paying for itself
    on the DRAM-bound pairs (skip-on must beat skip-off measurably)."""
    failures = []
    for core_name, app in NOSKIP_PAIRS:
        entry = report["results"].get(f"{core_name}/{app}", {})
        speedup = entry.get("speedup_vs_noskip")
        if speedup is None:
            continue
        verdict = "ok" if speedup >= min_speedup else "TOO SLOW"
        print(f"  {core_name}/{app}: fast-forward speedup "
              f"{speedup:.2f}x (need >= {min_speedup:.2f}x, {verdict})")
        if speedup < min_speedup:
            failures.append((f"{core_name}/{app}", speedup))
    if failures:
        print(f"\nFAIL: fast-forward no longer measurably faster than "
              f"skip-off on {len(failures)} pair(s):", file=sys.stderr)
        for key, speedup in failures:
            print(f"  {key}: {speedup:.2f}x < {min_speedup:.2f}x",
                  file=sys.stderr)
        return 1
    return 0


def check_journal_overhead(report: dict, max_overhead: float) -> int:
    """Exit status: 1 when journaled submit throughput trails the
    journal-off path by more than ``max_overhead`` (self-relative: both
    legs ran on this host in this invocation)."""
    entry = report["results"].get("service/submit")
    if entry is None or "journal_overhead" not in entry:
        return 0
    overhead = entry["journal_overhead"]
    verdict = "ok" if overhead <= max_overhead else "TOO SLOW"
    print(f"  service/submit: journal overhead {overhead:+.1%} "
          f"(max {max_overhead:.0%}, {verdict})")
    if overhead > max_overhead:
        print(f"\nFAIL: write-ahead journal costs {overhead:.1%} submit "
              f"throughput (> {max_overhead:.0%})", file=sys.stderr)
        return 1
    return 0


def check_telemetry_overhead(report: dict, max_overhead: float) -> int:
    """Exit status: 1 when the telemetry plane costs more than
    ``max_overhead`` cached-submit throughput (self-relative: both legs
    ran on this host in this invocation)."""
    entry = report["results"].get("service/telemetry")
    if entry is None or "telemetry_overhead" not in entry:
        return 0
    overhead = entry["telemetry_overhead"]
    verdict = "ok" if overhead <= max_overhead else "TOO SLOW"
    print(f"  service/telemetry: telemetry overhead {overhead:+.1%} "
          f"(max {max_overhead:.0%}, {verdict})")
    if overhead > max_overhead:
        print(f"\nFAIL: telemetry costs {overhead:.1%} cached-submit "
              f"throughput (> {max_overhead:.0%})", file=sys.stderr)
        return 1
    return 0


def check_cluster_speedup(report: dict, min_speedup: float) -> int:
    """Exit status: 1 when two cluster nodes fail to beat a single
    node-sized pool by ``min_speedup`` on cache-miss work
    (self-relative: both legs ran on this host in this invocation)."""
    entry = report["results"].get("service/cluster")
    if entry is None or "cluster_speedup" not in entry:
        return 0
    speedup = entry["cluster_speedup"]
    verdict = "ok" if speedup >= min_speedup else "TOO SLOW"
    print(f"  service/cluster: {entry['nodes']}-node speedup "
          f"{speedup:.2f}x over single pool "
          f"(min {min_speedup:.2f}x, {entry['workload']}, {verdict})")
    if speedup < min_speedup:
        print(f"\nFAIL: {entry['nodes']}-node cluster is only "
              f"{speedup:.2f}x a single pool (< {min_speedup:.2f}x)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="host-side simulator benchmark with regression gate")
    parser.add_argument("--quick", action="store_true",
                        help="CI profile: 3k instrs, 3 repeats")
    parser.add_argument("-n", type=int, default=None,
                        help="instructions per trace (default 8000)")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed iterations per pair (default 5)")
    parser.add_argument("--out", metavar="PATH", default="BENCH_core.json",
                        help="where to write the report")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline and gate")
    parser.add_argument("--baseline", metavar="PATH",
                        default="BENCH_core.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalised-median regression fraction")
    parser.add_argument("--min-tier-speedup", type=float, default=1.8,
                        help="--check also fails when the vectorized "
                             "engine tier buys less than this factor "
                             "over the pure interpreter on the gated "
                             "legs (engages only when the run and the "
                             "baseline were produced by different tiers)")
    parser.add_argument("--min-ff-speedup", type=float, default=1.1,
                        help="--check also fails when quiescence skipping "
                             "is not at least this much faster than "
                             "skip-off on the DRAM-bound pairs (a "
                             "disengaged fast path measures ~1.0x)")
    parser.add_argument("--max-journal-overhead", type=float, default=0.10,
                        help="--check also fails when journaled submit "
                             "throughput trails journal-off by more than "
                             "this fraction")
    parser.add_argument("--max-telemetry-overhead", type=float,
                        default=0.05,
                        help="--check also fails when telemetry-on "
                             "cached-submit throughput trails "
                             "telemetry-off by more than this fraction")
    parser.add_argument("--min-cluster-speedup", type=float, default=1.7,
                        help="--check also fails when a two-node cluster "
                             "does not beat a single node-sized pool by "
                             "this factor on cache-miss workloads")
    args = parser.parse_args(argv)

    n_instrs = args.n if args.n is not None else (3_000 if args.quick
                                                  else 8_000)
    warmup = args.warmup if args.warmup is not None else (
        500 if args.quick else 2_000)
    repeats = args.repeats if args.repeats is not None else (
        3 if args.quick else 5)

    print(f"benchmarking {len(PAIRS)} (core, app) pairs: "
          f"{n_instrs} instrs, {repeats} repeats")
    report = run_suite(n_instrs, warmup, repeats)
    print(f"calibration: {report['calibration_s']:.3f}s")
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        baseline = load_baseline(Path(args.baseline))
        if baseline is None:
            return 1
        status = check_regressions(report, baseline, Path(args.baseline),
                                   args.tolerance)
        status = check_tier_speedup(report, baseline,
                                    args.min_tier_speedup) or status
        status = check_fastforward(report, args.min_ff_speedup) or status
        status = check_journal_overhead(report,
                                        args.max_journal_overhead) or status
        status = check_telemetry_overhead(
            report, args.max_telemetry_overhead) or status
        return check_cluster_speedup(report,
                                     args.min_cluster_speedup) or status
    return 0


if __name__ == "__main__":
    sys.exit(main())
