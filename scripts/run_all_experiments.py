#!/usr/bin/env python
"""Regenerate every figure of the paper on the full 25-application suite
and dump the results (used to fill in EXPERIMENTS.md).

Run:  python scripts/run_all_experiments.py [output.txt]
"""

import io
import sys
import time
from contextlib import redirect_stdout

from repro.experiments import (
    fig2_specino_potential,
    fig6_ipc,
    fig7_renaming,
    fig8_memdisambig,
    fig9_area_energy,
    fig10_design_space,
    fig11_wider_issue,
)
from repro.experiments.common import make_runner
from repro.workloads.suite import suite_profiles


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "experiment_results.txt"
    runner = make_runner()
    profiles = suite_profiles("all")
    buffer = io.StringIO()
    modules = [
        ("Figure 2", lambda: fig2_specino_potential.run(runner, profiles)),
        ("Figure 6", lambda: fig6_ipc.run(runner, profiles)),
        ("Figure 7", lambda: fig7_renaming.run(runner, profiles)),
        ("Figure 8", lambda: fig8_memdisambig.run(runner, profiles)),
        ("Figure 9", lambda: fig9_area_energy.run(runner, profiles)),
        ("Figure 10a", lambda: fig10_design_space.run_iq_sweep(runner, profiles)),
        ("Figure 10b", lambda: fig10_design_space.run_ws_so_sweep(runner, profiles)),
        ("Figure 11", lambda: fig11_wider_issue.run(runner, profiles)),
    ]
    for name, fn in modules:
        start = time.time()
        result = fn()
        elapsed = time.time() - start
        line = f"=== {name} ({elapsed:.0f}s) ==="
        print(line)
        buffer.write(line + "\n")
        if name == "Figure 9":
            result = {k: {kk: vv for kk, vv in v.items()
                          if kk not in ("groups", "area_groups")}
                      for k, v in result.items()}
        for key, value in result.items():
            row = f"{key}: {value}"
            print(row)
            buffer.write(row + "\n")
        buffer.write("\n")
    with open(out_path, "w") as fh:
        fh.write(buffer.getvalue())
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
