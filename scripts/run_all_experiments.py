#!/usr/bin/env python
"""Regenerate every figure of the paper on the full 25-application suite
and dump the results (used to fill in EXPERIMENTS.md).

Run:  python scripts/run_all_experiments.py [output.txt] [--no-resume]
          [--checkpoint PATH] [--retries N] [--sanitize]
          [--workers N] [--store DIR]

``--workers N`` fans every figure's (core, app, config) grid across N
worker processes through the simulation service pool; ``--store DIR``
adds the content-addressed result store, making an immediate rerun of a
completed sweep near-instant (zero simulations — results are served from
the store by provenance hash).

The sweep is resumable and failure-tolerant: each completed figure is
checkpointed to ``<output>.ckpt.json`` (kill it mid-sweep and re-run to
continue), and an app whose simulation fails is retried with a fresh
trace seed, then excluded from that figure's aggregate with an explicit
report instead of aborting the sweep.  ``REPRO_QUICK=1`` shrinks the
suite to 8 apps and ``REPRO_N_INSTRS``/``REPRO_WARMUP`` shrink the traces
(CI smoke); ``REPRO_SANITIZE=1`` or ``--sanitize`` turns on the invariant
sanitizer.  See ``repro.experiments.sweep`` for the driver.
"""

import sys

from repro.experiments.sweep import main

if __name__ == "__main__":
    sys.exit(main())
