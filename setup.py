"""Legacy installer shim: lets `python setup.py develop` work in offline
environments that lack the `wheel` package (all metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
