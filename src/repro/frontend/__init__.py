"""Front-end: TAGE direction prediction, BTB target prediction, fetch unit."""

from repro.frontend.btb import Btb
from repro.frontend.tage import Tage
from repro.frontend.fetch import FetchUnit, FetchedInst

__all__ = ["Btb", "Tage", "FetchUnit", "FetchedInst"]
