"""Fetch unit with branch-prediction gating and I-cache timing.

Wrong-path execution is modelled as fetch starvation: on a mispredicted
branch the fetch unit stops supplying instructions until the core reports
the branch resolved, then pays the redirect penalty.  This is the standard
trace-driven approximation — correct-path timing is exact, wrong-path cache
pollution is not modelled (uniformly for every core, so relative results are
unaffected).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.params import BranchPredictorConfig, CoreConfig
from repro.common.stats import Stats
from repro.engine.stream import InstStream
from repro.frontend.btb import Btb
from repro.frontend.tage import Tage
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class FetchedInst:
    """A fetched instruction waiting in the decode pipe."""

    __slots__ = ("inst", "ready_at")

    def __init__(self, inst: DynInst, ready_at: int) -> None:
        self.inst = inst
        self.ready_at = ready_at


class FetchUnit:
    """Supplies up to ``width`` instructions per cycle to the dispatcher."""

    def __init__(self, cfg: CoreConfig, stream: InstStream, hierarchy,
                 bp_cfg: Optional[BranchPredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.cfg = cfg
        self.stream = stream
        self.hierarchy = hierarchy
        self.stats = stats if stats is not None else Stats()
        bp_cfg = bp_cfg if bp_cfg is not None else BranchPredictorConfig()
        self.tage = Tage(bp_cfg, self.stats)
        self.btb = Btb(bp_cfg.btb_sets, bp_cfg.btb_ways, self.stats)
        self.queue: Deque[FetchedInst] = deque()
        self.capacity = max(2, cfg.frontend_latency) * cfg.width * 2
        self.stalled_until = 0
        self.blocked_seq: Optional[int] = None  # unresolved mispredicted branch
        self._line = -1

    # -- per-cycle fetch -------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Fetch up to ``width`` instructions this cycle."""
        if self.blocked_seq is not None or cycle < self.stalled_until:
            return
        queue = self.queue
        if len(queue) >= self.capacity:
            return  # decode pipe backed up: nothing can be fetched
        fetched = 0
        width = self.cfg.width
        frontend_latency = self.cfg.frontend_latency
        stream = self.stream
        counters = self.stats.counters
        while fetched < width and len(queue) < self.capacity:
            inst = stream.peek()
            if inst is None:
                return
            extra = self._icache(inst, cycle)
            if extra > 0:
                # I-cache miss: this instruction (and everything behind it)
                # arrives after the fill.
                self.stalled_until = cycle + extra
                return
            stream.fetch()
            queue.append(FetchedInst(inst, cycle + frontend_latency))
            fetched += 1
            counters["fetched"] += 1.0
            if inst.is_branch and self._predict(inst):
                return  # mispredicted: gate fetch until resolution
            if inst.is_branch and inst.taken:
                return  # correctly-predicted taken branch ends the group

    def _icache(self, inst: DynInst, cycle: int) -> int:
        """Access the L1I when crossing into a new line; returns extra stall
        cycles beyond the pipelined hit latency."""
        line = inst.line
        if line == self._line:
            return 0
        self._line = line
        latency = self.hierarchy.ifetch(inst.pc, cycle)
        hit = self.hierarchy.l1i.cfg.latency
        return max(0, latency - hit)

    def _predict(self, inst: DynInst) -> bool:
        """Predict the branch; returns True when mispredicted (fetch gates)."""
        if inst.op is OpClass.BRANCH:
            pred_taken = self.tage.predict_update(inst.pc, inst.taken)
        else:  # unconditional jump
            pred_taken = True
        target_ok = True
        if inst.taken:
            predicted_target = self.btb.lookup_update(inst.pc, inst.target)
            target_ok = predicted_target == inst.target
        mispredicted = (pred_taken != inst.taken) or (inst.taken and not target_ok)
        if mispredicted:
            self.stats.add("fetch_mispredict_gates")
            self.blocked_seq = inst.seq
        return mispredicted

    # -- supply to dispatch ------------------------------------------------------

    def pop_ready(self, cycle: int, max_count: int) -> List[DynInst]:
        """Instructions whose decode pipe delay has elapsed, in order."""
        out: List[DynInst] = []
        while (self.queue and len(out) < max_count
               and self.queue[0].ready_at <= cycle):
            out.append(self.queue.popleft().inst)
        return out

    def peek_ready(self, cycle: int) -> Optional[DynInst]:
        if self.queue and self.queue[0].ready_at <= cycle:
            return self.queue[0].inst
        return None

    # -- control ----------------------------------------------------------------

    def resolve_branch(self, seq: int, done_cycle: int) -> None:
        """The core resolved the mispredicted branch ``seq``: resume fetch
        after the redirect penalty."""
        if self.blocked_seq == seq:
            self.blocked_seq = None
            self.stalled_until = max(self.stalled_until,
                                     done_cycle + self.cfg.mispredict_penalty)
            self.stats.add("branch_redirects")

    def squash(self, from_seq: int, resume_cycle: int) -> None:
        """Memory-order-violation squash: drop everything at/after
        ``from_seq`` and re-fetch it starting at ``resume_cycle``."""
        while self.queue and self.queue[-1].inst.seq >= from_seq:
            self.queue.pop()
        self.stream.rewind(from_seq)
        if self.blocked_seq is not None and self.blocked_seq >= from_seq:
            self.blocked_seq = None
        self.stalled_until = max(self.stalled_until, resume_cycle)
        self._line = -1

    @property
    def drained(self) -> bool:
        """True when no fetched-but-undispatched work remains."""
        return not self.queue and self.stream.exhausted
