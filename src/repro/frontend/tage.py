"""TAGE branch direction predictor (Table I configuration).

One bimodal base predictor plus four partially-tagged tables indexed by
hashes of the PC and geometrically increasing slices of a 17-bit global
history register.  Implements the standard TAGE machinery: provider /
alternate selection, useful counters, and entry allocation on mispredictions
(Seznec & Michaud).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import BranchPredictorConfig
from repro.common.stats import Stats


class Tage:
    """TAGE with a bimodal base table and ``n_tagged`` tagged components.

    Tagged-table entries are stored SoA — parallel ``tag``/``ctr``/
    ``useful`` int lists per table — rather than as one object per entry:
    construction is three list multiplications instead of thousands of
    allocations, and the lookup loop indexes flat lists instead of
    chasing attributes.  ``ctr`` is a signed 3-bit counter (-4..3, taken
    when >= 0); ``useful`` is the 2-bit TAGE usefulness counter.
    """

    def __init__(self, cfg: Optional[BranchPredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.cfg = cfg if cfg is not None else BranchPredictorConfig()
        self.stats = stats if stats is not None else Stats()
        c = self.cfg
        self.bimodal = [2] * (1 << c.bimodal_bits)  # 2-bit, weakly taken
        size = 1 << c.tagged_bits
        self.tag_t: List[List[int]] = [[0] * size for _ in range(c.n_tagged)]
        self.ctr_t: List[List[int]] = [[0] * size for _ in range(c.n_tagged)]
        self.use_t: List[List[int]] = [[0] * size for _ in range(c.n_tagged)]
        self.ghr = 0
        self._ghr_mask = (1 << c.ghr_bits) - 1
        self._alloc_tick = 0
        # Incrementally-maintained folded histories, one (index, tag) pair
        # per tagged table: ``_fidx[t] == _fold(ghr, L_t, tagged_bits)`` and
        # ``_ftag[t] == _fold(ghr, L_t, tag_bits)`` at all times.  Folding
        # is linear over GF(2) — input bit ``i`` lands on output bit
        # ``i % out_bits`` — so a one-bit history shift is a rotate plus
        # two XORs instead of a re-fold (the standard TAGE circuit).
        self._fidx = [0] * c.n_tagged
        self._ftag = [0] * c.n_tagged
        self._fold_geom = tuple(
            (length, length % c.tagged_bits, length % c.tag_bits)
            for length in c.history_lengths)
        self._idx_mask = (1 << c.tagged_bits) - 1
        self._tag_mask = (1 << c.tag_bits) - 1
        self._idx_rot = c.tagged_bits - 1
        self._tag_rot = c.tag_bits - 1
        self._bimodal_mask = (1 << c.bimodal_bits) - 1

    # -- hashing -------------------------------------------------------------

    def _fold(self, history: int, bits: int, out_bits: int) -> int:
        """Fold ``bits`` of history into ``out_bits``."""
        history &= (1 << bits) - 1
        folded = 0
        while bits > 0:
            folded ^= history & ((1 << out_bits) - 1)
            history >>= out_bits
            bits -= out_bits
        return folded

    def _index(self, pc: int, table: int) -> int:
        hist = self._fidx[table]
        return (pc ^ (pc >> (table + 2)) ^ hist) & self._idx_mask

    def _tag(self, pc: int, table: int) -> int:
        hist = self._ftag[table]
        return ((pc >> 2) ^ (pc >> (table + 5)) ^ (hist << 1)) & self._tag_mask

    # -- prediction ------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        provider, _, pred, _ = self._lookup(pc)
        self.stats.counters["bp_lookups"] += 1.0
        return pred

    def _lookup(self, pc: int):
        """Return (provider_table or None, provider_idx, prediction, altpred)."""
        provider = None
        provider_idx = 0
        alt = self.bimodal[(pc >> 2) & self._bimodal_mask] >= 2
        pred = alt
        # Hashes inlined from _index/_tag against the cached folds: this
        # loop is the per-branch hot path for every core's frontend.
        fidx = self._fidx
        ftag = self._ftag
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        tag_t = self.tag_t
        ctr_t = self.ctr_t
        for t in range(self.cfg.n_tagged - 1, -1, -1):
            idx = (pc ^ (pc >> (t + 2)) ^ fidx[t]) & idx_mask
            if tag_t[t][idx] == ((pc >> 2) ^ (pc >> (t + 5))
                                ^ (ftag[t] << 1)) & tag_mask:
                if provider is None:
                    provider, provider_idx = t, idx
                    pred = ctr_t[t][idx] >= 0
                else:
                    alt = ctr_t[t][idx] >= 0
                    break
        return provider, provider_idx, pred, alt

    def _bimodal_pred(self, pc: int) -> bool:
        return self.bimodal[(pc >> 2) & ((1 << self.cfg.bimodal_bits) - 1)] >= 2

    # -- update ----------------------------------------------------------------

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Fused predict-then-train: one table lookup instead of two.

        ``predict(pc)`` followed by ``update(pc, taken)`` performs the
        same ``_lookup`` twice on identical global history (the history
        shifts only at the end of ``update``), so fusing them halves the
        hashing work while leaving every counter bump and every state
        transition exactly as the split calls produce.  Returns the
        prediction.
        """
        provider, provider_idx, pred, alt = self._lookup(pc)
        self.stats.counters["bp_lookups"] += 1.0
        self._train(pc, taken, provider, provider_idx, pred, alt)
        return pred

    def update(self, pc: int, taken: bool) -> None:
        """Train on the actual outcome and advance the global history."""
        provider, provider_idx, pred, alt = self._lookup(pc)
        self._train(pc, taken, provider, provider_idx, pred, alt)

    def _train(self, pc: int, taken: bool, provider, provider_idx: int,
               pred: bool, alt: bool) -> None:
        correct = pred == taken
        self.stats.counters["bp_correct" if correct else "bp_mispredicts"] += 1.0
        if provider is not None:
            ctrs = self.ctr_t[provider]
            ctrs[provider_idx] = _sat(
                ctrs[provider_idx] + (1 if taken else -1), -4, 3)
            if pred != alt:
                useful = self.use_t[provider]
                useful[provider_idx] = _sat(
                    useful[provider_idx] + (1 if correct else -1), 0, 3)
        else:
            idx = (pc >> 2) & ((1 << self.cfg.bimodal_bits) - 1)
            self.bimodal[idx] = _sat(self.bimodal[idx] + (1 if taken else -1), 0, 3)
        if not correct:
            self._allocate(pc, taken, provider)
        ghr = self.ghr
        bit = 1 if taken else 0
        self.ghr = ((ghr << 1) | bit) & self._ghr_mask
        # Keep the folded histories in lockstep with the shift: rotate each
        # fold left by one (within its width), insert the new bit at the
        # bottom, and XOR out the evicted bit at position ``L % out_bits``.
        fidx = self._fidx
        ftag = self._ftag
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        idx_rot = self._idx_rot
        tag_rot = self._tag_rot
        for t, (length, idx_out, tag_out) in enumerate(self._fold_geom):
            evicted = (ghr >> (length - 1)) & 1
            f = fidx[t]
            fidx[t] = ((((f << 1) | (f >> idx_rot)) & idx_mask)
                       ^ bit ^ (evicted << idx_out))
            f = ftag[t]
            ftag[t] = ((((f << 1) | (f >> tag_rot)) & tag_mask)
                       ^ bit ^ (evicted << tag_out))

    def _allocate(self, pc: int, taken: bool, provider: Optional[int]) -> None:
        """On a mispredict, claim an entry in a longer-history table."""
        start = (provider + 1) if provider is not None else 0
        self._alloc_tick += 1
        for t in range(start, self.cfg.n_tagged):
            idx = self._index(pc, t)
            if self.use_t[t][idx] == 0:
                self.tag_t[t][idx] = self._tag(pc, t)
                self.ctr_t[t][idx] = 0 if taken else -1
                return
        # Nothing free: age useful counters (graceful degradation).
        if self._alloc_tick % 4 == 0:
            for t in range(start, self.cfg.n_tagged):
                idx = self._index(pc, t)
                useful = self.use_t[t]
                useful[idx] = max(0, useful[idx] - 1)

    @property
    def mispredict_rate(self) -> float:
        total = self.stats.get("bp_correct") + self.stats.get("bp_mispredicts")
        return self.stats.get("bp_mispredicts") / total if total else 0.0


def _sat(value: int, lo: int, hi: int) -> int:
    return lo if value < lo else hi if value > hi else value
