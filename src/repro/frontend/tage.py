"""TAGE branch direction predictor (Table I configuration).

One bimodal base predictor plus four partially-tagged tables indexed by
hashes of the PC and geometrically increasing slices of a 17-bit global
history register.  Implements the standard TAGE machinery: provider /
alternate selection, useful counters, and entry allocation on mispredictions
(Seznec & Michaud).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import BranchPredictorConfig
from repro.common.stats import Stats


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.ctr = 0      # signed 3-bit: -4..3, taken when >= 0
        self.useful = 0   # 2-bit


class Tage:
    """TAGE with a bimodal base table and ``n_tagged`` tagged components."""

    def __init__(self, cfg: Optional[BranchPredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.cfg = cfg if cfg is not None else BranchPredictorConfig()
        self.stats = stats if stats is not None else Stats()
        c = self.cfg
        self.bimodal = [2] * (1 << c.bimodal_bits)  # 2-bit, weakly taken
        self.tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(1 << c.tagged_bits)]
            for _ in range(c.n_tagged)
        ]
        self.ghr = 0
        self._ghr_mask = (1 << c.ghr_bits) - 1
        self._alloc_tick = 0

    # -- hashing -------------------------------------------------------------

    def _fold(self, history: int, bits: int, out_bits: int) -> int:
        """Fold ``bits`` of history into ``out_bits``."""
        history &= (1 << bits) - 1
        folded = 0
        while bits > 0:
            folded ^= history & ((1 << out_bits) - 1)
            history >>= out_bits
            bits -= out_bits
        return folded

    def _index(self, pc: int, table: int) -> int:
        c = self.cfg
        hist = self._fold(self.ghr, c.history_lengths[table], c.tagged_bits)
        return (pc ^ (pc >> (table + 2)) ^ hist) & ((1 << c.tagged_bits) - 1)

    def _tag(self, pc: int, table: int) -> int:
        c = self.cfg
        hist = self._fold(self.ghr, c.history_lengths[table], c.tag_bits)
        return ((pc >> 2) ^ (pc >> (table + 5)) ^ (hist << 1)) & ((1 << c.tag_bits) - 1)

    # -- prediction ------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        provider, _, pred, _ = self._lookup(pc)
        self.stats.counters["bp_lookups"] += 1.0
        return pred

    def _lookup(self, pc: int):
        """Return (provider_table or None, provider_idx, prediction, altpred)."""
        provider = None
        provider_idx = 0
        alt = self._bimodal_pred(pc)
        pred = alt
        for t in range(self.cfg.n_tagged - 1, -1, -1):
            idx = self._index(pc, t)
            entry = self.tables[t][idx]
            if entry.tag == self._tag(pc, t):
                if provider is None:
                    provider, provider_idx = t, idx
                    pred = entry.ctr >= 0
                else:
                    alt = entry.ctr >= 0
                    break
        return provider, provider_idx, pred, alt

    def _bimodal_pred(self, pc: int) -> bool:
        return self.bimodal[(pc >> 2) & ((1 << self.cfg.bimodal_bits) - 1)] >= 2

    # -- update ----------------------------------------------------------------

    def update(self, pc: int, taken: bool) -> None:
        """Train on the actual outcome and advance the global history."""
        provider, provider_idx, pred, alt = self._lookup(pc)
        correct = pred == taken
        self.stats.counters["bp_correct" if correct else "bp_mispredicts"] += 1.0
        if provider is not None:
            entry = self.tables[provider][provider_idx]
            entry.ctr = _sat(entry.ctr + (1 if taken else -1), -4, 3)
            if pred != alt:
                entry.useful = _sat(entry.useful + (1 if correct else -1), 0, 3)
        else:
            idx = (pc >> 2) & ((1 << self.cfg.bimodal_bits) - 1)
            self.bimodal[idx] = _sat(self.bimodal[idx] + (1 if taken else -1), 0, 3)
        if not correct:
            self._allocate(pc, taken, provider)
        self.ghr = ((self.ghr << 1) | int(taken)) & self._ghr_mask

    def _allocate(self, pc: int, taken: bool, provider: Optional[int]) -> None:
        """On a mispredict, claim an entry in a longer-history table."""
        start = (provider + 1) if provider is not None else 0
        self._alloc_tick += 1
        for t in range(start, self.cfg.n_tagged):
            idx = self._index(pc, t)
            entry = self.tables[t][idx]
            if entry.useful == 0:
                entry.tag = self._tag(pc, t)
                entry.ctr = 0 if taken else -1
                entry.useful = 0
                return
        # Nothing free: age useful counters (graceful degradation).
        if self._alloc_tick % 4 == 0:
            for t in range(start, self.cfg.n_tagged):
                idx = self._index(pc, t)
                self.tables[t][idx].useful = max(
                    0, self.tables[t][idx].useful - 1)

    @property
    def mispredict_rate(self) -> float:
        total = self.stats.get("bp_correct") + self.stats.get("bp_mispredicts")
        return self.stats.get("bp_mispredicts") / total if total else 0.0


def _sat(value: int, lo: int, hi: int) -> int:
    return lo if value < lo else hi if value > hi else value
