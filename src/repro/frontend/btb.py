"""Branch target buffer: 512 sets, 4-way set-associative (Table I)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import Stats


class Btb:
    """Set-associative BTB with LRU replacement storing branch targets."""

    def __init__(self, n_sets: int = 512, n_ways: int = 4,
                 stats: Optional[Stats] = None) -> None:
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.stats = stats if stats is not None else Stats()
        # set -> {pc: (target, stamp)}
        self.sets: Dict[int, Dict[int, tuple]] = {}
        self._stamp = 0

    def _set_idx(self, pc: int) -> int:
        return (pc >> 2) % self.n_sets

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target of the branch at ``pc`` (None on a BTB miss)."""
        ways = self.sets.get(self._set_idx(pc))
        counters = self.stats.counters
        counters["btb_lookups"] += 1.0
        if ways is None or pc not in ways:
            counters["btb_misses"] += 1.0
            return None
        target, _ = ways[pc]
        self._stamp += 1
        ways[pc] = (target, self._stamp)
        return target

    def lookup_update(self, pc: int, target: int) -> Optional[int]:
        """Fused ``lookup(pc)`` + ``update(pc, target)``: one set
        resolution instead of two for the fetch hot path.

        Returns the prediction the split ``lookup`` would have produced,
        with identical counter bumps; the final entry and LRU order match
        the split sequence exactly (on a hit the lookup's touch stamp is
        subsumed by the update's install, so the stamp advances by two).
        """
        ways = self.sets.setdefault((pc >> 2) % self.n_sets, {})
        counters = self.stats.counters
        counters["btb_lookups"] += 1.0
        entry = ways.get(pc)
        if entry is None:
            counters["btb_misses"] += 1.0
            predicted = None
            if len(ways) >= self.n_ways:
                victim = min(ways, key=lambda k: ways[k][1])
                del ways[victim]
            self._stamp += 1
        else:
            predicted = entry[0]
            self._stamp += 2
        ways[pc] = (target, self._stamp)
        return predicted

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the branch at ``pc``."""
        ways = self.sets.setdefault(self._set_idx(pc), {})
        self._stamp += 1
        if pc not in ways and len(ways) >= self.n_ways:
            victim = min(ways, key=lambda k: ways[k][1])
            del ways[victim]
        ways[pc] = (target, self._stamp)
