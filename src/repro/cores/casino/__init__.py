"""CASINO core: cascaded in-order scheduling windows (the paper's
contribution).

* :mod:`repro.cores.casino.core` — the pipeline: S-IQ(s) cascaded into a
  final in-order IQ, speculative issue with SpecInO[WS, SO] head scanning.
* :mod:`repro.cores.casino.rename` — conditional register renaming
  (Section III-B2/III-C2): free physical registers are allocated only to
  speculatively-issued instructions; passed instructions share their current
  mapping, tracked by a per-register ProducerCount.
* :mod:`repro.cores.casino.lsu` — unified SQ/SB with sentinels and the
  on-commit value-check (Section III-C4).
* :mod:`repro.cores.casino.osca` — Outstanding Store Counter Array filter.
"""

from repro.cores.casino.core import CasinoCore
from repro.cores.casino.osca import Osca
from repro.cores.casino.rename import ConditionalRenamer

__all__ = ["CasinoCore", "Osca", "ConditionalRenamer"]
