"""The CASINO core pipeline (Section III).

A cascade of in-order scheduling windows: dispatch fills the first
(speculative) S-IQ; each cycle the SpecInO window examines the S-IQ head —
ready instructions issue immediately (allocating a fresh physical register),
non-ready instructions are passed to the next queue (keeping their current
mapping); the final IQ issues strictly in program order along the serial
dependence chains.  Arbitration gives the IQ priority (its instructions are
always the oldest).  Wider designs (Section VI-F) insert intermediate
8-entry S-IQs between the first S-IQ and the IQ.

Because both issue and pass remove the *head* of a FIFO (nothing may leave
while an older instruction stays, or ROB allocation order would break), the
SpecInO[WS, SO] window reduces to processing the queue head up to WS times
per cycle with at most SO passes — exactly the behaviour of Figure 1d.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    RENAME_CONDITIONAL,
)
from repro.cores.casino.lsu import CasinoLsu
from repro.cores.casino.rename import ConditionalRenamer
from repro.engine.core_base import CoreModel, InflightInst


class CasinoCore(CoreModel):
    """Table I's ``CASINO`` model (and its Figure 7/8/10/11 variants)."""

    kind = "casino"

    def _reset(self) -> None:
        cfg = self.cfg
        sizes = ([cfg.siq_size]
                 + [cfg.intermediate_siq_size] * cfg.n_intermediate_siqs
                 + [cfg.iq_size])
        self.queues: List[Deque[InflightInst]] = [deque() for _ in sizes]
        self.queue_sizes = sizes
        self.rob: Deque[InflightInst] = deque()
        self.renamer = ConditionalRenamer(cfg, self.stats)
        self.lsu = CasinoLsu(cfg, self.hier, self.stats)
        self.dbuf_used = 0
        self._use_dbuf = cfg.rename_scheme == RENAME_CONDITIONAL

    def pipeline_empty(self) -> bool:
        return (not self.rob and self.lsu.empty
                and all(not q for q in self.queues))

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"queues={[list(q)[:3] for q in self.queues]} "
                f"rob={len(self.rob)} sq={len(self.lsu.sq)} "
                f"free=({self.renamer.free_int},{self.renamer.free_fp}) "
                f"dbuf={self.dbuf_used}")

    def _occupancy(self):
        cfg = self.cfg
        occ = {}
        for i, (queue, cap) in enumerate(zip(self.queues, self.queue_sizes)):
            name = "iq" if i == len(self.queues) - 1 else f"siq{i}"
            occ[name] = (len(queue), cap)
        occ["rob"] = (len(self.rob), cfg.rob_size)
        occ["sq_sb"] = (len(self.lsu.sq), cfg.sq_sb_size)
        occ["dbuf"] = (self.dbuf_used, cfg.data_buffer_size)
        renamer = self.renamer
        occ["prf_int"] = (cfg.prf_int - NUM_INT_ARCH - renamer.free_int,
                          cfg.prf_int - NUM_INT_ARCH)
        occ["prf_fp"] = (cfg.prf_fp - NUM_FP_ARCH - renamer.free_fp,
                         cfg.prf_fp - NUM_FP_ARCH)
        if self.lsu.mode == DISAMBIG_FULLY_OOO:
            occ["lq"] = (len(self.lsu.lq), cfg.lq_size)
        return occ

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        """Oldest uncommitted instruction: the ROB head, or — before
        anything has been renamed into the ROB — the first S-IQ head."""
        if self.rob:
            return self.rob[0]
        if self.queues[0]:
            return self.queues[0][0]
        return None

    def _stall_structure(self, head):
        """Which cascade queue holds the head (``siq0``..``iq``), or
        ``rob`` once it has issued and is only awaiting completion."""
        if head.issue_at is not None:
            return "rob"
        # An unissued oldest instruction is necessarily at the head of
        # whichever cascade queue holds it (queues are seq-ordered).
        last = len(self.queues) - 1
        for i, queue in enumerate(self.queues):
            if queue and head is queue[0]:
                return "iq" if i == last else f"siq{i}"
        return "rob"

    def _issue_gate(self):
        """Oldest unissued instruction: non-ready heads are passed
        *downstream*, so it sits at the head of the most-downstream
        non-empty queue (the IQ, once anything has reached it)."""
        for queue in reversed(self.queues):
            if queue:
                return queue[0]
        return None

    # -- cycle ----------------------------------------------------------------

    def _step(self, cycle: int) -> None:
        self.lsu.retire_head(cycle, self.fu)
        self._commit(cycle)
        budget = self.cfg.width
        budget -= self._issue_iq(cycle, budget)
        self._scan_siqs(cycle, budget)
        self._dispatch(cycle)

    # -- commit -----------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        committed = 0
        while (self.rob and committed < self.cfg.width
               and self.rob[0].done_at is not None
               and self.rob[0].done_at <= cycle):
            entry = self.rob[0]
            inst = entry.inst
            if inst.is_load and self.lsu.commit_load(entry, cycle):
                # On-commit value-check failed: flush this load and all
                # younger instructions, then re-execute.
                if self.tracer is not None:
                    self.tracer.emit("storeset_violation", cycle, entry.seq,
                                     mechanism="value_check")
                self._squash(entry.seq, cycle)
                return
            self.rob.popleft()
            if inst.is_store:
                self.lsu.commit_store(entry, cycle)
            self.renamer.commit(entry)
            if entry.queue_tag == "dbuf":
                self.dbuf_used -= 1
                self.stats.add("dbuf_access")
            self.stats.add("rob_reads")
            self.note_commit(entry, cycle)
            self.stats.add("committed_s_issue" if entry.from_siq
                           else "committed_iq_issue")
            committed += 1

    # -- issue from the final in-order IQ ------------------------------------------

    def _issue_iq(self, cycle: int, budget: int) -> int:
        """Strict in-order issue at the IQ head; returns slots used."""
        iq = self.queues[-1]
        issued = 0
        while iq and issued < budget:
            entry = iq[0]
            if not entry.ready(cycle):
                self.stats.add("iq_stall_src")
                break
            needs_dbuf = (self._use_dbuf and entry.inst.dst is not None)
            if needs_dbuf and self.dbuf_used >= self.cfg.data_buffer_size:
                self.stats.add("iq_stall_dbuf")
                break
            if not self.fu.take(entry.inst.op):
                self.stats.add("iq_stall_fu")
                break
            iq.popleft()
            if needs_dbuf:
                self.dbuf_used += 1
                entry.queue_tag = "dbuf"
                self.stats.add("dbuf_access")
            self.renamer.on_iq_issue(entry)
            self._execute(entry, cycle, from_iq=True)
            issued += 1
        return issued

    # -- SpecInO window scan over the cascaded S-IQs ---------------------------------

    def _scan_siqs(self, cycle: int, budget: int) -> None:
        """Process each S-IQ head with the [WS, SO] window, oldest queue
        (closest to the IQ) first."""
        for qi in range(len(self.queues) - 2, -1, -1):
            budget -= self._scan_one_siq(qi, cycle, budget)

    def _scan_one_siq(self, qi: int, cycle: int, budget: int) -> int:
        cfg = self.cfg
        queue = self.queues[qi]
        next_queue = self.queues[qi + 1]
        next_cap = self.queue_sizes[qi + 1]
        first = qi == 0
        issued = 0
        processed = 0
        passes = 0
        while queue and processed < cfg.specino_ws:
            entry = queue[0]
            if first:
                self.stats.add("siq_examined")
            if entry.ready(cycle):
                if issued >= budget:
                    break  # ready but out of issue slots: wait, don't pass
                if not self._can_issue_spec(entry, first):
                    # Ready but resource-blocked: waiting at the head beats
                    # passing (footnote 1 of the paper).
                    break
                queue.popleft()
                self.fu.take(entry.inst.op)
                if first:
                    self._leave_first_siq(entry, passed=False)
                self._execute(entry, cycle, from_iq=False)
                issued += 1
                processed += 1
                continue
            # Not ready: try to pass it to the next queue.
            if (passes < cfg.specino_so
                    and len(next_queue) < next_cap
                    and (not first or self._can_pass_first(entry))):
                queue.popleft()
                if first:
                    self._leave_first_siq(entry, passed=True)
                next_queue.append(entry)
                if self.tracer is not None:
                    self.tracer.emit("siq_promote", cycle, entry.seq,
                                     from_queue=qi, to_queue=qi + 1)
                self.stats.add("siq_passes")
                passes += 1
                processed += 1
                continue
            break
        return issued

    def _can_pass_first(self, entry: InflightInst) -> bool:
        inst = entry.inst
        if len(self.rob) >= self.cfg.rob_size:
            return False
        if not self.renamer.can_pass(inst.dst):
            self.stats.add("pass_stall_rename")
            return False
        if inst.is_store and not self.lsu.has_store_space():
            return False
        return True

    def _can_issue_spec(self, entry: InflightInst, first: bool) -> bool:
        inst = entry.inst
        if first:
            if len(self.rob) >= self.cfg.rob_size:
                return False
            if not self.renamer.can_alloc(inst.dst):
                self.stats.add("issue_stall_prf")
                return False
            if inst.is_store and not self.lsu.has_store_space():
                return False
            if inst.is_load and not self.lsu.has_load_space():
                return False
        if inst.is_mem and self.cfg.disambiguation == DISAMBIG_AGI_ORDERING:
            if self._older_unissued_mem(entry.seq):
                self.stats.add("agi_order_stalls")
                return False
        if not self.fu.available(inst.op):
            return False
        return True

    def _older_unissued_mem(self, seq: int) -> bool:
        for other in self.rob:
            if other.seq >= seq:
                break
            if other.inst.is_mem and other.issue_at is None:
                return True
        return False

    def _leave_first_siq(self, entry: InflightInst, passed: bool) -> None:
        """Rename + allocate ROB/SQ as the instruction exits the first S-IQ."""
        if passed:
            self.renamer.rename_passed(entry)
        else:
            self.renamer.rename_speculative(entry)
            entry.from_siq = True
        self.rob.append(entry)
        self.stats.add("rob_writes")
        if entry.inst.is_store:
            self.lsu.dispatch_store(entry)

    # -- execution ---------------------------------------------------------------

    def _execute(self, entry: InflightInst, cycle: int, from_iq: bool) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        if from_iq:
            self.stats.add("issued_iq")
            self.stats.add("issued_iq_mem" if inst.is_mem else "issued_iq_nonmem")
        else:
            entry.from_siq = True
            self.stats.add("issued_spec")
            self.stats.add("issued_spec_mem" if inst.is_mem
                           else "issued_spec_nonmem")
        self.stats.add("issued")
        self.stats.add("prf_reads", len(inst.srcs))
        if inst.dst is not None:
            self.stats.add("prf_writes")
        if inst.is_load:
            forward = self.lsu.load_issued(entry, cycle, from_iq)
            entry.forward_store = forward
            if forward is not None:
                entry.done_at = cycle + 2
                self.stats.add("stl_forwards")
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1
            self.lsu.store_issued(entry, cycle)
            if self.lsu.violation_seq is not None:
                victim = self.lsu.violation_seq
                self.lsu.violation_seq = None
                if self.tracer is not None:
                    self.tracer.emit("storeset_violation", cycle, victim,
                                     mechanism="lq_search", store=entry.seq)
                self._squash(victim, cycle)
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle, from_iq=from_iq)
        self.resolve_branch_if_gating(entry)

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        first = self.queues[0]
        space = self.queue_sizes[0] - len(first)
        for inst in self.fetch.pop_ready(cycle, min(space, self.cfg.width)):
            first.append(self.make_entry(inst))
            self.stats.add("dispatched")

    # -- squash ---------------------------------------------------------------------

    def _squash(self, from_seq: int, cycle: int) -> None:
        """Flush ``from_seq`` and younger; recover RAT/ProducerCount/OSCA."""
        # Walk the ROB young -> old, undoing rename state.
        squashed = []
        while self.rob and self.rob[-1].seq >= from_seq:
            entry = self.rob.pop()
            squashed.append(entry)
            if entry.queue_tag == "dbuf":
                self.dbuf_used -= 1
        self.renamer.squash(squashed)
        for queue in self.queues:
            while queue and queue[-1].seq >= from_seq:
                queue.pop()
        self.lsu.squash(from_seq)
        self.squash_from(from_seq, cycle)
