"""The CASINO core pipeline (Section III).

A cascade of in-order scheduling windows: dispatch fills the first
(speculative) S-IQ; each cycle the SpecInO window examines the S-IQ head —
ready instructions issue immediately (allocating a fresh physical register),
non-ready instructions are passed to the next queue (keeping their current
mapping); the final IQ issues strictly in program order along the serial
dependence chains.  Arbitration gives the IQ priority (its instructions are
always the oldest).  Wider designs (Section VI-F) insert intermediate
8-entry S-IQs between the first S-IQ and the IQ.

Because both issue and pass remove the *head* of a FIFO (nothing may leave
while an older instruction stays, or ROB allocation order would break), the
SpecInO[WS, SO] window reduces to processing the queue head up to WS times
per cycle with at most SO passes — exactly the behaviour of Figure 1d.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    RENAME_CONDITIONAL,
)
from repro.cores.casino.lsu import CasinoLsu
from repro.cores.casino.rename import ConditionalRenamer
from repro.engine.core_base import CoreModel, InflightInst


class CasinoCore(CoreModel):
    """Table I's ``CASINO`` model (and its Figure 7/8/10/11 variants)."""

    kind = "casino"

    def _reset(self) -> None:
        cfg = self.cfg
        sizes = ([cfg.siq_size]
                 + [cfg.intermediate_siq_size] * cfg.n_intermediate_siqs
                 + [cfg.iq_size])
        self.queues: List[Deque[InflightInst]] = [deque() for _ in sizes]
        self.queue_sizes = sizes
        self.rob: Deque[InflightInst] = deque()
        self.renamer = ConditionalRenamer(cfg, self.stats)
        self.lsu = CasinoLsu(cfg, self.hier, self.stats)
        self.dbuf_used = 0
        self._use_dbuf = cfg.rename_scheme == RENAME_CONDITIONAL

    def pipeline_empty(self) -> bool:
        return (not self.rob and self.lsu.empty
                and all(not q for q in self.queues))

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"queues={[list(q)[:3] for q in self.queues]} "
                f"rob={len(self.rob)} sq={len(self.lsu.sq)} "
                f"free=({self.renamer.free_int},{self.renamer.free_fp}) "
                f"dbuf={self.dbuf_used}")

    def _occupancy(self):
        cfg = self.cfg
        occ = {}
        for i, (queue, cap) in enumerate(zip(self.queues, self.queue_sizes)):
            name = "iq" if i == len(self.queues) - 1 else f"siq{i}"
            occ[name] = (len(queue), cap)
        occ["rob"] = (len(self.rob), cfg.rob_size)
        occ["sq_sb"] = (len(self.lsu.sq), cfg.sq_sb_size)
        occ["dbuf"] = (self.dbuf_used, cfg.data_buffer_size)
        renamer = self.renamer
        occ["prf_int"] = (cfg.prf_int - NUM_INT_ARCH - renamer.free_int,
                          cfg.prf_int - NUM_INT_ARCH)
        occ["prf_fp"] = (cfg.prf_fp - NUM_FP_ARCH - renamer.free_fp,
                         cfg.prf_fp - NUM_FP_ARCH)
        if self.lsu.mode == DISAMBIG_FULLY_OOO:
            occ["lq"] = (len(self.lsu.lq), cfg.lq_size)
        return occ

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        """Oldest uncommitted instruction: the ROB head, or — before
        anything has been renamed into the ROB — the first S-IQ head."""
        if self.rob:
            return self.rob[0]
        if self.queues[0]:
            return self.queues[0][0]
        return None

    def _stall_structure(self, head):
        """Which cascade queue holds the head (``siq0``..``iq``), or
        ``rob`` once it has issued and is only awaiting completion."""
        if head.issue_at is not None:
            return "rob"
        # An unissued oldest instruction is necessarily at the head of
        # whichever cascade queue holds it (queues are seq-ordered).
        last = len(self.queues) - 1
        for i, queue in enumerate(self.queues):
            if queue and head is queue[0]:
                return "iq" if i == last else f"siq{i}"
        return "rob"

    def _issue_gate(self):
        """Oldest unissued instruction: non-ready heads are passed
        *downstream*, so it sits at the head of the most-downstream
        non-empty queue (the IQ, once anything has reached it)."""
        for queue in reversed(self.queues):
            if queue:
                return queue[0]
        return None

    # -- cycle ----------------------------------------------------------------

    def _step(self, cycle: int) -> None:
        # Guards mirror each stage's own early-out so stalled cycles skip
        # the call entirely; the stages stay correct when called directly.
        lsu = self.lsu
        if lsu.sq:
            lsu.retire_head(cycle, self.fu)
        rob = self.rob
        if rob:
            done = rob[0].done_at
            if done is not None and done <= cycle:
                self._commit(cycle)
        budget = self.cfg.width
        if self.queues[-1]:
            budget -= self._issue_iq(cycle, budget)
        self._scan_siqs(cycle, budget)
        fq = self.fetch.queue
        if fq and fq[0].ready_at <= cycle:
            self._dispatch(cycle)

    # -- commit -----------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob = self.rob
        if not rob:
            return
        head_done = rob[0].done_at
        if head_done is None or head_done > cycle:
            return
        committed = 0
        counters = self.stats.counters
        width = self.cfg.width
        while (rob and committed < width
               and rob[0].done_at is not None
               and rob[0].done_at <= cycle):
            entry = rob[0]
            inst = entry.inst
            if inst.is_load and self.lsu.commit_load(entry, cycle):
                # On-commit value-check failed: flush this load and all
                # younger instructions, then re-execute.
                if self.tracer is not None:
                    self.tracer.emit("storeset_violation", cycle, entry.seq,
                                     mechanism="value_check")
                self._squash(entry.seq, cycle)
                return
            rob.popleft()
            if inst.is_store:
                self.lsu.commit_store(entry, cycle)
            self.renamer.commit(entry)
            if entry.queue_tag == "dbuf":
                self.dbuf_used -= 1
                counters["dbuf_access"] += 1.0
            counters["rob_reads"] += 1.0
            self.note_commit(entry, cycle)
            counters["committed_s_issue" if entry.from_siq
                     else "committed_iq_issue"] += 1.0
            committed += 1

    # -- issue from the final in-order IQ ------------------------------------------

    def _issue_iq(self, cycle: int, budget: int) -> int:
        """Strict in-order issue at the IQ head; returns slots used."""
        iq = self.queues[-1]
        if not iq:
            return 0
        issued = 0
        counters = self.stats.counters
        while iq and issued < budget:
            entry = iq[0]
            if not entry.ready(cycle):
                counters["iq_stall_src"] += 1.0
                break
            needs_dbuf = (self._use_dbuf and entry.inst.dst is not None)
            if needs_dbuf and self.dbuf_used >= self.cfg.data_buffer_size:
                counters["iq_stall_dbuf"] += 1.0
                break
            if not self.fu.take(entry.inst.op):
                counters["iq_stall_fu"] += 1.0
                break
            iq.popleft()
            if needs_dbuf:
                self.dbuf_used += 1
                entry.queue_tag = "dbuf"
                counters["dbuf_access"] += 1.0
            self.renamer.on_iq_issue(entry)
            self._execute(entry, cycle, from_iq=True)
            issued += 1
        return issued

    # -- SpecInO window scan over the cascaded S-IQs ---------------------------------

    def _scan_siqs(self, cycle: int, budget: int) -> None:
        """Process each S-IQ head with the [WS, SO] window, oldest queue
        (closest to the IQ) first."""
        queues = self.queues
        for qi in range(len(queues) - 2, -1, -1):
            if queues[qi]:
                budget -= self._scan_one_siq(qi, cycle, budget)

    def _scan_one_siq(self, qi: int, cycle: int, budget: int) -> int:
        queue = self.queues[qi]
        if not queue:
            return 0
        cfg = self.cfg
        next_queue = self.queues[qi + 1]
        next_cap = self.queue_sizes[qi + 1]
        first = qi == 0
        issued = 0
        processed = 0
        passes = 0
        counters = self.stats.counters
        while queue and processed < cfg.specino_ws:
            entry = queue[0]
            if first:
                counters["siq_examined"] += 1.0
            if entry.ready(cycle):
                if issued >= budget:
                    break  # ready but out of issue slots: wait, don't pass
                if not self._can_issue_spec(entry, first):
                    # Ready but resource-blocked: waiting at the head beats
                    # passing (footnote 1 of the paper).
                    break
                queue.popleft()
                self.fu.take(entry.inst.op)
                if first:
                    self._leave_first_siq(entry, passed=False)
                self._execute(entry, cycle, from_iq=False)
                issued += 1
                processed += 1
                continue
            # Not ready: try to pass it to the next queue.
            if (passes < cfg.specino_so
                    and len(next_queue) < next_cap
                    and (not first or self._can_pass_first(entry))):
                queue.popleft()
                if first:
                    self._leave_first_siq(entry, passed=True)
                next_queue.append(entry)
                if self.tracer is not None:
                    self.tracer.emit("siq_promote", cycle, entry.seq,
                                     from_queue=qi, to_queue=qi + 1)
                counters["siq_passes"] += 1.0
                passes += 1
                processed += 1
                continue
            break
        return issued

    def _can_pass_first(self, entry: InflightInst) -> bool:
        inst = entry.inst
        if len(self.rob) >= self.cfg.rob_size:
            return False
        if not self.renamer.can_pass(inst.dst):
            self.stats.add("pass_stall_rename")
            return False
        if inst.is_store and not self.lsu.has_store_space():
            return False
        return True

    def _can_issue_spec(self, entry: InflightInst, first: bool) -> bool:
        inst = entry.inst
        if first:
            if len(self.rob) >= self.cfg.rob_size:
                return False
            if not self.renamer.can_alloc(inst.dst):
                self.stats.add("issue_stall_prf")
                return False
            if inst.is_store and not self.lsu.has_store_space():
                return False
            if inst.is_load and not self.lsu.has_load_space():
                return False
        if inst.is_mem and self.cfg.disambiguation == DISAMBIG_AGI_ORDERING:
            if self._older_unissued_mem(entry.seq):
                self.stats.add("agi_order_stalls")
                return False
        if not self.fu.available(inst.op):
            return False
        return True

    def _older_unissued_mem(self, seq: int) -> bool:
        for other in self.rob:
            if other.seq >= seq:
                break
            if other.inst.is_mem and other.issue_at is None:
                return True
        return False

    def _leave_first_siq(self, entry: InflightInst, passed: bool) -> None:
        """Rename + allocate ROB/SQ as the instruction exits the first S-IQ."""
        if passed:
            self.renamer.rename_passed(entry)
        else:
            self.renamer.rename_speculative(entry)
            entry.from_siq = True
        self.rob.append(entry)
        self.stats.counters["rob_writes"] += 1.0
        if entry.inst.is_store:
            self.lsu.dispatch_store(entry)

    # -- execution ---------------------------------------------------------------

    def _execute(self, entry: InflightInst, cycle: int, from_iq: bool) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        counters = self.stats.counters
        if from_iq:
            counters["issued_iq"] += 1.0
            counters["issued_iq_mem" if inst.is_mem
                     else "issued_iq_nonmem"] += 1.0
        else:
            entry.from_siq = True
            counters["issued_spec"] += 1.0
            counters["issued_spec_mem" if inst.is_mem
                     else "issued_spec_nonmem"] += 1.0
        counters["issued"] += 1.0
        counters["prf_reads"] += float(len(inst.srcs))
        if inst.dst is not None:
            counters["prf_writes"] += 1.0
        if inst.is_load:
            forward = self.lsu.load_issued(entry, cycle, from_iq)
            entry.forward_store = forward
            if forward is not None:
                entry.done_at = cycle + 2
                counters["stl_forwards"] += 1.0
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1
            self.lsu.store_issued(entry, cycle)
            if self.lsu.violation_seq is not None:
                victim = self.lsu.violation_seq
                self.lsu.violation_seq = None
                if self.tracer is not None:
                    self.tracer.emit("storeset_violation", cycle, victim,
                                     mechanism="lq_search", store=entry.seq)
                self._squash(victim, cycle)
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle, from_iq=from_iq)
        self.resolve_branch_if_gating(entry)
        self._schedule_wakeup(entry)

    # -- event-driven fast forward --------------------------------------------

    def _next_event_cycle(self, cycle: int):
        # Cheapest and most frequent dense-cycle trigger first, before any
        # allocation: the ROB head committing (all checks are read-only, so
        # evaluation order does not matter for correctness).
        if self.rob:
            head = self.rob[0]
            if head.done_at is not None and head.done_at <= cycle:
                return None  # commits (or value-check squashes) this cycle
        rates = {}
        cand = []
        cfg = self.cfg
        if not self.lsu.retire_quiescent(cycle, rates, cand):
            return None  # SB head retires
        iq = self.queues[-1]
        if iq:
            head = iq[0]
            if not head.ready(cycle):
                rates["iq_stall_src"] = 1
            elif (self._use_dbuf and head.inst.dst is not None
                    and self.dbuf_used >= cfg.data_buffer_size):
                rates["iq_stall_dbuf"] = 1
            elif not self.fu.zero_capacity(head.inst.op):
                return None  # IQ head would issue
            else:
                rates["iq_stall_fu"] = 1
        for qi in range(len(self.queues) - 2, -1, -1):
            if not self._siq_quiescent(qi, cycle, rates):
                return None
        if not self._dispatch_quiescent(
                cycle, cand, self.queue_sizes[0] - len(self.queues[0])):
            return None
        if not self._fetch_quiescent(cycle, cand):
            return None
        return self._finish_hint(cand, rates)

    def _siq_quiescent(self, qi: int, cycle: int, rates) -> bool:
        """True when this S-IQ's head scan is provably a no-op at
        ``cycle`` (one head examination, no issue, no pass) — mirroring
        the exact break order and counters of ``_scan_one_siq``."""
        queue = self.queues[qi]
        if not queue:
            return True
        first = qi == 0
        entry = queue[0]
        if first:
            rates["siq_examined"] = 1
        if entry.ready(cycle):
            return self._spec_issue_blocked(entry, first, rates)
        if self.cfg.specino_so < 1:
            return True
        if len(self.queues[qi + 1]) >= self.queue_sizes[qi + 1]:
            return True
        if first:
            return self._pass_blocked(entry, rates)
        return False  # the non-ready head would pass downstream

    def _spec_issue_blocked(self, entry: InflightInst, first: bool,
                            rates) -> bool:
        """Read-only twin of ``_can_issue_spec`` (same counter effects):
        True when the ready head cannot issue this cycle."""
        inst = entry.inst
        if first:
            if len(self.rob) >= self.cfg.rob_size:
                return True
            if not self.renamer.can_alloc(inst.dst):
                rates["issue_stall_prf"] = rates.get("issue_stall_prf", 0) + 1
                return True
            if inst.is_store and not self.lsu.has_store_space():
                return True
            if inst.is_load and not self.lsu.has_load_space():
                return True
        if inst.is_mem and self.cfg.disambiguation == DISAMBIG_AGI_ORDERING:
            if self._older_unissued_mem(entry.seq):
                rates["agi_order_stalls"] = (
                    rates.get("agi_order_stalls", 0) + 1)
                return True
        return self.fu.zero_capacity(inst.op)

    def _pass_blocked(self, entry: InflightInst, rates) -> bool:
        """Read-only twin of ``_can_pass_first`` (same counter effects):
        True when the non-ready first-S-IQ head cannot pass downstream."""
        inst = entry.inst
        if len(self.rob) >= self.cfg.rob_size:
            return True
        if not self.renamer.can_pass(inst.dst):
            rates["pass_stall_rename"] = rates.get("pass_stall_rename", 0) + 1
            return True
        if inst.is_store and not self.lsu.has_store_space():
            return True
        return False

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        fq = self.fetch.queue
        if not fq or fq[0].ready_at > cycle:
            return
        first = self.queues[0]
        space = self.queue_sizes[0] - len(first)
        counters = self.stats.counters
        for inst in self.fetch.pop_ready(cycle, min(space, self.cfg.width)):
            first.append(self.make_entry(inst))
            counters["dispatched"] += 1.0

    # -- squash ---------------------------------------------------------------------

    def _squash(self, from_seq: int, cycle: int) -> None:
        """Flush ``from_seq`` and younger; recover RAT/ProducerCount/OSCA."""
        # Walk the ROB young -> old, undoing rename state.
        squashed = []
        while self.rob and self.rob[-1].seq >= from_seq:
            entry = self.rob.pop()
            squashed.append(entry)
            if entry.queue_tag == "dbuf":
                self.dbuf_used -= 1
        self.renamer.squash(squashed)
        for queue in self.queues:
            while queue and queue[-1].seq >= from_seq:
                queue.pop()
        self.lsu.squash(from_seq)
        self.squash_from(from_seq, cycle)
