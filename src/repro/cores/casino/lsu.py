"""CASINO load/store unit (Sections III-C4, IV-2, IV-3).

The SQ and SB are one physical CAM structure, logically split by pointers:
a store enters the SQ part when it leaves the S-IQ, moves to the SB part at
commit, and retires to the L1D from the SB head.  Memory disambiguation uses
the *on-commit value-check*: a speculatively-issued load places a sentinel
on the oldest relevant unresolved older store; at commit it re-searches the
SB up to that sentinel and flushes on an address match.  The OSCA lets loads
with no outstanding matching stores skip the associative search entirely.

Four disambiguation modes cover Figure 8:

* ``fully_ooo``     — conventional LQ, violations found by resolving stores;
* ``agi_ordering``  — memory ops issue in program order, no speculation;
* ``nolq``          — on-commit value-check without the OSCA filter;
* ``nolq_osca``     — value-check plus OSCA (the CASINO design point).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.params import (
    CoreConfig,
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    DISAMBIG_NOLQ,
    DISAMBIG_NOLQ_OSCA,
)
from repro.common.stats import Stats
from repro.cores.casino.osca import Osca
from repro.engine.core_base import InflightInst


class CasinoLsu:
    """Unified SQ/SB with sentinel tracking and the OSCA filter."""

    def __init__(self, cfg: CoreConfig, hierarchy, stats: Stats) -> None:
        self.cfg = cfg
        self.hier = hierarchy
        self.stats = stats
        self.mode = cfg.disambiguation
        self.sq: Deque[InflightInst] = deque()   # program order, SQ then SB part
        self.lq: List[InflightInst] = []         # fully_ooo mode only
        # store entry -> seq of the youngest load holding a sentinel on it
        self.sentinels: Dict[InflightInst, int] = {}
        #: Set by the fully_ooo mode when a resolving store catches a
        #: prematurely-issued load; the core polls and squashes.
        self.violation_seq: Optional[int] = None
        self.osca: Optional[Osca] = None
        if self.mode == DISAMBIG_NOLQ_OSCA:
            self.osca = Osca(cfg.osca_entries, cfg.osca_granule,
                             cfg.sq_sb_size, stats)
        # Speculative loads currently pinning their cache lines (TSO).
        self._line_pins: List[InflightInst] = []

    # -- capacity ---------------------------------------------------------------

    def has_store_space(self) -> bool:
        return len(self.sq) < self.cfg.sq_sb_size

    def has_load_space(self) -> bool:
        if self.mode != DISAMBIG_FULLY_OOO:
            return True
        return len(self.lq) < self.cfg.lq_size

    @property
    def empty(self) -> bool:
        return not self.sq

    # -- store lifecycle -----------------------------------------------------------

    def dispatch_store(self, entry: InflightInst) -> None:
        """Store leaves the S-IQ: allocate its SQ entry (tail)."""
        self.sq.append(entry)
        self.stats.add("sq_writes")

    def store_issued(self, store: InflightInst, cycle: int) -> None:
        """The store's address resolved (it issued)."""
        if self.osca is not None:
            self.osca.inc(store.inst.mem_addr, store.inst.mem_size)
        if self.mode == DISAMBIG_FULLY_OOO:
            self._lq_violation_check(store, cycle)

    def commit_store(self, store: InflightInst, cycle: int) -> None:
        """ROB commit: the entry logically moves from SQ part to SB part,
        and its write-allocate fill starts."""
        store.committed = True
        latency = self.hier.store(store.inst.mem_addr, cycle)
        hit = self.hier.l1d.cfg.latency
        store.fill_ready = cycle + max(0, latency - hit)

    def retire_head(self, cycle: int, fu) -> None:
        """Drain the SB head into the L1D (blocked by sentinels)."""
        if not self.sq or not self.sq[0].committed:
            return
        head = self.sq[0]
        if head in self.sentinels:
            self.stats.counters["sb_sentinel_blocks"] += 1.0
            return
        if head.fill_ready is None or cycle < head.fill_ready:
            return
        if not fu.take_store_port():
            return
        self.sq.popleft()
        self.stats.counters["sb_retires"] += 1.0
        if self.osca is not None:
            self.osca.dec(head.inst.mem_addr, head.inst.mem_size)

    def retire_quiescent(self, cycle: int, rates: Dict[str, int],
                         cand: List[int]) -> bool:
        """Fast-forward twin of :meth:`retire_head`, strictly read-only:
        True when the SB head provably does not retire at ``cycle``
        (recording the per-cycle counter it bumps while blocked, or the
        fill-arrival cycle as an event candidate); False when it would."""
        if not self.sq or not self.sq[0].committed:
            return True
        head = self.sq[0]
        if head in self.sentinels:
            rates["sb_sentinel_blocks"] = 1
            return True
        if head.fill_ready is None or cycle < head.fill_ready:
            if head.fill_ready is not None:
                cand.append(head.fill_ready)
            return True
        return False

    # -- load issue ------------------------------------------------------------------

    def load_issued(self, load: InflightInst, cycle: int,
                    from_iq: bool) -> Optional[InflightInst]:
        """Handle a load issuing; returns the forwarding store, if any.

        Also snapshots the relevant unresolved older stores and sets the
        sentinel per Section III-C4 (value-check modes only).
        """
        if self.mode == DISAMBIG_FULLY_OOO:
            return self._load_issued_lq(load, cycle)

        unresolved = []
        if not from_iq and self.mode != DISAMBIG_AGI_ORDERING:
            unresolved = [s for s in self.sq
                          if s.seq < load.seq and s.issue_at is None]
        skip_search = False
        if self.osca is not None:
            skip_search = self.osca.outstanding(
                load.inst.mem_addr, load.inst.mem_size) == 0
            if skip_search:
                self.stats.counters["osca_search_skips"] += 1.0
                load.osca_skipped = True
        forward = None
        if not skip_search:
            self.stats.add("sq_searches")
            forward = self._youngest_forwarder(load)
        if forward is not None:
            # Only unresolved stores younger than the forwarder matter.
            unresolved = [s for s in unresolved if s.seq > forward.seq]
        load.unresolved_older = unresolved
        if unresolved:
            # Sentinel on the oldest relevant unresolved store; younger
            # loads replace older sentinel owners.
            target = min(unresolved, key=lambda s: s.seq)
            load.sentinel_on = target
            previous = self.sentinels.get(target)
            if previous is None or load.seq > previous:
                self.sentinels[target] = load.seq
            self.stats.add("sentinels_set")
        if not from_iq:
            # Load->load ordering (TSO): pin the cache line so remote
            # invalidations are withheld until this load commits.
            self.hier.add_line_sentinel(load.inst.mem_addr)
            self._line_pins.append(load)
        return forward

    def _youngest_forwarder(self, load: InflightInst) -> Optional[InflightInst]:
        forward = None
        for store in self.sq:
            if (store.seq < load.seq and store.issue_at is not None
                    and store.inst.overlaps(load.inst)):
                if forward is None or store.seq > forward.seq:
                    forward = store
        return forward

    # -- conventional-LQ mode (Figure 8 "Fully OoO") ------------------------------------

    def _load_issued_lq(self, load: InflightInst,
                        cycle: int) -> Optional[InflightInst]:
        self.stats.add("sq_searches")
        self.stats.add("lq_writes")
        self.lq.append(load)
        return self._youngest_forwarder(load)

    def _lq_violation_check(self, store: InflightInst, cycle: int) -> None:
        self.stats.add("lq_searches")
        victim = None
        for load in self.lq:
            if (load.seq > store.seq and load.issue_at is not None
                    and load.inst.overlaps(store.inst)):
                source = load.forward_store
                if source is None or source.seq < store.seq:
                    if victim is None or load.seq < victim.seq:
                        victim = load
        if victim is not None:
            self.stats.add("mem_order_violations")
            self.violation_seq = victim.seq

    # -- load commit (value-check) ----------------------------------------------------

    def commit_load(self, load: InflightInst, cycle: int) -> bool:
        """Validate a committing load; True => memory-order violation.

        In the value-check modes a speculative load (one that recorded
        unresolved older stores) re-searches the SB from the tail to its
        sentinel; an address match means a violation.
        """
        if self.mode == DISAMBIG_FULLY_OOO:
            if load in self.lq:
                self.lq.remove(load)
            self.stats.add("lq_reads")
            return False
        self._unpin_line(load)
        violation = False
        if load.unresolved_older:
            self.stats.add("sq_searches")
            self.stats.add("sq_commit_searches")
            for store in load.unresolved_older:
                if store.inst.overlaps(load.inst):
                    violation = True
                    break
            target = load.sentinel_on
            if target is not None and self.sentinels.get(target) == load.seq:
                del self.sentinels[target]
        if violation:
            self.stats.add("mem_order_violations")
        return violation

    def _unpin_line(self, load: InflightInst) -> None:
        if load in self._line_pins:
            self._line_pins.remove(load)
            self.hier.remove_line_sentinel(load.inst.mem_addr)

    # -- squash ---------------------------------------------------------------------

    def squash(self, from_seq: int) -> None:
        """Drop stores at/after ``from_seq``; unwind OSCA and sentinels."""
        for load in [l for l in self._line_pins if l.seq >= from_seq]:
            self._unpin_line(load)
        while self.sq and self.sq[-1].seq >= from_seq:
            store = self.sq.pop()
            if self.osca is not None and store.issue_at is not None:
                self.osca.dec(store.inst.mem_addr, store.inst.mem_size)
            self.sentinels.pop(store, None)
        # Sentinels owned by squashed loads are cleared (Section III-C5).
        stale = [s for s, owner in self.sentinels.items() if owner >= from_seq]
        for store in stale:
            del self.sentinels[store]
        if self.mode == DISAMBIG_FULLY_OOO:
            self.lq = [l for l in self.lq if l.seq < from_seq]
