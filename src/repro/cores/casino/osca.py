"""Outstanding Store Counter Array (Section III-C4).

A small, direct-mapped, tagless array of saturating counters indexed by the
low bits of the memory address (4-byte granules).  Counters are incremented
when a store's address resolves and decremented when the store retires (or
is squashed), so a zero counter proves no outstanding store targets those
bytes and the load may skip its associative SQ/SB search.

Each counter is ``log2(SQ+SB entries)`` bits wide (Section IV-3) so it can
hold every outstanding store — saturation, and the deadlock it could cause,
is impossible by construction; this module asserts that invariant.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.stats import Stats


class Osca:
    """The OSCA filter."""

    def __init__(self, entries: int = 64, granule: int = 4,
                 max_outstanding: int = 8,
                 stats: Optional[Stats] = None) -> None:
        if entries <= 0 or granule <= 0:
            raise ValueError("entries and granule must be positive")
        self.entries = entries
        self.granule = granule
        # Counter width log2(SQ+SB): with 8 outstanding stores this is
        # 3 bits minimum; any store may touch two granules, hence 2x.
        self.cap = 2 * max_outstanding
        self.counters = [0] * entries
        self.stats = stats if stats is not None else Stats()

    def _slots(self, addr: int, size: int) -> Iterable[int]:
        first = addr // self.granule
        last = (addr + size - 1) // self.granule
        return (slot % self.entries for slot in range(first, last + 1))

    def inc(self, addr: int, size: int) -> None:
        """A store to [addr, addr+size) became outstanding."""
        for slot in self._slots(addr, size):
            if self.counters[slot] >= self.cap:
                raise AssertionError(
                    "OSCA counter saturated: sizing invariant violated")
            self.counters[slot] += 1

    def dec(self, addr: int, size: int) -> None:
        """A store retired (or was squashed after resolving)."""
        for slot in self._slots(addr, size):
            if self.counters[slot] <= 0:
                raise AssertionError("OSCA counter underflow")
            self.counters[slot] -= 1

    def outstanding(self, addr: int, size: int) -> int:
        """Max counter value over the load's granules (0 => skip search)."""
        self.stats.counters["osca_access"] += 1.0
        return max(self.counters[slot] for slot in self._slots(addr, size))

    @property
    def total(self) -> int:
        """Sum of all counters (used by invariant checks in tests)."""
        return sum(self.counters)
