"""Conditional register renaming (Sections III-B2, III-C2, IV-1).

Free physical registers are allocated *only* to instructions issued
speculatively from the S-IQ.  An instruction passed to the in-order IQ keeps
the current mapping of its destination register; since IQ instructions issue
strictly in program order, multiple pending writers can safely share one
physical register.  The sharing degree is bounded by a 2-bit ProducerCount
per physical register (at most three pending IQ writers).

The renamer also supports the conventional scheme (allocate on every
destination) for the Figure 7 comparison and for the wider cascaded designs
of Section VI-F, where renaming happens once at the head of the first S-IQ.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.common.params import (
    CoreConfig,
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    RENAME_CONDITIONAL,
)
from repro.common.stats import Stats
from repro.engine.core_base import InflightInst
from repro.isa.registers import is_fp_reg


class ConditionalRenamer:
    """RAT + free lists + ProducerCount + recovery log (counting model).

    Physical registers are virtual integer ids; the free lists are counters
    sized by Table I (e.g. 32 INT / 14 FP for CASINO => 16 / 6 spare).  The
    recovery log is implicit: each speculatively-renamed instruction records
    its previous mapping, and squash recovery walks young-to-old.
    """

    def __init__(self, cfg: CoreConfig, stats: Optional[Stats] = None) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.conditional = cfg.rename_scheme == RENAME_CONDITIONAL
        self.free_int = cfg.prf_int - NUM_INT_ARCH
        self.free_fp = cfg.prf_fp - NUM_FP_ARCH
        if self.free_int < 0 or self.free_fp < 0:
            raise ValueError("PRF smaller than the architectural file")
        # RAT: architectural -> physical id.  Ids < 1000 are the initial
        # architectural homes; allocations start at 1000.
        self.rat: Dict[int, int] = {r: r for r in range(NUM_INT_ARCH + NUM_FP_ARCH)}
        self.pending: Dict[int, int] = {}   # phys id -> ProducerCount
        self._next_phys = 1000

    # -- queries ---------------------------------------------------------------

    def can_alloc(self, dst: Optional[int]) -> bool:
        """Is a free physical register of the right class available?"""
        if dst is None:
            return True
        return (self.free_fp if is_fp_reg(dst) else self.free_int) > 0

    def can_pass(self, dst: Optional[int]) -> bool:
        """May an instruction writing ``dst`` be passed to the IQ?

        Conditional scheme: bounded by ProducerCount.  Conventional scheme:
        passing also allocates, so it needs a free register.
        """
        if dst is None:
            return True
        if not self.conditional:
            return self.can_alloc(dst)
        phys = self.rat[dst]
        return self.pending.get(phys, 0) < self.cfg.producer_count_max

    # -- rename actions ------------------------------------------------------------

    def rename_speculative(self, entry: InflightInst) -> None:
        """Speculative issue from the S-IQ: allocate a fresh register."""
        self.stats.counters["rat_reads"] += float(len(entry.inst.srcs))
        dst = entry.inst.dst
        if dst is None:
            return
        self._alloc(entry, dst)

    def rename_passed(self, entry: InflightInst) -> None:
        """Pass to the IQ: reuse the current mapping (conditional scheme)
        or allocate conventionally."""
        self.stats.counters["rat_reads"] += float(len(entry.inst.srcs))
        dst = entry.inst.dst
        if dst is None:
            return
        if not self.conditional:
            self._alloc(entry, dst)
            return
        phys = self.rat[dst]
        count = self.pending.get(phys, 0)
        if count >= self.cfg.producer_count_max:
            raise AssertionError("rename_passed without can_pass check")
        self.pending[phys] = count + 1
        entry.phys = phys
        entry.fresh_phys = False
        self.stats.counters["producer_count_incs"] += 1.0

    def _alloc(self, entry: InflightInst, dst: int) -> None:
        if is_fp_reg(dst):
            if self.free_fp <= 0:
                raise AssertionError("allocation without can_alloc check")
            self.free_fp -= 1
        else:
            if self.free_int <= 0:
                raise AssertionError("allocation without can_alloc check")
            self.free_int -= 1
        entry.prev_phys = self.rat[dst]
        entry.phys = self._next_phys
        entry.fresh_phys = True
        self._next_phys += 1
        self.rat[dst] = entry.phys
        counters = self.stats.counters
        counters["rat_writes"] += 1.0
        counters["reg_allocs"] += 1.0
        counters["reg_allocs_fp" if is_fp_reg(dst) else "reg_allocs_int"] += 1.0

    # -- lifecycle events ---------------------------------------------------------

    def on_iq_issue(self, entry: InflightInst) -> None:
        """An IQ instruction issued: drop its ProducerCount share."""
        if entry.inst.dst is None or entry.fresh_phys or not self.conditional:
            return
        phys = entry.phys
        count = self.pending.get(phys, 0)
        if count <= 0:
            raise AssertionError("ProducerCount underflow")
        if count == 1:
            del self.pending[phys]
        else:
            self.pending[phys] = count - 1

    def commit(self, entry: InflightInst) -> None:
        """Commit: a fresh allocation releases the previous mapping."""
        if entry.fresh_phys:
            self._free(entry.inst.dst)

    def _free(self, dst: int) -> None:
        if is_fp_reg(dst):
            self.free_fp += 1
        else:
            self.free_int += 1
        self.stats.counters["freelist_ops"] += 1.0

    def squash(self, entries_young_to_old: Iterable[InflightInst]) -> None:
        """Recovery-log walk: undo rename effects of squashed instructions.

        ``entries_young_to_old`` must be the squashed, renamed-but-uncommitted
        instructions in reverse program order.
        """
        for entry in entries_young_to_old:
            dst = entry.inst.dst
            if dst is None:
                continue
            if entry.fresh_phys:
                # Return the allocation and restore the previous mapping.
                self._free(dst)
                if self.rat[dst] == entry.phys:
                    self.rat[dst] = entry.prev_phys
            elif self.conditional and entry.issue_at is None:
                # Passed to the IQ but never issued: ProducerCount recovery
                # by dequeuing (Section III-C5).
                phys = entry.phys
                count = self.pending.get(phys, 0)
                if count > 0:
                    if count == 1:
                        del self.pending[phys]
                    else:
                        self.pending[phys] = count - 1

    # -- invariant helpers (used by tests) ------------------------------------------

    @property
    def free_total(self) -> int:
        return self.free_int + self.free_fp
