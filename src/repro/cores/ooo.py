"""Conventional out-of-order core (Section II-B baseline).

Full register renaming (48 INT / 24 FP physical registers), a 16-entry
CAM-wakeup issue queue with oldest-first select, a 32-entry ROB, and a
conventional LSU: 16-entry load queue plus a unified 8-entry store
queue/buffer.  Loads issue speculatively past unresolved stores, moderated
by a store-set memory dependence predictor (Chrysos & Emer); a resolving
store searches the LQ for prematurely-issued younger loads and squashes on
a match.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.params import NUM_FP_ARCH, NUM_INT_ARCH
from repro.engine.core_base import CoreModel, InflightInst


class StoreSets:
    """Store-set memory dependence predictor."""

    def __init__(self) -> None:
        self.ssit: Dict[int, int] = {}           # pc -> store-set id
        self.lfst: Dict[int, InflightInst] = {}  # set id -> last in-flight store
        self._next_set = 0

    def on_violation(self, store_pc: int, load_pc: int) -> None:
        """Merge the store and load into one set (simplified merge rule)."""
        sid = self.ssit.get(store_pc)
        if sid is None:
            sid = self.ssit.get(load_pc)
        if sid is None:
            sid = self._next_set
            self._next_set += 1
        self.ssit[store_pc] = sid
        self.ssit[load_pc] = sid

    def store_dispatched(self, store: InflightInst) -> None:
        sid = self.ssit.get(store.inst.pc)
        if sid is not None:
            self.lfst[sid] = store

    def predicted_store(self, load: InflightInst) -> Optional[InflightInst]:
        """LFST lookup at load *dispatch*: the in-flight store this load is
        predicted to depend on (Chrysos & Emer read the LFST in the front
        end, so only older stores can be returned)."""
        sid = self.ssit.get(load.inst.pc)
        if sid is None:
            return None
        store = self.lfst.get(sid)
        if store is not None and store.seq < load.seq:
            return store
        return None

    def drop_squashed(self, from_seq: int) -> None:
        stale = [sid for sid, st in self.lfst.items() if st.seq >= from_seq]
        for sid in stale:
            del self.lfst[sid]


class OutOfOrderCore(CoreModel):
    """Table I's ``OoO`` model."""

    kind = "ooo"

    def _reset(self) -> None:
        self.iq: List[InflightInst] = []
        self.rob: Deque[InflightInst] = deque()
        self.lq: List[InflightInst] = []
        self.sq: Deque[InflightInst] = deque()   # unified SQ + SB
        self.free_int = self.cfg.prf_int - NUM_INT_ARCH
        self.free_fp = self.cfg.prf_fp - NUM_FP_ARCH
        self.store_sets = StoreSets() if self.cfg.store_sets else None
        self.nolq = self.cfg.disambiguation in ("nolq", "nolq_osca")

    def pipeline_empty(self) -> bool:
        return not self.rob and not self.sq

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"rob={len(self.rob)} iq={list(self.iq)[:4]} "
                f"lq={len(self.lq)} sq={len(self.sq)} "
                f"free=({self.free_int},{self.free_fp})")

    def _occupancy(self):
        cfg = self.cfg
        occ = {
            "rob": (len(self.rob), cfg.rob_size),
            "iq": (len(self.iq), cfg.iq_size),
            "sq_sb": (len(self.sq), cfg.sq_sb_size),
            "prf_int": (cfg.prf_int - NUM_INT_ARCH - self.free_int,
                        cfg.prf_int - NUM_INT_ARCH),
            "prf_fp": (cfg.prf_fp - NUM_FP_ARCH - self.free_fp,
                       cfg.prf_fp - NUM_FP_ARCH),
        }
        if not self.nolq:
            occ["lq"] = (len(self.lq), cfg.lq_size)
        return occ

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        return self.rob[0] if self.rob else None

    def _stall_structure(self, head):
        return "rob" if head.issue_at is not None else "iq"

    def _step(self, cycle: int) -> None:
        self._retire_stores(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._dispatch(cycle)

    # -- store retirement (SB part of the unified SQ/SB) -----------------------

    def _retire_stores(self, cycle: int) -> None:
        if not self.sq or not self.sq[0].committed:
            return
        head = self.sq[0]
        if not self.store_fill_arrived(head, cycle):
            return
        if not self.fu.take_store_port():
            return
        self.sq.popleft()
        self.stats.add("sq_reads")
        self.stats.add("sb_retires")

    # -- commit -----------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        committed = 0
        while (self.rob and committed < self.cfg.width
               and self.rob[0].done_at is not None
               and self.rob[0].done_at <= cycle):
            entry = self.rob[0]
            inst = entry.inst
            if inst.is_load and self.nolq:
                # On-commit value-check: re-search the SB up to the oldest
                # store that was unresolved at issue time.
                if entry.unresolved_older:
                    self.stats.add("sq_searches")
                    if any(s.inst.overlaps(inst)
                           for s in entry.unresolved_older):
                        self.stats.add("mem_order_violations")
                        if self.tracer is not None:
                            self.tracer.emit("storeset_violation", cycle,
                                             entry.seq,
                                             mechanism="value_check")
                        self._squash(entry.seq, cycle)
                        return
            elif inst.is_load:
                self.lq.remove(entry)
                self.stats.add("lq_reads")
            self.rob.popleft()
            if inst.is_store:
                # Enters the SB part; the write-allocate fill starts now.
                self.start_store_fill(entry, cycle)
            if inst.dst is not None:
                self._free_reg(inst.dst)
            self.note_commit(entry, cycle)
            self.stats.counters["rob_reads"] += 1.0
            committed += 1

    def _free_reg(self, dst: int) -> None:
        if dst >= NUM_INT_ARCH:
            self.free_fp += 1
        else:
            self.free_int += 1
        self.stats.counters["freelist_ops"] += 1.0

    # -- issue (wakeup / select) -------------------------------------------------

    def _issue(self, cycle: int) -> None:
        if not self.iq:
            return
        counters = self.stats.counters
        counters["iq_select"] += 1.0
        candidates = [e for e in self.iq if e.ready(cycle)]
        candidates.sort(key=lambda e: e.seq)  # oldest-first age matrix
        issued = 0
        for entry in candidates:
            if issued >= self.cfg.width:
                break
            if entry not in self.iq:
                continue  # removed by a squash triggered earlier this cycle
            inst = entry.inst
            if inst.is_load and entry.sentinel_on is not None:
                # Store-set dependence recorded at dispatch: wait for the
                # predicted store to resolve (or vanish in a squash).
                pred = entry.sentinel_on
                if pred.issue_at is None and pred in self.sq:
                    counters["storeset_blocks"] += 1.0
                    continue
                entry.sentinel_on = None
            if not self.fu.take(inst.op):
                continue
            self.iq.remove(entry)
            self._execute(entry, cycle)
            issued += 1
            counters["issued"] += 1.0
            counters["prf_reads"] += float(len(inst.srcs))
            counters["prf_writes"] += 1.0 if inst.dst is not None else 0.0
            # Completion broadcasts the dest tag across the IQ CAM.
            counters["iq_wakeup_cam"] += float(len(self.iq))

    def _execute(self, entry: InflightInst, cycle: int) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        if inst.is_load:
            self._execute_load(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1
            self._store_resolved(entry, cycle)
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle)
        self.resolve_branch_if_gating(entry)
        self._schedule_wakeup(entry)

    def _execute_load(self, entry: InflightInst, cycle: int) -> None:
        # Forwarding search over the unified SQ/SB.
        self.stats.add("sq_searches")
        if self.nolq:
            # On-commit value-check (Figure 9's OoO+NoLQ variant): snapshot
            # the unresolved older stores instead of entering the LQ.
            entry.unresolved_older = [
                s for s in self.sq
                if s.seq < entry.seq and s.issue_at is None]
        else:
            self.stats.add("lq_writes")
        forward = None
        for store in self.sq:
            if (store.seq < entry.seq and store.resolved
                    and store.inst.overlaps(entry.inst)):
                if forward is None or store.seq > forward.seq:
                    forward = store
        if self.nolq and forward is not None:
            entry.unresolved_older = [s for s in entry.unresolved_older
                                      if s.seq > forward.seq]
        entry.forward_store = forward
        if forward is not None:
            entry.done_at = cycle + 2
            self.stats.add("stl_forwards")
        else:
            entry.done_at = cycle + self.load_latency(entry, cycle)

    def _store_resolved(self, store: InflightInst, cycle: int) -> None:
        """A store's address resolved: search the LQ for violations."""
        if self.store_sets is not None:
            sid = self.store_sets.ssit.get(store.inst.pc)
            if sid is not None and self.store_sets.lfst.get(sid) is store:
                del self.store_sets.lfst[sid]
        if self.nolq:
            return  # violations are found by the loads at commit
        self.stats.add("lq_searches")
        victim = None
        for load in self.lq:
            if (load.seq > store.seq and load.issue_at is not None
                    and load.inst.overlaps(store.inst)):
                source = load.forward_store
                if source is None or source.seq < store.seq:
                    if victim is None or load.seq < victim.seq:
                        victim = load
        if victim is not None:
            self.stats.add("mem_order_violations")
            if self.tracer is not None:
                self.tracer.emit("storeset_violation", cycle, victim.seq,
                                 mechanism="lq_search", store=store.seq)
            if self.store_sets is not None:
                self.store_sets.on_violation(store.inst.pc, victim.inst.pc)
            self._squash(victim.seq, cycle)

    # -- squash ------------------------------------------------------------------

    def _squash(self, from_seq: int, cycle: int) -> None:
        self.iq = [e for e in self.iq if e.seq < from_seq]
        self.lq = [e for e in self.lq if e.seq < from_seq]
        while self.sq and self.sq[-1].seq >= from_seq:
            self.sq.pop()
        while self.rob and self.rob[-1].seq >= from_seq:
            entry = self.rob.pop()
            if entry.inst.dst is not None:
                self._free_reg(entry.inst.dst)  # return the allocation
        if self.store_sets is not None:
            self.store_sets.drop_squashed(from_seq)
        self.squash_from(from_seq, cycle)

    # -- dispatch (rename + allocate) ----------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        dispatched = 0
        counters = self.stats.counters
        while dispatched < self.cfg.width:
            inst = self.fetch.peek_ready(cycle)
            if inst is None:
                break
            if len(self.rob) >= self.cfg.rob_size or len(self.iq) >= self.cfg.iq_size:
                self.stats.add("dispatch_stall_window")
                break
            if (inst.is_load and not self.nolq
                    and len(self.lq) >= self.cfg.lq_size):
                self.stats.add("dispatch_stall_lq")
                break
            if inst.is_store and len(self.sq) >= self.cfg.sq_sb_size:
                self.stats.add("dispatch_stall_sq")
                break
            if inst.dst is not None and not self._alloc_reg(inst.dst):
                self.stats.add("dispatch_stall_prf")
                break
            self.fetch.pop_ready(cycle, 1)
            entry = self.make_entry(inst)
            entry.fresh_phys = inst.dst is not None
            counters["rat_reads"] += float(len(inst.srcs))
            if inst.dst is not None:
                counters["rat_writes"] += 1.0
            self.iq.append(entry)
            self.rob.append(entry)
            counters["rob_writes"] += 1.0
            counters["iq_writes"] += 1.0
            if inst.is_load and not self.nolq:
                self.lq.append(entry)
            if inst.is_load and self.store_sets is not None:
                entry.sentinel_on = self.store_sets.predicted_store(entry)
            if inst.is_store:
                self.sq.append(entry)
                self.stats.add("sq_writes")
                if self.store_sets is not None:
                    self.store_sets.store_dispatched(entry)
            dispatched += 1
            counters["dispatched"] += 1.0

    def _alloc_reg(self, dst: int) -> bool:
        if dst >= NUM_INT_ARCH:
            if self.free_fp <= 0:
                return False
            self.free_fp -= 1
        else:
            if self.free_int <= 0:
                return False
            self.free_int -= 1
        self.stats.counters["freelist_ops"] += 1.0
        return True

    def _can_alloc(self, dst: int) -> bool:
        """Read-only twin of ``_alloc_reg`` for the fast-forward check."""
        return (self.free_fp if dst >= NUM_INT_ARCH else self.free_int) > 0

    # -- event-driven fast forward --------------------------------------------

    def _next_event_cycle(self, cycle: int):
        rates = {}
        cand = []
        cfg = self.cfg
        if self.sq and self.sq[0].committed:
            head = self.sq[0]
            if head.fill_ready is not None and head.fill_ready > cycle:
                cand.append(head.fill_ready)
            else:
                return None  # SB head retires
        if self.rob:
            head = self.rob[0]
            if head.done_at is not None and head.done_at <= cycle:
                return None  # commits (or value-check squashes) this cycle
        if self.iq:
            rates["iq_select"] = 1
            blocks = 0
            for entry in self.iq:
                if not entry.ready(cycle):
                    continue
                inst = entry.inst
                if inst.is_load and entry.sentinel_on is not None:
                    pred = entry.sentinel_on
                    if pred.issue_at is None and pred in self.sq:
                        blocks += 1
                        continue
                    return None  # clearing the stale sentinel mutates state
                if not self.fu.zero_capacity(inst.op):
                    return None  # a ready candidate would issue
            if blocks:
                rates["storeset_blocks"] = blocks
        queue = self.fetch.queue
        if queue:
            fhead = queue[0]
            if fhead.ready_at > cycle:
                cand.append(fhead.ready_at)
            else:
                inst = fhead.inst
                if (len(self.rob) >= cfg.rob_size
                        or len(self.iq) >= cfg.iq_size):
                    rates["dispatch_stall_window"] = 1
                elif (inst.is_load and not self.nolq
                        and len(self.lq) >= cfg.lq_size):
                    rates["dispatch_stall_lq"] = 1
                elif inst.is_store and len(self.sq) >= cfg.sq_sb_size:
                    rates["dispatch_stall_sq"] = 1
                elif inst.dst is not None and not self._can_alloc(inst.dst):
                    rates["dispatch_stall_prf"] = 1
                else:
                    return None  # head would dispatch
        if not self._fetch_quiescent(cycle, cand):
            return None
        return self._finish_hint(cand, rates)
