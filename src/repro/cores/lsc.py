"""Load Slice Core (Carlson et al., ISCA 2015) — Section VI-A2 baseline.

Backward address-generating slices are learned iteratively at runtime in an
Instruction Slice Table (IST): when a memory operation dispatches, the
static producers of its address register are marked; when a marked
instruction dispatches, its own producers are marked, so slices grow one
level per loop iteration.  Memory operations and slice members dispatch to a
bypass queue (B-IQ) and issue in program order but independently of the main
queue (A-IQ).  There is no register renaming: cross-queue WAR/WAW hazards
are enforced by stalling, and since all address generation is in order,
memory-order violations cannot occur.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.engine.core_base import CoreModel, InflightInst


class InstructionSliceTable:
    """PC-indexed set of instructions known to lead to an address."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self.pcs: Dict[int, int] = {}  # pc -> insertion stamp (FIFO evict)
        self._stamp = 0

    def __contains__(self, pc: int) -> bool:
        return pc in self.pcs

    def add(self, pc: int) -> None:
        if pc in self.pcs:
            return
        if len(self.pcs) >= self.capacity:
            victim = min(self.pcs, key=self.pcs.get)
            del self.pcs[victim]
        self._stamp += 1
        self.pcs[pc] = self._stamp


class LoadSliceCore(CoreModel):
    """The LSC model used in Figure 6."""

    kind = "lsc"

    def _reset(self) -> None:
        self.ist = InstructionSliceTable(self.cfg.ist_entries)
        self.biq: Deque[InflightInst] = deque()
        self.aiq: Deque[InflightInst] = deque()
        self.rob: Deque[InflightInst] = deque()
        self.sb: Deque[InflightInst] = deque()
        # Static producer tracking for IST learning (architectural).
        self.reg_writer_pc: Dict[int, int] = {}

    def pipeline_empty(self) -> bool:
        return not self.rob and not self.sb

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"biq={list(self.biq)[:3]} aiq={list(self.aiq)[:3]} "
                f"rob={len(self.rob)} sb={len(self.sb)}")

    def _occupancy(self):
        return {"biq": (len(self.biq), self.cfg.biq_size),
                "aiq": (len(self.aiq), self.cfg.aiq_size),
                "rob": (len(self.rob), self.cfg.rob_size),
                "sb": (len(self.sb), self.cfg.sq_sb_size)}

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        return self.rob[0] if self.rob else None

    def _stall_structure(self, head):
        if head.issue_at is not None:
            return "rob"
        return {"A": "aiq", "B": "biq"}.get(head.queue_tag, "rob")

    def _issue_gate(self):
        """Oldest unissued instruction across the in-order queue heads."""
        heads = [q[0] for q in self._accounting_queues() if q]
        return min(heads, key=lambda e: e.seq) if heads else None

    def _accounting_queues(self):
        return (self.biq, self.aiq)

    def _step(self, cycle: int) -> None:
        self._retire_stores(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._dispatch(cycle)

    # -- store buffer --------------------------------------------------------------

    def _retire_stores(self, cycle: int) -> None:
        if not self.sb:
            return
        head = self.sb[0]
        if not self.store_fill_arrived(head, cycle):
            return
        if not self.fu.take_store_port():
            return
        self.sb.popleft()
        self.stats.add("sb_retires")

    def _commit(self, cycle: int) -> None:
        committed = 0
        while (self.rob and committed < self.cfg.width
               and self.rob[0].done_at is not None
               and self.rob[0].done_at <= cycle):
            entry = self.rob[0]
            if entry.inst.is_store:
                if len(self.sb) >= self.cfg.sq_sb_size:
                    break
                self.sb.append(entry)
                self.start_store_fill(entry, cycle)
            self.rob.popleft()
            self.note_commit(entry, cycle)
            committed += 1

    # -- issue ------------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        budget = self.cfg.width
        budget = self._issue_queue(self.biq, cycle, budget, "b")
        self._issue_queue(self.aiq, cycle, budget, "a")

    def _issue_queue(self, queue: Deque[InflightInst], cycle: int,
                     budget: int, tag: str) -> int:
        while budget > 0 and queue:
            entry = queue[0]
            if not entry.ready(cycle):
                break
            if self._hazard(entry):
                self.stats.add("hazard_stalls")
                break
            if not self.fu.take(entry.inst.op):
                break
            queue.popleft()
            self._execute(entry, cycle)
            self.stats.add(f"issued_{tag}iq")
            budget -= 1
        return budget

    def _hazard(self, entry: InflightInst) -> bool:
        """Without renaming, a WAW/WAR hazard with an older *unissued*
        instruction in the other queue(s) blocks issue."""
        dst = entry.inst.dst
        if dst is None:
            return False
        for other in self.rob:
            if other.seq >= entry.seq:
                break
            if other.issue_at is None and other is not entry:
                if other.inst.dst == dst or dst in other.inst.srcs:
                    return True
        return False

    def _execute(self, entry: InflightInst, cycle: int) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        self.stats.add("issued")
        if inst.is_load:
            forward = self._forwarding_store(entry)
            entry.forward_store = forward
            if forward is not None:
                entry.done_at = cycle + 2
                self.stats.add("stl_forwards")
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle, queue=entry.queue_tag)
        self.resolve_branch_if_gating(entry)
        self._schedule_wakeup(entry)

    def _forwarding_store(self, load: InflightInst) -> Optional[InflightInst]:
        """Older stores are all resolved (in-order AGIs in the B-IQ)."""
        best = None
        for store in self.rob:
            if store.seq >= load.seq:
                break
            if (store.inst.is_store and store.issue_at is not None
                    and store.inst.overlaps(load.inst)):
                if best is None or store.seq > best.seq:
                    best = store
        for store in self.sb:
            if store.inst.overlaps(load.inst):
                if best is None or store.seq > best.seq:
                    best = store
        return best

    # -- dispatch + IST learning ---------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        dispatched = 0
        while dispatched < self.cfg.width:
            inst = self.fetch.peek_ready(cycle)
            if inst is None or len(self.rob) >= self.cfg.rob_size:
                break
            to_b = self._steer_to_b(inst)
            queue, cap = ((self.biq, self.cfg.biq_size) if to_b
                          else (self.aiq, self.cfg.aiq_size))
            if len(queue) >= cap:
                break
            self.fetch.pop_ready(cycle, 1)
            self._learn(inst)
            entry = self.make_entry(inst)
            entry.queue_tag = "B" if to_b else "A"
            queue.append(entry)
            self.rob.append(entry)
            if inst.dst is not None:
                self.reg_writer_pc[inst.dst] = inst.pc
            dispatched += 1
            self.stats.add("dispatched")

    def _steer_to_b(self, inst) -> bool:
        return inst.is_mem or inst.pc in self.ist

    def _steer_target(self, inst):
        """Read-only steering decision: (queue, capacity) for ``inst``."""
        if self._steer_to_b(inst):
            return self.biq, self.cfg.biq_size
        return self.aiq, self.cfg.aiq_size

    # -- event-driven fast forward --------------------------------------------

    def _next_event_cycle(self, cycle: int):
        rates = {}
        cand = []
        cfg = self.cfg
        if self.sb:
            head = self.sb[0]
            if head.fill_ready is not None and head.fill_ready > cycle:
                cand.append(head.fill_ready)
            else:
                return None  # SB head retires
        if self.rob:
            head = self.rob[0]
            if head.done_at is not None and head.done_at <= cycle:
                if not (head.inst.is_store
                        and len(self.sb) >= cfg.sq_sb_size):
                    return None  # head would commit
                # full SB blocks commit silently (no counter)
        for queue in self._accounting_queues():
            if not queue:
                continue
            head = queue[0]
            if not head.ready(cycle):
                continue  # completion is on the wakeup calendar
            if self._hazard(head):
                rates["hazard_stalls"] = rates.get("hazard_stalls", 0) + 1
                continue
            if not self.fu.zero_capacity(head.inst.op):
                return None  # head would issue
        queue = self.fetch.queue
        if queue:
            fhead = queue[0]
            if fhead.ready_at > cycle:
                cand.append(fhead.ready_at)
            elif len(self.rob) < cfg.rob_size:
                target, cap = self._steer_target(fhead.inst)
                if len(target) < cap:
                    return None  # head would dispatch
        if not self._fetch_quiescent(cycle, cand):
            return None
        return self._finish_hint(cand, rates)

    def _learn(self, inst) -> None:
        """Iterative backward dependence analysis (one level per pass)."""
        if inst.is_mem:
            # Mark the producers of the address operand(s).
            base = inst.srcs[0] if inst.srcs else None
            if base is not None and base in self.reg_writer_pc:
                self.ist.add(self.reg_writer_pc[base])
        elif inst.pc in self.ist:
            for src in inst.srcs:
                if src in self.reg_writer_pc:
                    self.ist.add(self.reg_writer_pc[src])
