"""Baseline stall-on-use in-order core (Section III-A).

Strictly in-order issue from a 16-entry IQ; the pipeline stalls only when
the instruction at the IQ head has unready sources (so independent work
behind a cache-missing load keeps issuing until its *consumer* reaches the
head).  A small scoreboard (SCB) window enforces in-order write-back/commit,
and committed stores drain through a 4-entry store buffer into the L1D.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.engine.core_base import CoreModel, InflightInst


class InOrderCore(CoreModel):
    """Table I's ``InO`` model."""

    kind = "ino"

    def _reset(self) -> None:
        self.iq: Deque[InflightInst] = deque()
        self.scb: Deque[InflightInst] = deque()   # issued, in-order completion
        self.sb: Deque[InflightInst] = deque()    # committed stores to retire

    def pipeline_empty(self) -> bool:
        return not self.iq and not self.scb and not self.sb

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"iq={list(self.iq)[:4]} scb={list(self.scb)[:4]} "
                f"sb={len(self.sb)}")

    def _occupancy(self):
        return {"iq": (len(self.iq), self.cfg.iq_size),
                "scb": (len(self.scb), self.cfg.scb_size),
                "sb": (len(self.sb), self.cfg.sq_sb_size)}

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        """Oldest uncommitted instruction: SCB head (issued, awaiting
        in-order write-back) or, with an empty SCB, the stalled IQ head."""
        if self.scb:
            return self.scb[0]
        if self.iq:
            return self.iq[0]
        return None

    def _stall_structure(self, head):
        return "scb" if self.scb and head is self.scb[0] else "iq"

    def _issue_gate(self):
        return self.iq[0] if self.iq else None

    # -- pipeline stages -----------------------------------------------------

    def _step(self, cycle: int) -> None:
        self._retire_stores(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._dispatch(cycle)

    def _retire_stores(self, cycle: int) -> None:
        """Drain the store-buffer head into the L1D (one per cycle); a
        write miss holds the entry until its fill (started at commit)
        arrives."""
        if not self.sb:
            return
        head = self.sb[0]
        if not self.store_fill_arrived(head, cycle):
            return
        if not self.fu.take_store_port():
            return
        self.sb.popleft()
        self.stats.add("sb_retires")

    def _commit(self, cycle: int) -> None:
        """In-order write-back/commit from the SCB head."""
        committed = 0
        while (self.scb and committed < self.cfg.width
               and self.scb[0].done_at is not None
               and self.scb[0].done_at <= cycle):
            entry = self.scb[0]
            if entry.inst.is_store:
                if len(self.sb) >= self.cfg.sq_sb_size:
                    self.stats.add("sb_full_stalls")
                    break
                self.sb.append(entry)
                self.start_store_fill(entry, cycle)
                self.stats.add("sb_writes")
            self.scb.popleft()
            self.note_commit(entry, cycle)
            self.stats.add("scb_access")
            committed += 1

    def _issue(self, cycle: int) -> None:
        """Strict in-order issue: stop at the first non-issuable head."""
        issued = 0
        while self.iq and issued < self.cfg.width:
            entry = self.iq[0]
            if not entry.ready(cycle):
                self.stats.add("issue_stall_src")
                break
            if len(self.scb) >= self.cfg.scb_size:
                self.stats.add("issue_stall_scb")
                break
            if not self.fu.take(entry.inst.op):
                self.stats.add("issue_stall_fu")
                break
            self.iq.popleft()
            self._execute(entry, cycle)
            self.scb.append(entry)
            issued += 1
            self.stats.add("issued")
            self.stats.add("scb_access")

    def _execute(self, entry: InflightInst, cycle: int) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        if inst.is_load:
            forward = self._forwarding_store(entry)
            if forward is not None:
                entry.done_at = cycle + 2  # store->load forward
                entry.forward_store = forward
                self.stats.add("stl_forwards")
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1  # address+data move to the SQ/SB path
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle)
        self.resolve_branch_if_gating(entry)

    def _forwarding_store(self, load: InflightInst) -> Optional[InflightInst]:
        """Youngest older store (SCB or SB) writing the load's bytes.

        All older instructions have issued (in-order issue), so every older
        store address is resolved: InO needs no speculation machinery.
        """
        self.stats.add("sb_search")
        best = None
        for store in self.scb:
            if store.inst.is_store and store.seq < load.seq \
                    and store.inst.overlaps(load.inst):
                if best is None or store.seq > best.seq:
                    best = store
        if best is None:
            for store in self.sb:
                if store.inst.overlaps(load.inst):
                    if best is None or store.seq > best.seq:
                        best = store
        return best

    def _dispatch(self, cycle: int) -> None:
        space = self.cfg.iq_size - len(self.iq)
        for inst in self.fetch.pop_ready(cycle, min(space, self.cfg.width)):
            self.iq.append(self.make_entry(inst))
            self.stats.add("dispatched")
