"""Baseline stall-on-use in-order core (Section III-A).

Strictly in-order issue from a 16-entry IQ; the pipeline stalls only when
the instruction at the IQ head has unready sources (so independent work
behind a cache-missing load keeps issuing until its *consumer* reaches the
head).  A small scoreboard (SCB) window enforces in-order write-back/commit,
and committed stores drain through a 4-entry store buffer into the L1D.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.engine.core_base import CoreModel, InflightInst


class InOrderCore(CoreModel):
    """Table I's ``InO`` model."""

    kind = "ino"

    def _reset(self) -> None:
        self.iq: Deque[InflightInst] = deque()
        self.scb: Deque[InflightInst] = deque()   # issued, in-order completion
        self.sb: Deque[InflightInst] = deque()    # committed stores to retire

    def pipeline_empty(self) -> bool:
        return not self.iq and not self.scb and not self.sb

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"iq={list(self.iq)[:4]} scb={list(self.scb)[:4]} "
                f"sb={len(self.sb)}")

    def _occupancy(self):
        return {"iq": (len(self.iq), self.cfg.iq_size),
                "scb": (len(self.scb), self.cfg.scb_size),
                "sb": (len(self.sb), self.cfg.sq_sb_size)}

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        """Oldest uncommitted instruction: SCB head (issued, awaiting
        in-order write-back) or, with an empty SCB, the stalled IQ head."""
        if self.scb:
            return self.scb[0]
        if self.iq:
            return self.iq[0]
        return None

    def _stall_structure(self, head):
        return "scb" if self.scb and head is self.scb[0] else "iq"

    def _issue_gate(self):
        return self.iq[0] if self.iq else None

    # -- pipeline stages -----------------------------------------------------

    def _step(self, cycle: int) -> None:
        # Guards mirror each stage's own early-out so stalled cycles skip
        # the call entirely; the stages stay correct when called directly.
        if self.sb:
            self._retire_stores(cycle)
        scb = self.scb
        if scb:
            done = scb[0].done_at
            if done is not None and done <= cycle:
                self._commit(cycle)
        if self.iq:
            self._issue(cycle)
        fq = self.fetch.queue
        if fq and fq[0].ready_at <= cycle:
            self._dispatch(cycle)

    def _retire_stores(self, cycle: int) -> None:
        """Drain the store-buffer head into the L1D (one per cycle); a
        write miss holds the entry until its fill (started at commit)
        arrives."""
        if not self.sb:
            return
        head = self.sb[0]
        if not self.store_fill_arrived(head, cycle):
            return
        if not self.fu.take_store_port():
            return
        self.sb.popleft()
        self.stats.counters["sb_retires"] += 1.0

    def _commit(self, cycle: int) -> None:
        """In-order write-back/commit from the SCB head."""
        committed = 0
        counters = self.stats.counters
        scb = self.scb
        while (scb and committed < self.cfg.width
               and scb[0].done_at is not None
               and scb[0].done_at <= cycle):
            entry = scb[0]
            if entry.inst.is_store:
                if len(self.sb) >= self.cfg.sq_sb_size:
                    counters["sb_full_stalls"] += 1.0
                    break
                self.sb.append(entry)
                self.start_store_fill(entry, cycle)
                counters["sb_writes"] += 1.0
            scb.popleft()
            self.note_commit(entry, cycle)
            counters["scb_access"] += 1.0
            committed += 1

    def _issue(self, cycle: int) -> None:
        """Strict in-order issue: stop at the first non-issuable head."""
        issued = 0
        counters = self.stats.counters
        iq = self.iq
        while iq and issued < self.cfg.width:
            entry = iq[0]
            if not entry.ready(cycle):
                counters["issue_stall_src"] += 1.0
                break
            if len(self.scb) >= self.cfg.scb_size:
                counters["issue_stall_scb"] += 1.0
                break
            if not self.fu.take(entry.inst.op):
                counters["issue_stall_fu"] += 1.0
                break
            iq.popleft()
            self._execute(entry, cycle)
            self.scb.append(entry)
            issued += 1
            counters["issued"] += 1.0
            counters["scb_access"] += 1.0

    def _execute(self, entry: InflightInst, cycle: int) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        if inst.is_load:
            forward = self._forwarding_store(entry)
            if forward is not None:
                entry.done_at = cycle + 2  # store->load forward
                entry.forward_store = forward
                self.stats.add("stl_forwards")
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1  # address+data move to the SQ/SB path
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle)
        self.resolve_branch_if_gating(entry)
        self._schedule_wakeup(entry)

    def _forwarding_store(self, load: InflightInst) -> Optional[InflightInst]:
        """Youngest older store (SCB or SB) writing the load's bytes.

        All older instructions have issued (in-order issue), so every older
        store address is resolved: InO needs no speculation machinery.
        """
        self.stats.add("sb_search")
        best = None
        for store in self.scb:
            if store.inst.is_store and store.seq < load.seq \
                    and store.inst.overlaps(load.inst):
                if best is None or store.seq > best.seq:
                    best = store
        if best is None:
            for store in self.sb:
                if store.inst.overlaps(load.inst):
                    if best is None or store.seq > best.seq:
                        best = store
        return best

    def _dispatch(self, cycle: int) -> None:
        fq = self.fetch.queue
        if not fq or fq[0].ready_at > cycle:
            return
        space = self.cfg.iq_size - len(self.iq)
        counters = self.stats.counters
        for inst in self.fetch.pop_ready(cycle, min(space, self.cfg.width)):
            self.iq.append(self.make_entry(inst))
            counters["dispatched"] += 1.0

    # -- event-driven fast forward --------------------------------------------

    def _next_event_cycle(self, cycle: int):
        """Mirror of ``_step``'s stage gates, read-only: ``None`` as soon
        as any stage would act this cycle, else the stall counters each
        blocked stage bumps per cycle plus the unblock-time candidates."""
        rates = {}
        cand = []
        if self.sb:
            head = self.sb[0]
            if head.fill_ready is not None and head.fill_ready > cycle:
                cand.append(head.fill_ready)
            else:
                return None  # fill arrived: head retires (port free at start)
        if self.scb:
            head = self.scb[0]
            if head.done_at is not None and head.done_at <= cycle:
                if not (head.inst.is_store
                        and len(self.sb) >= self.cfg.sq_sb_size):
                    return None  # head would commit
                rates["sb_full_stalls"] = 1
            # else: completion is on the wakeup calendar
        if self.iq:
            head = self.iq[0]
            if not head.ready(cycle):
                rates["issue_stall_src"] = 1
            elif len(self.scb) >= self.cfg.scb_size:
                rates["issue_stall_scb"] = 1
            elif not self.fu.zero_capacity(head.inst.op):
                return None  # head would issue
            else:
                rates["issue_stall_fu"] = 1
        if not self._dispatch_quiescent(cycle, cand,
                                        self.cfg.iq_size - len(self.iq)):
            return None
        if not self._fetch_quiescent(cycle, cand):
            return None
        return self._finish_hint(cand, rates)
