"""Freeway core (Kumar et al., HPCA 2019) — Section VI-A2 baseline.

Load Slice Core plus dependence-aware slice scheduling: slices that depend
on a load of an older slice are diverted into a *yielding* queue (Y-IQ), so
independent slices in the B-IQ are not blocked by inter-slice dependences.
Issue priority is B-IQ, then Y-IQ, then A-IQ, sharing the machine width.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.cores.lsc import LoadSliceCore
from repro.engine.core_base import InflightInst


class FreewayCore(LoadSliceCore):
    """Freeway = LSC + Y-IQ."""

    kind = "freeway"

    def _reset(self) -> None:
        super()._reset()
        self.yiq: Deque[InflightInst] = deque()

    def pipeline_empty(self) -> bool:
        return super().pipeline_empty() and not self.yiq

    def _debug_state(self) -> str:  # pragma: no cover
        return f"{super()._debug_state()} yiq={list(self.yiq)[:3]}"

    def _occupancy(self):
        occ = super()._occupancy()
        occ["yiq"] = (len(self.yiq), self.cfg.yiq_size)
        return occ

    def _stall_structure(self, head):
        """LSC's structures plus the yielding queue: a head stalled in the
        Y-IQ is an inter-slice dependence stall, worth its own label."""
        if head.issue_at is None and head.queue_tag == "Y":
            return "yiq"
        return super()._stall_structure(head)

    def _accounting_queues(self):
        return (self.biq, self.yiq, self.aiq)

    def _issue(self, cycle: int) -> None:
        budget = self.cfg.width
        budget = self._issue_queue(self.biq, cycle, budget, "b")
        budget = self._issue_queue(self.yiq, cycle, budget, "y")
        self._issue_queue(self.aiq, cycle, budget, "a")

    def _dispatch(self, cycle: int) -> None:
        dispatched = 0
        while dispatched < self.cfg.width:
            inst = self.fetch.peek_ready(cycle)
            if inst is None or len(self.rob) >= self.cfg.rob_size:
                break
            to_b = self._steer_to_b(inst)
            if to_b and self._is_dependent_slice(inst):
                queue, cap, tag = self.yiq, self.cfg.yiq_size, "Y"
            elif to_b:
                queue, cap, tag = self.biq, self.cfg.biq_size, "B"
            else:
                queue, cap, tag = self.aiq, self.cfg.aiq_size, "A"
            if len(queue) >= cap:
                break
            self.fetch.pop_ready(cycle, 1)
            self._learn(inst)
            entry = self.make_entry(inst)
            entry.queue_tag = tag
            queue.append(entry)
            self.rob.append(entry)
            if inst.dst is not None:
                self.reg_writer_pc[inst.dst] = inst.pc
            dispatched += 1
            self.stats.add("dispatched")
            if tag == "Y":
                self.stats.add("yiq_steered")
                if self.tracer is not None:
                    # Steering into the yielding queue is Freeway's analogue
                    # of a queue promotion.
                    self.tracer.emit("siq_promote", cycle, entry.seq,
                                     from_queue="B", to_queue="Y")

    def _steer_target(self, inst):
        """Freeway steering (read-only), including the yielding queue."""
        if self._steer_to_b(inst):
            if self._is_dependent_slice(inst):
                return self.yiq, self.cfg.yiq_size
            return self.biq, self.cfg.biq_size
        return self.aiq, self.cfg.aiq_size

    def _is_dependent_slice(self, inst) -> bool:
        """A slice instruction whose value depends on an outstanding load of
        an older slice yields (it would stall the B-IQ head otherwise)."""
        for src in inst.srcs:
            writer = self.last_writer.get(src)
            if writer is None or writer.committed:
                continue
            if writer.inst.is_load and writer.done_at is None:
                return True
            if writer.queue_tag == "Y" and writer.issue_at is None:
                return True
        return False
