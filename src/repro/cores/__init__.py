"""Timing core models: InO, OoO, CASINO, Load Slice Core, Freeway, SpecInO.

:func:`build_core` constructs the right model for a
:class:`~repro.common.params.CoreConfig`.
"""

from repro.common.params import BranchPredictorConfig, CoreConfig, MemoryConfig


def build_core(cfg: CoreConfig, mem_cfg: "MemoryConfig" = None,
               bp_cfg: "BranchPredictorConfig" = None):
    """Instantiate the core model selected by ``cfg.kind``."""
    from repro.cores.casino.core import CasinoCore
    from repro.cores.freeway import FreewayCore
    from repro.cores.inorder import InOrderCore
    from repro.cores.lsc import LoadSliceCore
    from repro.cores.ooo import OutOfOrderCore
    from repro.cores.specino import SpecInOCore

    kinds = {
        "ino": InOrderCore,
        "ooo": OutOfOrderCore,
        "casino": CasinoCore,
        "lsc": LoadSliceCore,
        "freeway": FreewayCore,
        "specino": SpecInOCore,
    }
    try:
        cls = kinds[cfg.kind]
    except KeyError:
        raise ValueError(f"unknown core kind {cfg.kind!r}") from None
    return cls(cfg, mem_cfg, bp_cfg)


__all__ = ["build_core"]
