"""Idealised SpecInO limit model (Section II-C, Figure 2).

An InO core augmented with a sliding speculative window over its 16-entry
IQ: each cycle the window examines ``WS`` entries; ready instructions are
issued immediately (out of program order), otherwise the window slides by
``SO`` entries toward younger instructions.  The study assumes ideal
renaming and ideal memory disambiguation ("instructions are renamed properly
and the architectural state is updated correctly"), so there are no PRF
limits and no order-violation squashes; the ``Non-mem`` variant forbids
speculative issue of loads/stores to separate the ILP contribution from MLP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.engine.core_base import CoreModel, InflightInst


class SpecInOCore(CoreModel):
    """The SpecInO[WS, SO] limit machine of Figure 2."""

    kind = "specino"

    def _reset(self) -> None:
        self.iq: Deque[InflightInst] = deque()
        self.window: list = []   # issued-not-committed, kept sorted by seq
        self.sb: Deque[InflightInst] = deque()
        self.spec_pos = 1
        self.next_commit = 0     # program-order commit cursor (seq)

    def pipeline_empty(self) -> bool:
        return not self.iq and not self.window and not self.sb

    def _debug_state(self) -> str:  # pragma: no cover
        return (f"iq={list(self.iq)[:4]} window={self.window[:4]} "
                f"sb={len(self.sb)} spec_pos={self.spec_pos} "
                f"next_commit={self.next_commit}")

    def _occupancy(self):
        return {"iq": (len(self.iq), self.cfg.iq_size),
                "window": (len(self.window), self.cfg.rob_size),
                "sb": (len(self.sb), self.cfg.sq_sb_size)}

    # -- cycle-accounting hooks ----------------------------------------------

    def _commit_head(self):
        """The instruction at the commit cursor: in the window if it issued
        (possibly speculatively), else the oldest unissued IQ entry."""
        if self.window and self.window[0].seq == self.next_commit:
            return self.window[0]
        for entry in self.iq:
            if entry.issue_at is None:
                return entry
        return self.window[0] if self.window else None

    def _stall_structure(self, head):
        return "window" if head.issue_at is not None else "iq"

    def _issue_gate(self):
        for entry in self.iq:
            if entry.issue_at is None:
                return entry
        return None

    def _step(self, cycle: int) -> None:
        self._retire_stores(cycle)
        self._commit(cycle)
        budget = self.cfg.width
        budget = self._issue_head(cycle, budget)
        self._issue_window(cycle, budget)
        self._dispatch(cycle)

    # -- store buffer (same as the InO baseline) --------------------------------

    def _retire_stores(self, cycle: int) -> None:
        if not self.sb:
            return
        head = self.sb[0]
        if not self.store_fill_arrived(head, cycle):
            return
        if not self.fu.take_store_port():
            return
        self.sb.popleft()
        self.stats.add("sb_retires")

    def _commit(self, cycle: int) -> None:
        committed = 0
        while (self.window and committed < self.cfg.width
               and self.window[0].seq == self.next_commit
               and self.window[0].done_at is not None
               and self.window[0].done_at <= cycle):
            entry = self.window[0]
            if entry.inst.is_store:
                if len(self.sb) >= self.cfg.sq_sb_size:
                    break
                self.sb.append(entry)
                self.start_store_fill(entry, cycle)
            del self.window[0]
            self.next_commit = entry.seq + 1
            self.note_commit(entry, cycle)
            committed += 1

    # -- in-order head issue ------------------------------------------------------

    def _issue_head(self, cycle: int, budget: int) -> int:
        while budget > 0 and self.iq:
            entry = self.iq[0]
            if entry.issue_at is not None:
                # Already issued speculatively; just drain it.
                self.iq.popleft()
                self._slide_on_pop()
                continue
            if not entry.ready(cycle):
                break
            if len(self.window) >= self.cfg.rob_size:
                break
            if not self.fu.take(entry.inst.op):
                break
            self.iq.popleft()
            self._slide_on_pop()
            self._execute(entry, cycle)
            self.stats.add("issued_head")
            budget -= 1
        return budget

    def _slide_on_pop(self) -> None:
        self.spec_pos = max(1, self.spec_pos - 1)

    # -- speculative sliding window -------------------------------------------------

    def _issue_window(self, cycle: int, budget: int) -> None:
        cfg = self.cfg
        if len(self.iq) <= 1:
            return
        self.spec_pos = min(self.spec_pos, len(self.iq) - 1)
        issued_any = False
        end = min(self.spec_pos + cfg.specino_ws, len(self.iq))
        for index in range(self.spec_pos, end):
            if budget <= 0:
                break
            entry = self.iq[index]
            if entry.issue_at is not None:
                continue
            if entry.inst.is_mem and not cfg.specino_mem:
                continue
            if not entry.ready(cycle):
                continue
            if len(self.window) >= cfg.rob_size:
                break
            if not self.fu.take(entry.inst.op):
                continue
            self._execute(entry, cycle)
            self.stats.add("issued_spec")
            issued_any = True
            budget -= 1
        if not issued_any:
            self.spec_pos = min(self.spec_pos + cfg.specino_so,
                                max(1, len(self.iq) - 1))

    # -- execution ---------------------------------------------------------------

    def _execute(self, entry: InflightInst, cycle: int) -> None:
        inst = entry.inst
        entry.issue_at = cycle
        # Insert in program order so the commit scan stays a head check.
        pos = len(self.window)
        while pos > 0 and self.window[pos - 1].seq > entry.seq:
            pos -= 1
        self.window.insert(pos, entry)
        if inst.is_load:
            forward = self._forwarding_store(entry)
            if forward is not None:
                entry.done_at = cycle + 2
                entry.forward_store = forward
            else:
                entry.done_at = cycle + self.load_latency(entry, cycle)
        elif inst.is_store:
            entry.done_at = cycle + 1
        else:
            entry.done_at = cycle + inst.latency
        if self.tracer is not None:
            self.trace_issue(entry, cycle)
        self.resolve_branch_if_gating(entry)
        self._schedule_wakeup(entry)

    def _forwarding_store(self, load: InflightInst) -> Optional[InflightInst]:
        """Oracle disambiguation: forward from the youngest older store
        already resolved; unresolved older stores are ignored (ideal)."""
        best = None
        for store in self.window:
            if (store.inst.is_store and store.seq < load.seq
                    and store.inst.overlaps(load.inst)):
                if best is None or store.seq > best.seq:
                    best = store
        for store in self.sb:
            if store.inst.overlaps(load.inst):
                if best is None or store.seq > best.seq:
                    best = store
        return best

    def _dispatch(self, cycle: int) -> None:
        space = self.cfg.iq_size - len(self.iq)
        for inst in self.fetch.pop_ready(cycle, min(space, self.cfg.width)):
            self.iq.append(self.make_entry(inst))
            self.stats.add("dispatched")

    # -- event-driven fast forward --------------------------------------------

    def _next_event_cycle(self, cycle: int):
        rates = {}
        cand = []
        cfg = self.cfg
        if self.sb:
            head = self.sb[0]
            if head.fill_ready is not None and head.fill_ready > cycle:
                cand.append(head.fill_ready)
            else:
                return None  # SB head retires
        if self.window:
            head = self.window[0]
            if (head.seq == self.next_commit and head.done_at is not None
                    and head.done_at <= cycle):
                if not (head.inst.is_store
                        and len(self.sb) >= cfg.sq_sb_size):
                    return None  # head would commit
                # full SB blocks commit silently (no counter)
        if self.iq:
            head = self.iq[0]
            if head.issue_at is not None:
                return None  # drain pop (and spec_pos slide-back) mutates
            if (head.ready(cycle) and len(self.window) < cfg.rob_size
                    and not self.fu.zero_capacity(head.inst.op)):
                return None  # head would issue
        if len(self.iq) > 1:
            if self.spec_pos > len(self.iq) - 1:
                return None  # window-start clamp mutates spec_pos
            end = min(self.spec_pos + cfg.specino_ws, len(self.iq))
            for index in range(self.spec_pos, end):
                entry = self.iq[index]
                if entry.issue_at is not None:
                    continue
                if entry.inst.is_mem and not cfg.specino_mem:
                    continue
                if not entry.ready(cycle):
                    continue
                if len(self.window) >= cfg.rob_size:
                    break
                if self.fu.zero_capacity(entry.inst.op):
                    continue
                return None  # a window entry would issue speculatively
            if self.spec_pos != min(self.spec_pos + cfg.specino_so,
                                    max(1, len(self.iq) - 1)):
                return None  # the window would slide; only a saturated
                # window position is a stable (skippable) state
        if not self._dispatch_quiescent(cycle, cand,
                                        cfg.iq_size - len(self.iq)):
            return None
        if not self._fetch_quiescent(cycle, cand):
            return None
        return self._finish_hint(cand, rates)
