"""Interval time-series metrics sampled from a live core.

A :class:`MetricsSampler` is attached to a core for one run
(``core.run(..., sampler=MetricsSampler(interval=N))``).  Every ``N``
cycles it snapshots the deltas of the :class:`~repro.common.stats.Stats`
counters plus the occupancy of every bounded structure (via the same
``_occupancy()`` hook the sanitizer uses), yielding IPC-over-time,
occupancy histograms and a stall-reason breakdown instead of a single
end-of-run number.  Like the tracer, it only reads core state: sampled
runs produce bit-identical timing.

Attaching a sampler disables the run loop's quiescence fast-forward
(``fast_forward``): the sampler needs its ``on_cycle`` hook at every
interval boundary, including boundaries inside otherwise-dead spans, so
the core steps every cycle for it.  Timing is unchanged either way —
only wall-clock speed is.
"""

from __future__ import annotations

from typing import Dict, List


class MetricsSampler:
    """Snapshots counter deltas + structure occupancy every N cycles."""

    def __init__(self, interval: int = 100) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.samples: List[dict] = []
        #: ``{structure: capacity}`` learned from the first snapshot.
        self.capacity: Dict[str, int] = {}
        self._last_counters: Dict[str, float] = {}
        self._last_cycle = 0

    # -- recording (called from the core's run loop) -----------------------

    def on_cycle(self, core, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval:
            return
        self._snapshot(core, cycle)

    def finish(self, core, cycle: int) -> None:
        """Flush a final partial-interval sample at end of run."""
        if cycle > self._last_cycle:
            self._snapshot(core, cycle)

    def _snapshot(self, core, cycle: int) -> None:
        counters = core.stats.counters
        span = cycle - self._last_cycle
        delta = {key: value - self._last_counters.get(key, 0.0)
                 for key, value in counters.items()
                 if value != self._last_counters.get(key, 0.0)}
        occupancy = {}
        for name, (used, cap) in core._occupancy().items():
            occupancy[name] = used
            self.capacity.setdefault(name, cap)
        committed = delta.get("committed", 0.0)
        self.samples.append({
            "cycle": cycle,
            "span": span,
            "committed": committed,
            "ipc": committed / span if span else 0.0,
            "occupancy": occupancy,
            "stalls": {key: value for key, value in delta.items()
                       if "stall" in key},
        })
        self._last_counters = dict(counters)
        self._last_cycle = cycle

    # -- derived time-series / aggregates ----------------------------------

    def series(self, field: str = "ipc") -> List[float]:
        """One per-sample value: ``ipc``, ``committed``, ``span``, ..."""
        return [sample[field] for sample in self.samples]

    def cycles(self) -> List[int]:
        return [sample["cycle"] for sample in self.samples]

    def occupancy_series(self, structure: str) -> List[int]:
        return [sample["occupancy"].get(structure, 0)
                for sample in self.samples]

    def occupancy_histograms(self) -> Dict[str, Dict[int, int]]:
        """``{structure: {occupancy: n_samples}}`` over the whole run."""
        histograms: Dict[str, Dict[int, int]] = {}
        for sample in self.samples:
            for name, used in sample["occupancy"].items():
                bins = histograms.setdefault(name, {})
                bins[used] = bins.get(used, 0) + 1
        return histograms

    def stall_breakdown(self) -> Dict[str, float]:
        """Total per-reason stall counts accumulated across all samples."""
        totals: Dict[str, float] = {}
        for sample in self.samples:
            for key, value in sample["stalls"].items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def report(self) -> dict:
        """Everything, JSON-exportable via ``harness.export.write_json``."""
        return {
            "interval": self.interval,
            "n_samples": len(self.samples),
            "capacity": dict(self.capacity),
            "samples": list(self.samples),
            "occupancy_histograms": self.occupancy_histograms(),
            "stall_breakdown": self.stall_breakdown(),
        }
