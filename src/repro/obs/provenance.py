"""Per-run provenance manifests: make every result attributable.

A manifest pins down *what produced a number*: the exact core
configuration (hashed), the workload trace seed, the git revision of the
simulator, host wall time, and a digest of the final counters.  The
resilient runner stamps one onto every captured failure and the sweep
checkpoints one per figure, so a surprising result in a checkpoint file
can be traced back to a config + seed + code revision after the fact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

#: Version of the manifest record layout.  Bumped to 2 when the
#: interpreter fields (``python``/``platform``) joined the manifest so a
#: result computed under one interpreter is never mistaken for one
#: computed under another (the service result store keys on the manifest
#: digest, which covers these fields).
MANIFEST_SCHEMA = 2

_git_rev_cache: Optional[str] = None


def interpreter_tag() -> str:
    """Stable tag of the interpreter + platform this process runs under,
    e.g. ``cpython-3.11.7-linux-x86_64``.  Part of every manifest (and of
    the service store key): bit-identical simulation is only guaranteed
    within one interpreter build, so cached results must never cross it.
    """
    return "-".join([
        platform.python_implementation().lower(),
        platform.python_version(),
        sys.platform,
        platform.machine().lower() or "unknown",
    ])


def git_rev() -> str:
    """Short git revision of the working tree ("unknown" outside git)."""
    global _git_rev_cache
    if _git_rev_cache is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent, capture_output=True,
                text=True, timeout=5)
            _git_rev_cache = (out.stdout.strip() if out.returncode == 0
                              and out.stdout.strip() else "unknown")
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache = "unknown"
    return _git_rev_cache


def config_hash(cfg) -> str:
    """Stable short hash of a config dataclass's full field contents."""
    payload = repr(sorted(dataclasses.asdict(cfg).items()))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def counter_digest(stats) -> str:
    """Stable short digest of a Stats bag (order-independent)."""
    payload = json.dumps(sorted(stats.counters.items()), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_manifest(cfg, profile=None, stats=None,
                 wall_time: Optional[float] = None, **extra) -> dict:
    """Provenance record for one (core, workload) simulation."""
    manifest = {"schema": MANIFEST_SCHEMA,
                "core": cfg.name, "config_hash": config_hash(cfg),
                "git_rev": git_rev(),
                "python": platform.python_version(),
                "platform": interpreter_tag()}
    if profile is not None:
        manifest["app"] = profile.name
        manifest["trace_seed"] = profile.seed
    if stats is not None:
        manifest["counter_digest"] = counter_digest(stats)
        manifest["committed"] = int(stats.committed)
        manifest["cycles"] = int(stats.cycles)
    if wall_time is not None:
        manifest["wall_time_s"] = round(wall_time, 6)
    manifest.update(extra)
    return manifest


#: Manifest fields that vary run to run without changing *what* was
#: computed — excluded from the identity digest.
_VOLATILE_MANIFEST_FIELDS = ("wall_time_s",)


def manifest_digest(manifest: dict) -> str:
    """Stable digest of a manifest's identity fields.

    Hashes every field except host wall time, so two runs of the same
    (config, seed, app, code rev, interpreter) digest identically while a
    change to any identity component — including the interpreter — yields
    a new digest.  The service result store uses this as its cache key.
    """
    identity = {k: v for k, v in manifest.items()
                if k not in _VOLATILE_MANIFEST_FIELDS}
    payload = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def figure_manifest(runner, wall_time: float, result) -> dict:
    """Provenance record for one checkpointed figure of a sweep."""
    payload = json.dumps(result, sort_keys=True, default=str)
    return {
        "git_rev": git_rev(),
        "n_instrs": runner.n_instrs,
        "warmup": runner.warmup,
        "wall_time_s": round(wall_time, 3),
        "result_digest": hashlib.sha256(payload.encode()).hexdigest()[:16],
    }
