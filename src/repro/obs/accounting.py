"""Per-core CPI-stack / top-down cycle accounting.

A :class:`CycleAccounting` observer is attached to a core for one run
(``core.run(..., accounting=CycleAccounting())``).  Every simulated cycle
is attributed to exactly **one** component, so the components sum exactly
to the cycle count — the accounting identity, enforced as a sanitizer
invariant (``repro.engine.sanitizer.check_accounting``) and by
``tests/test_accounting.py`` on every core model.

Components (the order of :data:`COMPONENTS` is the display order):

``base``
    Cycles where at least one instruction committed, plus cycles where
    the oldest in-flight instruction was executing a non-miss operation
    while the issue stage kept making progress (pipeline latency a
    perfect scheduler would also pay).
``frontend``
    No commit and the back end is empty of uncommitted work: fetch is
    gated on an unresolved mispredicted branch, refilling after a
    redirect, stalled on an I-cache miss, or draining the decode pipe.
``iq_head_blocked``
    Nothing committed *and* nothing issued because the oldest unissued
    instruction sits at the head of an in-order queue with unready
    source operands (and no outstanding cache-missing load in its
    producer chain) — the stall CASINO's cascaded S-IQs exist to hide.
    Structurally zero on the OoO core, whose issue stage has no head
    (:meth:`~repro.engine.core_base.CoreModel._issue_gate`).
``structural``
    The oldest instruction is ready (or finished) but cannot issue or
    commit: FU/port conflicts, full SCB/SB/PRF/data-buffer, issue-width
    or queue-priority starvation.
``load_miss``
    The oldest instruction is a cache-missing load in flight, or is
    blocked on operands whose (transitive) producer chain contains an
    outstanding cache-missing load.
``store_order_violation``
    Recovery shadow of a memory-order-violation squash: cycles between
    the flush and the re-commit of the squashed instruction in which the
    commit head is refetched work (or the window is refilling).
``squash``
    The same recovery shadow for squashes with any *other* cause
    (injected faults today; branch-squash models tomorrow).

The observer is strictly read-only: it inspects the core through the
``_commit_head()`` / ``_issue_gate()`` / ``_stall_structure()`` hooks
and public state, so an
accounting-enabled run is bit-identical in simulated timing (and final
``Stats``) to a bare run — tested in ``tests/test_accounting.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

#: CPI-stack component names, in display order.
COMPONENTS = (
    "base",
    "frontend",
    "iq_head_blocked",
    "structural",
    "load_miss",
    "store_order_violation",
    "squash",
)

#: Bound on the producer-chain walk when looking for a missed load.
_CHASE_LIMIT = 64

#: Per-core issue counters (each core bumps a subset; their sum moves
#: exactly when any instruction issues that cycle).
_ISSUE_COUNTERS = ("issued", "issued_head", "issued_spec")


class CycleAccounting:
    """Attributes every simulated cycle to one CPI-stack component."""

    def __init__(self) -> None:
        self.components: Dict[str, int] = {c: 0 for c in COMPONENTS}
        #: Secondary ``component:structure`` breakdown (e.g. which cascade
        #: queue the blocked head was sitting in).
        self.detail: Dict[str, int] = {}
        self.total_cycles = 0
        self.committed = 0
        self._last_committed = 0.0
        self._last_issued = 0.0
        self._warm_components: Optional[Dict[str, int]] = None
        self._warm_detail: Dict[str, int] = {}
        self._warm_cycles = 0
        self._warm_committed = 0
        self._finished = False

    # -- recording (called from the core's run loop) -----------------------

    def on_cycle(self, core, cycle: int) -> None:
        counters = core.stats.counters
        committed = counters.get("committed", 0.0)
        issued = sum(counters.get(c, 0.0) for c in _ISSUE_COUNTERS)
        delta = committed - self._last_committed
        issue_delta = issued - self._last_issued
        self._last_committed = committed
        self._last_issued = issued
        self.total_cycles += 1
        if delta > 0:
            self.components["base"] += 1
            return
        component, structure = self._classify(core, cycle, issue_delta > 0)
        self.components[component] += 1
        if structure:
            key = f"{component}:{structure}"
            self.detail[key] = self.detail.get(key, 0) + 1

    def on_idle_span(self, core, start: int, end: int) -> None:
        """Vectorised attribution for a fast-forwarded quiescent span
        (``start..end`` inclusive).

        The engine only skips a span when no architectural state changes
        across it: nothing commits, nothing issues, and every input to
        :meth:`_classify` (commit head, squash shadow, fetch gating,
        operand readiness) is frozen, because any cycle on which one of
        them *would* change is an event candidate bounding the span.  The
        classification of ``start`` therefore holds for every cycle in the
        span, and ``_last_committed`` / ``_last_issued`` need no update —
        the counters they mirror did not move.
        """
        span = end - start + 1
        self.total_cycles += span
        component, structure = self._classify(core, start, False)
        self.components[component] += span
        if structure:
            key = f"{component}:{structure}"
            self.detail[key] = self.detail.get(key, 0) + span

    def on_warmup(self) -> None:
        """Snapshot at the warm-up boundary so :meth:`report` can exclude
        warm-up cycles, mirroring the engine's counter snapshot."""
        self._warm_components = dict(self.components)
        self._warm_detail = dict(self.detail)
        self._warm_cycles = self.total_cycles
        self._warm_committed = int(self._last_committed)

    def finish(self, core, cycle: int) -> None:
        self.committed = int(core.stats.counters.get("committed", 0.0))
        self._finished = True

    # -- classification ----------------------------------------------------

    def _classify(self, core, cycle: int, issued_any: bool) -> "tuple[str, str]":
        head = core._commit_head()
        # Squash recovery shadow: between a flush and the re-commit of the
        # squashed instruction, cycles spent waiting on refetched work (or
        # an empty window) belong to the squash, not to the generic stall
        # the refetched head happens to exhibit.
        squash_seq = core._last_squash_seq
        if (squash_seq is not None
                and core._expected_commit_seq <= squash_seq
                and (head is None or head.seq >= squash_seq)):
            if core._last_squash_reason == "mem_order":
                return "store_order_violation", ""
            return "squash", ""
        if head is None:
            return "frontend", self._frontend_detail(core, cycle)
        return self._classify_head(core, head, cycle, issued_any)

    @staticmethod
    def _frontend_detail(core, cycle: int) -> str:
        fetch = core.fetch
        if fetch.blocked_seq is not None:
            return "mispredict"
        if cycle < fetch.stalled_until:
            return "refill"
        return "decode"

    def _classify_head(self, core, head, cycle: int,
                       issued_any: bool) -> "tuple[str, str]":
        if head.done_at is not None:
            # Issued: executing, or finished and waiting to commit.
            if head.done_at > cycle:
                if head.inst.is_load and head.cache_miss:
                    return "load_miss", ""
                # The commit head is covering execution latency.  If the
                # issue stage *also* made no progress because its in-order
                # head has unready operands, the cycle is an overlap loss
                # an OoO scheduler would have hidden — the in-order
                # penalty, not base latency.
                if not issued_any:
                    gate = core._issue_gate()
                    if gate is not None and not gate.ready(cycle):
                        structure = core._stall_structure(gate)
                        if self._blocked_on_load_miss(gate, cycle):
                            return "load_miss", structure
                        return "iq_head_blocked", structure
                return "base", ""
            # Finished but not committed this cycle: commit-side resource
            # (SB full, store fill pending, value-check, ...).
            return "structural", core._stall_structure(head)
        # Unissued head.
        if head.ready(cycle):
            return "structural", core._stall_structure(head)
        if self._blocked_on_load_miss(head, cycle):
            return "load_miss", core._stall_structure(head)
        return "iq_head_blocked", core._stall_structure(head)

    @staticmethod
    def _blocked_on_load_miss(head, cycle: int) -> bool:
        """Does the head's unfinished producer chain contain an outstanding
        cache-missing load?  Bounded breadth-first walk."""
        frontier = [p for p in head.producers
                    if p.done_at is None or p.done_at > cycle]
        seen = set()
        while frontier and len(seen) < _CHASE_LIMIT:
            producer = frontier.pop()
            if id(producer) in seen:
                continue
            seen.add(id(producer))
            if producer.inst.is_load and producer.cache_miss:
                return True
            frontier.extend(p for p in producer.producers
                            if p.done_at is None or p.done_at > cycle)
        return False

    # -- reporting ---------------------------------------------------------

    def identity_error(self) -> Optional[str]:
        """``None`` when components sum exactly to counted cycles."""
        total = sum(self.components.values())
        if total != self.total_cycles:
            return (f"CPI-stack components sum to {total}, "
                    f"but {self.total_cycles} cycles were counted")
        return None

    def report(self) -> dict:
        """JSON-exportable CPI stack (warm-up excluded when armed)."""
        if self._warm_components is not None:
            components = {c: self.components[c] - self._warm_components[c]
                          for c in COMPONENTS}
            detail = {k: v - self._warm_detail.get(k, 0)
                      for k, v in self.detail.items()
                      if v - self._warm_detail.get(k, 0)}
            cycles = self.total_cycles - self._warm_cycles
            committed = self.committed - self._warm_committed
        else:
            components = dict(self.components)
            detail = dict(self.detail)
            cycles = self.total_cycles
            committed = self.committed
        stack = {c: (components[c] / committed if committed else 0.0)
                 for c in COMPONENTS}
        fractions = {c: (components[c] / cycles if cycles else 0.0)
                     for c in COMPONENTS}
        return {
            "components": components,
            "detail": detail,
            "total_cycles": cycles,
            "committed": committed,
            "cpi": cycles / committed if committed else 0.0,
            "cpi_stack": stack,
            "fractions": fractions,
            "identity_error": self.identity_error(),
        }


def format_stack_table(reports: Dict[str, dict], float_fmt: str = "{:.3f}"):
    """Rows for ``harness.tables.format_table``: one row per core, one
    CPI-stack column (cycles lost per committed instruction) per
    component, plus the total CPI.  ``reports`` maps core name to a
    :meth:`CycleAccounting.report` dict."""
    headers = ["core", "cpi"] + [c for c in COMPONENTS]
    rows = []
    for name, report in reports.items():
        stack = report["cpi_stack"]
        rows.append([name, report["cpi"]] + [stack[c] for c in COMPONENTS])
    return headers, rows
