"""Host-side wall-clock self-profiler: where did *simulation* time go.

The simulator's own speed is a first-class concern ("fast as the hardware
allows"); before optimising a hot path you need to know which component
owns the wall time.  A :class:`SelfProfiler` is attached to a core for one
run (``core.run(..., profiler=SelfProfiler())``): it wraps the core's
pipeline-stage methods (commit / issue / dispatch), the fetch unit, the
memory hierarchy and the resilience hooks in ``perf_counter`` scopes, and
accounts *self time* per component (a scope's children are subtracted), so
the report's components sum to the measured run time.

Wrapping happens on the core *instance* after ``reset()``, so the core
classes carry zero profiling code and an unprofiled run executes the
untouched methods — same disabled-means-bit-identical contract as the
tracer.  Wrapped calls pass every argument straight through: a profiled
run simulates the exact same cycles, just slower on the host.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Dict, List, Tuple

#: ``(attribute, component)`` wrap specs looked up on the core itself.
_CORE_SCOPES: Tuple[Tuple[str, str], ...] = (
    ("_commit", "commit"),
    ("_dispatch", "dispatch"),
    ("_issue", "schedule"),
    ("_issue_iq", "schedule"),
    ("_scan_siqs", "schedule"),
    ("_issue_head", "schedule"),
    ("_issue_window", "schedule"),
    ("_retire_stores", "memory"),
    ("pipeline_empty", "run_loop"),
)


class SelfProfiler:
    """Accumulates per-component self time over one (or more) runs."""

    def __init__(self) -> None:
        self.self_time: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.wall = 0.0          # total measured run time (outermost scope)
        self._stack: List[list] = []   # [component, start, child_time]

    # -- scope machinery ---------------------------------------------------

    def _enter(self, component: str) -> None:
        self._stack.append([component, perf_counter(), 0.0])

    def _exit(self) -> None:
        component, start, child_time = self._stack.pop()
        elapsed = perf_counter() - start
        self.self_time[component] = (self.self_time.get(component, 0.0)
                                     + elapsed - child_time)
        self.calls[component] = self.calls.get(component, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    def _wrap(self, obj, attr: str, component: str) -> None:
        fn = getattr(obj, attr)

        @functools.wraps(fn)
        def scoped(*args, **kwargs):
            self._enter(component)
            try:
                return fn(*args, **kwargs)
            finally:
                self._exit()

        setattr(obj, attr, scoped)

    # -- attachment (called by CoreModel.run after reset) -------------------

    def attach(self, core) -> None:
        """Instrument a freshly-reset core instance."""
        for attr, component in _CORE_SCOPES:
            if hasattr(core, attr):
                self._wrap(core, attr, component)
        self._wrap(core.fetch, "tick", "fetch")
        self._wrap(core.fetch, "pop_ready", "fetch")
        self._wrap(core.fetch, "peek_ready", "fetch")
        self._wrap(core.hier, "load", "memory")
        self._wrap(core.hier, "store", "memory")
        lsu = getattr(core, "lsu", None)
        if lsu is not None and hasattr(lsu, "retire_head"):
            self._wrap(lsu, "retire_head", "memory")
        if core.sanitizer is not None:
            self._wrap(core.sanitizer, "check_cycle", "sanitizer")
            self._wrap(core.sanitizer, "check_commit", "sanitizer")
        if core.sampler is not None:
            self._wrap(core.sampler, "on_cycle", "metrics")
        if core.faults is not None:
            self._wrap(core.faults, "on_cycle", "faults")

    def begin_run(self) -> None:
        """Open the outermost scope; everything unattributed inside the
        run loop (loop control, drain checks, watchdog) lands in
        ``run_loop``."""
        self._run_start = perf_counter()
        self._enter("run_loop")

    def end_run(self) -> None:
        self._exit()
        self.wall += perf_counter() - self._run_start

    # -- reporting ---------------------------------------------------------

    def accounted(self) -> float:
        return sum(self.self_time.values())

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """``(component, self_seconds, fraction_of_wall)`` sorted by cost."""
        wall = self.wall or self.accounted() or 1.0
        rows = [(name, seconds, seconds / wall)
                for name, seconds in self.self_time.items()]
        rows.sort(key=lambda row: -row[1])
        return rows

    def report(self) -> str:
        """Human-readable "where did simulation time go" table."""
        lines = [f"self-profile: {self.wall * 1e3:.1f} ms total",
                 f"  {'component':<10} {'calls':>9} {'self ms':>9} {'%':>6}"]
        for name, seconds, fraction in self.breakdown():
            lines.append(f"  {name:<10} {self.calls.get(name, 0):>9} "
                         f"{seconds * 1e3:>9.1f} {fraction * 100:>5.1f}%")
        covered = self.accounted() / self.wall * 100 if self.wall else 0.0
        lines.append(f"  components cover {covered:.1f}% of measured time")
        return "\n".join(lines)
