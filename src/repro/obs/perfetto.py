"""Chrome trace-event / Perfetto JSON export of a recorded run.

:func:`build_trace` turns a recorded schedule (``core.run(...,
record_schedule=True)``), and optionally a tracer and a metrics sampler,
into a dict conforming to the Chrome trace-event JSON format — load the
file in https://ui.perfetto.dev (or ``chrome://tracing``) to eyeball a
CASINO-vs-OoO schedule in a real trace viewer instead of the 64-column
ASCII timeline.

Layout:

* **pid 1, "<core> pipeline"** — instruction lifetimes, packed onto the
  minimum number of lanes (tids) such that lifetimes on one lane never
  overlap.  Each instruction contributes one complete (``ph: "X"``) slice
  per lifetime phase: ``wait`` (dispatch -> issue), ``exec`` (issue ->
  done) and ``retire`` (done -> commit); S-IQ issues are tagged in args.
* **pid 1, tid 0 "events"** — instant (``ph: "i"``) markers for squashes,
  cache misses and memory-order violations from the tracer.
* **pid 2, "<core> structures"** — counter (``ph: "C"``) tracks for
  per-structure occupancy and interval IPC from the metrics sampler.

One simulated cycle maps to one trace-time unit (a "microsecond").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.events import (
    EV_CACHE_MISS,
    EV_DISPATCH,
    EV_SQUASH,
    EV_STORESET_VIOLATION,
)

_INSTANT_KINDS = (EV_SQUASH, EV_CACHE_MISS, EV_STORESET_VIOLATION)
_PID_PIPELINE = 1
_PID_STRUCTURES = 2
_TID_EVENTS = 0


def _meta(pid: int, tid: Optional[int], name: str) -> dict:
    event = {"ph": "M", "pid": pid, "ts": 0,
             "name": "process_name" if tid is None else "thread_name",
             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def _lane_for(lanes: List[int], start: int) -> int:
    """First lane free at ``start`` (greedy interval packing)."""
    for index, busy_until in enumerate(lanes):
        if busy_until <= start:
            return index
    lanes.append(0)
    return len(lanes) - 1


def build_trace(schedule, tracer=None, sampler=None,
                core_name: str = "core") -> dict:
    """Build a trace-event document from one recorded run."""
    events: List[dict] = []
    events.append(_meta(_PID_PIPELINE, None, f"{core_name} pipeline"))
    events.append(_meta(_PID_PIPELINE, _TID_EVENTS, "events"))

    # Dispatch cycles recovered from the tracer (ring buffer permitting);
    # instructions without one start their lifetime at issue (or commit).
    dispatch_at: Dict[int, int] = {}
    if tracer is not None:
        for event in tracer.events():
            if event.kind == EV_DISPATCH:
                dispatch_at[event.seq] = event.cycle

    lanes: List[int] = []   # per-lane busy-until cycle
    for row in schedule or ():
        seq, inst, issue_at, done_at, commit_at, from_siq = row[:6]
        if len(row) > 6 and row[6] is not None:
            dispatch_at.setdefault(seq, row[6])
        start = dispatch_at.get(seq)
        if start is None:
            start = issue_at if issue_at is not None else commit_at
        start = min(start, commit_at)
        lane = _lane_for(lanes, start)
        lanes[lane] = commit_at + 1
        tid = lane + 1   # tid 0 is the instant-marker track
        args = {"seq": seq, "op": inst.op.name, "from_siq": from_siq}
        label = f"#{seq} {inst.op.name.lower()}"
        phases = []
        if issue_at is not None:
            phases.append(("wait", start, issue_at))
            if done_at is not None:
                phases.append(("exec", issue_at, done_at))
                phases.append(("retire", done_at, commit_at + 1))
            else:
                phases.append(("exec", issue_at, commit_at + 1))
        else:
            phases.append(("wait", start, commit_at + 1))
        for phase, begin, finish in phases:
            if finish < begin:
                finish = begin
            events.append({"ph": "X", "pid": _PID_PIPELINE, "tid": tid,
                           "ts": begin, "dur": finish - begin,
                           "name": f"{label} {phase}", "cat": phase,
                           "args": args})
    for lane in range(len(lanes)):
        events.append(_meta(_PID_PIPELINE, lane + 1, f"lane {lane}"))

    if tracer is not None:
        for event in tracer.events():
            if event.kind not in _INSTANT_KINDS:
                continue
            args = {"seq": event.seq}
            args.update(event.data)
            events.append({"ph": "i", "pid": _PID_PIPELINE,
                           "tid": _TID_EVENTS, "ts": event.cycle, "s": "t",
                           "name": event.kind, "cat": "events",
                           "args": args})

    if sampler is not None and sampler.samples:
        events.append(_meta(_PID_STRUCTURES, None,
                            f"{core_name} structures"))
        events.append(_meta(_PID_STRUCTURES, _TID_EVENTS, "counters"))
        for sample in sampler.samples:
            ts = sample["cycle"]
            events.append({"ph": "C", "pid": _PID_STRUCTURES,
                           "tid": _TID_EVENTS, "ts": ts, "name": "ipc",
                           "args": {"ipc": sample["ipc"]}})
            for name, used in sample["occupancy"].items():
                events.append({"ph": "C", "pid": _PID_STRUCTURES,
                               "tid": _TID_EVENTS, "ts": ts,
                               "name": f"occ {name}",
                               "args": {"occupancy": used}})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"core": core_name, "clock": "1 cycle = 1 us"}}


_PID_SERVICE = 10
_PID_OCCUPANCY = 11

#: Span events that close a job's "running" segment without ending it.
_INTERRUPTS = ("lease_expired", "worker_died", "timeout")
_TERMINALS = ("completed", "failed", "dead_lettered")


def build_service_trace(spans: Dict[str, dict]) -> dict:
    """Trace-event document of a batch's job lifecycles (service spans).

    ``spans`` is ``{job_id: {"job", "trace", "events": [...]}}`` as
    produced by :meth:`repro.obs.telemetry.SpanLog.spans` (live service)
    or :func:`repro.obs.telemetry.fold_spans` (from a journal).  Layout:

    * **pid 10, "service jobs"** — one nestable *async* slice stack per
      job (``ph: "b"``/``"e"``, keyed by trace id): the outer slice is
      the whole submit→terminal lifecycle, nested ``queued`` /
      ``running`` slices segment it, so queue waits and lease reclaims
      read directly off the timeline.  Redeliveries re-open ``queued``;
      annotations (``lease_expired``, ``redelivered``, ``worker_died``,
      ``recovered``, ``store_hit``) appear as instant markers.
    * **pid 11, "service occupancy"** — counter tracks ``jobs_queued``
      and ``jobs_running`` stepped at every segment boundary: worker
      occupancy over time for the whole batch.

    Wall-clock timestamps are normalised so the earliest span event is
    ts 0, scaled to microseconds (1 µs trace time = 1 µs wall time).
    """
    events: List[dict] = []
    events.append(_meta(_PID_SERVICE, None, "service jobs"))
    events.append(_meta(_PID_SERVICE, _TID_EVENTS, "annotations"))
    all_ts = [e["ts"] for span in spans.values() for e in span["events"]]
    if not all_ts:
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"source": "service spans", "jobs": 0}}
    t0 = min(all_ts)

    def us(ts: float) -> float:
        return round((ts - t0) * 1e6, 3)

    #: (ts, d_queued, d_running) steps for the occupancy counters.
    steps: List[tuple] = []
    for job_id, span in spans.items():
        evs = sorted(span["events"], key=lambda e: e["ts"])
        trace_id = span.get("trace") or job_id
        base = {"cat": "service", "id": str(trace_id),
                "pid": _PID_SERVICE, "tid": 0}
        first, last = evs[0]["ts"], evs[-1]["ts"]
        events.append(dict(base, ph="b", ts=us(first), name=job_id,
                           args={"trace": trace_id}))
        segment = None   # (name, since_ts) of the open inner slice

        def close_segment(ts: float) -> None:
            nonlocal segment
            if segment is None:
                return
            name, _ = segment
            events.append(dict(base, ph="e", ts=us(ts), name=name))
            steps.append((ts, -1, 0) if name == "queued" else (ts, 0, -1))
            segment = None

        def open_segment(name: str, ts: float) -> None:
            nonlocal segment
            close_segment(ts)
            events.append(dict(base, ph="b", ts=us(ts), name=name))
            steps.append((ts, 1, 0) if name == "queued" else (ts, 0, 1))
            segment = (name, ts)

        for event in evs:
            kind, ts = event["ev"], event["ts"]
            if kind == "submitted":
                open_segment("queued", ts)
            elif kind == "leased":
                open_segment("running", ts)
            elif kind in _INTERRUPTS:
                close_segment(ts)
                open_segment("queued", ts)
            elif kind in _TERMINALS:
                close_segment(ts)
            if kind in _INTERRUPTS + ("redelivered", "recovered",
                                      "store_hit", "worker_died"):
                args = {"job": job_id}
                args.update({k: v for k, v in event.items()
                             if k not in ("ev", "ts")})
                events.append({"ph": "i", "pid": _PID_SERVICE,
                               "tid": _TID_EVENTS, "ts": us(ts), "s": "p",
                               "name": kind, "cat": "annotations",
                               "args": args})
        close_segment(last)
        events.append(dict(base, ph="e", ts=us(last), name=job_id))

    events.append(_meta(_PID_OCCUPANCY, None, "service occupancy"))
    events.append(_meta(_PID_OCCUPANCY, _TID_EVENTS, "counters"))
    queued = running = 0
    steps.sort(key=lambda s: s[0])
    for ts, d_queued, d_running in steps:
        queued = max(0, queued + d_queued)
        running = max(0, running + d_running)
        events.append({"ph": "C", "pid": _PID_OCCUPANCY,
                       "tid": _TID_EVENTS, "ts": us(ts),
                       "name": "jobs_queued", "args": {"jobs": queued}})
        events.append({"ph": "C", "pid": _PID_OCCUPANCY,
                       "tid": _TID_EVENTS, "ts": us(ts),
                       "name": "jobs_running", "args": {"jobs": running}})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"source": "service spans", "jobs": len(spans),
                          "clock": "1 us trace = 1 us wall",
                          "t0_unix_s": t0}}


def validate_trace(doc: dict) -> List[str]:
    """Schema-check a trace-event document; returns a list of problems
    (empty means valid).  Checks the shape Perfetto actually needs: a
    ``traceEvents`` list, required per-phase fields, non-negative
    durations, and that complete slices on one (pid, tid) track are
    properly nested (no partial overlap)."""
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document has no traceEvents key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    slices: Dict[tuple, List[tuple]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("ph", "pid", "ts", "name"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        ph = event.get("ph")
        if ph == "X":
            if event.get("dur", -1) < 0:
                problems.append(f"event {index} has negative/missing dur")
            else:
                track = (event.get("pid"), event.get("tid"))
                slices.setdefault(track, []).append(
                    (event["ts"], event["ts"] + event["dur"], index))
        elif ph == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"instant event {index} has bad scope")
    for track, intervals in slices.items():
        # Enclosing slices sort first so containment reads as nesting.
        intervals.sort(key=lambda t: (t[0], -t[1]))
        open_stack: List[tuple] = []
        for begin, end, index in intervals:
            while open_stack and open_stack[-1][1] <= begin:
                open_stack.pop()
            if open_stack and end > open_stack[-1][1]:
                problems.append(
                    f"slice {index} on track {track} partially overlaps "
                    f"an enclosing slice")
            open_stack.append((begin, end))
    return problems
