"""Critical-path analysis over a recorded schedule.

Post-mortem companion to the live CPI stack
(:mod:`repro.obs.accounting`): given the per-instruction schedule a core
records with ``run(..., record_schedule=True)`` — rows of ``(seq, inst,
issue_at, done_at, commit_at, from_siq, dispatch_at)`` in commit order —
rebuild the dependence/resource DAG and walk the chain of binding
constraints backward from the last-completing instruction.  The result
names the instructions *on* the critical path and attributes every cycle
of its length to one edge type:

``execute``
    FU latency of a path node (non-miss ops, and loads within the L1 hit
    latency).
``memory``
    The portion of a load's latency beyond the L1 hit latency (cache
    misses), plus waits bound by a store -> load memory dependence.
``data``
    Waits bound by a register producer finishing exactly when the
    consumer issues (back-to-back dependent issue; no scheduler could do
    better).
``siq_order``
    Waits caused by in-order issue: the node was ready but could not
    issue before an *older* instruction issued (head-of-queue / cascade
    ordering — the constraint CASINO's S-IQs relax).
``fu_contention``
    Residual waits past readiness and the ordering gate: issue-width or
    FU/port structural contention.
``window``
    Waits before *dispatch*: the node could not enter the machine until
    an older instruction committed and recycled its window slot (plus
    the commit-side wait of that older instruction).
``dispatch``
    Leading cycles before the first path node entered the machine
    (fetch/decode fill).

The same per-node classification, summed over *all* instructions instead
of only the path, gives the per-edge-type slack totals
(:func:`edge_slack`) used by ``repro explain``.

Like every observability module here, this is strictly read-only and
core-agnostic: it sees only the recorded schedule, so it can analyse any
core model.  The ordering gate is detected from the schedule itself via
a prefix-max over issue cycles — OoO schedules, which issue around older
instructions, show (nearly) none of it, while strict in-order schedules
show it at every dependent head.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

#: Edge/cycle categories, in display order.
EDGE_TYPES = ("execute", "memory", "data", "siq_order", "fu_contention",
              "window", "dispatch")

#: Default L1D hit latency (cycles); pass ``core.hier.l1d.cfg.latency``
#: for configured runs.
DEFAULT_HIT_LATENCY = 4


class PathNode:
    """One scheduled instruction with its rebuilt constraints."""

    __slots__ = ("seq", "inst", "issue_at", "done_at", "commit_at",
                 "from_siq", "dispatch_at", "producers", "mem_producer",
                 "data_ready", "ready", "binding_producer", "gate",
                 "gate_seq", "order_wait", "contention_wait",
                 "exec_cycles", "mem_cycles", "window_pred")

    def __init__(self, seq, inst, issue_at, done_at, commit_at, from_siq,
                 dispatch_at=None):
        self.seq = seq
        self.inst = inst
        self.issue_at = issue_at
        self.done_at = done_at
        self.commit_at = commit_at
        self.from_siq = from_siq
        self.dispatch_at = dispatch_at if dispatch_at is not None else 0
        self.producers: List["PathNode"] = []
        self.mem_producer: Optional["PathNode"] = None
        self.data_ready = 0
        self.ready = 0
        self.binding_producer: Optional["PathNode"] = None
        self.gate = 0
        self.gate_seq: Optional[int] = None
        self.order_wait = 0
        self.contention_wait = 0
        self.exec_cycles = 0
        self.mem_cycles = 0
        self.window_pred: Optional["PathNode"] = None

    @property
    def label(self) -> str:
        return f"#{self.seq} {self.inst.op.name} pc=0x{self.inst.pc:x}"


def build_graph(schedule: Sequence[tuple],
                hit_latency: int = DEFAULT_HIT_LATENCY) -> List[PathNode]:
    """Rebuild the dependence DAG and classify every node's wait cycles.

    ``schedule`` is the list a core records (commit order == program
    order).  Returns nodes in program order with ``producers`` (register
    dataflow), ``mem_producer`` (youngest older overlapping store for
    loads), the binding constraint, and the per-category cycle split.
    """
    nodes = [PathNode(*row) for row in schedule
             if row[2] is not None and row[3] is not None]
    last_writer: Dict[int, PathNode] = {}
    last_stores: List[PathNode] = []
    prefix_issue: Optional[PathNode] = None   # older node with max issue_at
    commits: List[int] = []                   # nondecreasing (in-order commit)
    for i, node in enumerate(nodes):
        inst = node.inst
        for src in inst.srcs:
            writer = last_writer.get(src)
            if writer is not None:
                node.producers.append(writer)
        if inst.is_load:
            for store in reversed(last_stores):
                if store.inst.overlaps(inst):
                    node.mem_producer = store
                    break
        # Data/memory readiness: the latest producer completion.
        ready = 0
        binding = None
        for producer in node.producers:
            if producer.done_at > ready:
                ready = producer.done_at
                binding = producer
        # A store -> load edge only binds when it is causal: a forwarded
        # load may legally issue the cycle the store resolves (before the
        # store's completion timestamp), and then it is no constraint.
        if (node.mem_producer is not None
                and node.issue_at >= node.mem_producer.done_at > ready):
            ready = node.mem_producer.done_at
            binding = node.mem_producer
        node.data_ready = ready
        node.binding_producer = binding
        node.ready = max(ready, node.dispatch_at)
        # The window predecessor: the youngest older instruction whose
        # commit preceded this node's dispatch — on a full window, the
        # commit that recycled the slot this node dispatched into.
        j = bisect_right(commits, node.dispatch_at)
        if 0 < j <= i:
            node.window_pred = nodes[j - 1]
        # Ordering gate: on an in-order machine nothing issues before an
        # older instruction has issued; the prefix max of issue cycles is
        # that gate.  (OoO schedules routinely issue *under* the prefix
        # max, which classifies those waits as contention, not ordering.)
        if prefix_issue is not None:
            node.gate = prefix_issue.issue_at
            node.gate_seq = prefix_issue.seq
        gate = node.gate if node.gate_seq is not None else 0
        if gate > node.ready and node.issue_at >= gate:
            node.order_wait = gate - node.ready
            node.contention_wait = node.issue_at - gate
        else:
            node.contention_wait = max(0, node.issue_at - node.ready)
        total_exec = node.done_at - node.issue_at
        if inst.is_load and total_exec > hit_latency:
            node.mem_cycles = total_exec - hit_latency
            node.exec_cycles = hit_latency
        else:
            node.exec_cycles = total_exec
        if inst.dst is not None:
            last_writer[inst.dst] = node
        if inst.is_store:
            last_stores.append(node)
        if prefix_issue is None or node.issue_at > prefix_issue.issue_at:
            prefix_issue = node
        commits.append(node.commit_at)
    return nodes


def critical_path(schedule: Sequence[tuple],
                  hit_latency: int = DEFAULT_HIT_LATENCY) -> dict:
    """The binding chain of the schedule, with a cycle breakdown.

    Walks backward from the last-completing instruction, at each node
    following the constraint that actually bound its issue: the ordering
    gate when the node waited head-blocked, the binding producer when
    data readiness dominated, the window-recycling commit when the node
    could not even dispatch, else frontend fill.  The walk sweeps a time
    pointer continuously from the path length down to cycle 0, so the
    breakdown sums exactly to ``length`` by construction.
    """
    nodes = build_graph(schedule, hit_latency)
    if not nodes:
        return {"length": 0, "path": [],
                "breakdown": {t: 0 for t in EDGE_TYPES}}
    by_seq = {node.seq: node for node in nodes}
    current = max(nodes, key=lambda n: (n.done_at, n.seq))
    length = current.done_at
    breakdown = {t: 0 for t in EDGE_TYPES}
    path: List[dict] = []
    t = length
    while True:
        # Arriving via a window edge, t is the commit cycle that freed
        # the successor's slot; the [done, commit) wait is window time.
        capped = min(current.done_at, t)
        breakdown["window"] += t - capped
        seg = capped - current.issue_at
        mem_part = min(seg, current.mem_cycles)
        breakdown["memory"] += mem_part
        breakdown["execute"] += seg - mem_part
        step = {
            "seq": current.seq,
            "label": current.label,
            "dispatch_at": current.dispatch_at,
            "issue_at": current.issue_at,
            "done_at": current.done_at,
            "exec": seg - mem_part,
            "memory": mem_part,
            "order_wait": current.order_wait,
            "contention_wait": current.contention_wait,
        }
        t = current.issue_at
        gate_node = (by_seq.get(current.gate_seq)
                     if current.gate_seq is not None else None)
        if current.order_wait > 0 and gate_node is not None:
            # Segment [gate, issue): issue was gated on the older
            # instruction issuing.  The wait *before* the gate opened
            # belongs to the gate node's own history, which the walk
            # continues through (t jumps to its issue cycle).
            breakdown["siq_order"] += t - current.gate
            step["via"] = "siq_order"
            path.append(step)
            t = current.gate          # == gate_node.issue_at
            current = gate_node
            continue
        binding = current.binding_producer
        if (binding is not None
                and current.data_ready >= current.dispatch_at
                and current.data_ready > 0):
            breakdown["fu_contention"] += t - current.data_ready
            step["via"] = ("memory" if binding is current.mem_producer
                           else "data")
            path.append(step)
            t = current.data_ready    # == binding.done_at
            current = binding
            continue
        # Dispatch-bound: [dispatch, issue) is issue-side contention,
        # then hop to the commit that recycled the window slot.
        breakdown["fu_contention"] += t - current.dispatch_at
        t = current.dispatch_at
        pred = current.window_pred
        if pred is not None and pred.commit_at <= t:
            breakdown["window"] += t - pred.commit_at
            step["via"] = "window"
            path.append(step)
            t = pred.commit_at
            current = pred
            continue
        # Chain start: cycles before the first dispatch are frontend fill.
        breakdown["dispatch"] += t
        step["via"] = "dispatch"
        path.append(step)
        break
    path.reverse()
    return {"length": length, "path": path, "breakdown": breakdown}


def edge_slack(schedule: Sequence[tuple],
               hit_latency: int = DEFAULT_HIT_LATENCY) -> Dict[str, int]:
    """Whole-schedule wait totals by category (not just the path):
    how many issue-wait cycles every instruction spent on in-order
    ordering vs. FU contention, and how many execution cycles went to
    the memory system vs. plain FU latency."""
    totals = {t: 0 for t in EDGE_TYPES}
    for node in build_graph(schedule, hit_latency):
        totals["execute"] += node.exec_cycles
        totals["memory"] += node.mem_cycles
        totals["siq_order"] += node.order_wait
        totals["fu_contention"] += node.contention_wait
    return totals
