"""Service-layer telemetry: metrics registry, per-job spans, JSON logs.

Three primitives, shared by the whole service fabric
(:mod:`repro.service`):

* **MetricsRegistry** — typed counters, gauges and fixed-bucket latency
  histograms with *atomic snapshot* semantics (one lock guards the whole
  registry, so a snapshot is a consistent cut, never a torn read).
  Snapshots are plain JSON-able dicts; :func:`merge_snapshots` folds the
  per-worker local registries into one fabric-wide view losslessly
  (worker snapshots are cumulative, so summing across workers never
  drops an increment), and :func:`render_prometheus` serialises any
  snapshot as Prometheus text exposition for ``GET /metrics``.

* **SpanLog** — per-job lifecycle spans.  Every job carries a trace id
  minted at submit (:func:`new_trace_id`); each fabric component appends
  timestamped span events (``submitted``, ``journaled``, ``leased``,
  ``started``, ``store_hit`` | ``simulated``, ``stored``, ``completed``
  | ``failed`` | ``dead_lettered``, plus lease-expiry / redelivery
  annotations).  Appending a second *terminal* event to a span is a
  no-op — that idempotence is what makes crash-recovery replay safe.
  :func:`fold_spans` rebuilds spans from a journal record stream: the
  enriched lifecycle records (``submitted``/``leased``/``done``/...
  carrying ``ts`` and ``trace``) synthesise their span events, dedicated
  ``span`` records pass through verbatim.

* **JSON line logging** — a stdlib-``logging`` formatter emitting one
  JSON object per line (``ts``, ``level``, ``logger``, ``event`` plus
  arbitrary fields such as ``job``/``trace``).  Libraries log through
  :func:`get_logger`; nothing is emitted until an entry point calls
  :func:`configure_logging`, so importing the service layer stays
  silent in tests and notebooks.

None of this touches the simulator: telemetry observes the *service*
around deterministic simulations, so enabling or disabling it never
changes a single simulated counter (asserted by
``tests/test_telemetry.py``).
"""

from __future__ import annotations

import bisect
import itertools
import json
import logging
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Version of the snapshot layout produced by :meth:`MetricsRegistry.snapshot`.
TELEMETRY_SCHEMA = 1

#: Default latency buckets (seconds) for service histograms: sub-ms
#: submit paths up through multi-minute simulations.
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Span events that end a job's lifecycle — a span holds at most one.
TERMINAL_SPAN_EVENTS = ("completed", "failed", "dead_lettered")

#: The well-known span event vocabulary (annotations may extend it).
SPAN_EVENTS = (
    "submitted", "journaled", "leased", "started", "store_hit",
    "simulated", "stored", "recovered",
    "lease_expired", "redelivered", "worker_died", "timeout",
) + TERMINAL_SPAN_EVENTS


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# -- instruments ---------------------------------------------------------------


class Counter:
    """Monotonic counter.  ``inc`` under the registry lock."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value; merge across workers sums."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram (cumulative rendering, native counts kept).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  Invariant (tested): ``sum(counts) == count`` — every
    observation lands in exactly one bucket.
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class MetricsRegistry:
    """Named, labelled instruments behind one lock.

    ``counter("repro_jobs_total", "help", status="done")`` returns the
    (created-on-demand) instrument for that (name, labels) series; a
    name is permanently typed by its first registration.  ``snapshot()``
    is an atomic, JSON-able cut of every series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (name, label_key) -> instrument
        self._series: Dict[Tuple[str, tuple], object] = {}
        #: name -> ("counter" | "gauge" | "histogram", help)
        self._families: Dict[str, Tuple[str, str]] = {}

    def _get(self, kind: str, name: str, help_: str, labels: Dict[str, str],
             factory):
        key = (name, _label_key(labels))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                self._families[name] = (kind, help_)
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}")
            instrument = self._series.get(key)
            if instrument is None:
                instrument = factory()
                self._series[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels,
                         lambda: Counter(self._lock))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels,
                         lambda: Gauge(self._lock))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                  **labels) -> Histogram:
        return self._get("histogram", name, help, labels,
                         lambda: Histogram(self._lock, buckets))

    def snapshot(self) -> dict:
        """Consistent JSON-able cut of every series (one lock hold)."""
        with self._lock:
            series = []
            for (name, label_key), instrument in self._series.items():
                kind, help_ = self._families[name]
                entry = {"name": name, "kind": kind,
                         "labels": dict(label_key)}
                if help_:
                    entry["help"] = help_
                if kind == "histogram":
                    entry.update(buckets=list(instrument.buckets),
                                 counts=list(instrument.counts),
                                 sum=instrument.sum,
                                 count=instrument.count)
                else:
                    entry["value"] = instrument.value
                series.append(entry)
        return {"schema": TELEMETRY_SCHEMA, "series": series}


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Fold registry snapshots into one: counters/gauges sum, histogram
    bucket counts add elementwise.  Per-worker snapshots are cumulative,
    so the merge is lossless — no increment is ever dropped, whichever
    order workers report in."""
    merged: Dict[Tuple[str, tuple], dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for entry in snapshot.get("series", ()):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            into = merged.get(key)
            if into is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy
                continue
            if into["kind"] != entry["kind"]:
                raise ValueError(f"metric {entry['name']!r} kind mismatch")
            if entry["kind"] == "histogram":
                if list(into["buckets"]) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket mismatch")
                into["counts"] = [a + b for a, b in
                                  zip(into["counts"], entry["counts"])]
                into["sum"] += entry["sum"]
                into["count"] += entry["count"]
            else:
                into["value"] += entry["value"]
            if entry.get("help") and not into.get("help"):
                into["help"] = entry["help"]
    return {"schema": TELEMETRY_SCHEMA,
            "series": [merged[key] for key in sorted(merged)]}


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (format 0.0.4) of one snapshot.

    Histograms render cumulatively (``_bucket{le=...}`` + ``_sum`` +
    ``_count``); ``HELP``/``TYPE`` headers appear once per family.
    """
    by_family: Dict[str, List[dict]] = {}
    for entry in snapshot.get("series", ()):
        by_family.setdefault(entry["name"], []).append(entry)
    lines: List[str] = []
    for name in sorted(by_family):
        entries = by_family[name]
        kind = entries[0]["kind"]
        help_ = next((e["help"] for e in entries if e.get("help")), "")
        if help_:
            lines.append(f"# HELP {name} {_escape(help_)}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in sorted(entries,
                            key=lambda e: _label_key(e.get("labels", {}))):
            labels = entry.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(
                        list(entry["buckets"]) + [float("inf")],
                        entry["counts"]):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") \
                        else _fmt_value(bound)
                    le_label = 'le="%s"' % le
                    lines.append(f"{name}_bucket"
                                 f"{_fmt_labels(labels, le_label)} "
                                 f"{cumulative}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} "
                             f"{_fmt_value(entry['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} "
                             f"{entry['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} "
                             f"{_fmt_value(entry['value'])}")
    return "\n".join(lines) + "\n"


# -- spans ---------------------------------------------------------------------

_TRACE_NONCE = os.urandom(4).hex()
_TRACE_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """Cheap process-unique trace id (nonce keeps restarts distinct)."""
    return f"{_TRACE_NONCE}-{os.getpid():x}-{next(_TRACE_COUNTER):x}"


class SpanLog:
    """Per-job span collector with idempotent terminal events.

    A span is ``{"job", "trace", "events": [{"ev", "ts", ...attrs}]}``.
    ``append`` returns the event record it stored, or ``None`` when the
    event was suppressed (a second terminal event on one span) — the
    caller skips journaling suppressed events, so crash-recovery replay
    can never double a job's terminal transition.
    """

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: Dict[str, dict] = {}

    def append(self, job: str, event: str, trace: Optional[str] = None,
               ts: Optional[float] = None, **attrs) -> Optional[dict]:
        record = {"ev": event,
                  "ts": round(self._clock() if ts is None else ts, 6)}
        if attrs:
            record.update(attrs)
        with self._lock:
            span = self._spans.get(job)
            if span is None:
                span = {"job": job, "trace": trace, "events": []}
                self._spans[job] = span
            if trace is not None and span.get("trace") is None:
                span["trace"] = trace
            if event in TERMINAL_SPAN_EVENTS and self._terminal(span):
                return None
            span["events"].append(record)
        return record

    @staticmethod
    def _terminal(span: dict) -> bool:
        return any(e["ev"] in TERMINAL_SPAN_EVENTS for e in span["events"])

    def trace(self, job: str) -> Optional[dict]:
        """Public view of one span (``complete`` = has a terminal event)."""
        with self._lock:
            span = self._spans.get(job)
            if span is None:
                return None
            return {"job": span["job"], "trace": span.get("trace"),
                    "complete": self._terminal(span),
                    "events": [dict(e) for e in span["events"]]}

    def spans(self) -> Dict[str, dict]:
        """Snapshot of every span, in insertion (submission) order."""
        with self._lock:
            return {job: {"job": span["job"], "trace": span.get("trace"),
                          "events": [dict(e) for e in span["events"]]}
                    for job, span in self._spans.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Journal record types that carry span information implicitly.
_LIFECYCLE_TERMINAL = {"done": "completed", "failed": "failed",
                       "dead_letter": "dead_lettered"}


def fold_spans(records: Iterable[dict],
               spanlog: Optional[SpanLog] = None) -> SpanLog:
    """Rebuild per-job spans from a journal record stream.

    Lifecycle records synthesise their span events (a ``submitted``
    record with ``ts`` yields ``submitted`` + ``journaled``, and for a
    cache-served submission also ``store_hit`` + ``completed``);
    dedicated ``span`` records pass through verbatim.  Records without a
    timestamp (journal schema 1) contribute no span events — old
    journals stay readable, they just have no span history.
    """
    log = spanlog if spanlog is not None else SpanLog()
    for rec in records:
        job, ts = rec.get("job"), rec.get("ts")
        if job is None or ts is None:
            continue
        type_ = rec.get("t")
        trace = rec.get("trace")
        if type_ == "submitted":
            log.append(job, "submitted", trace=trace, ts=ts,
                       priority=rec.get("priority"))
            log.append(job, "journaled", ts=ts, synthesized=True)
            if rec.get("cached"):
                log.append(job, "store_hit", ts=ts, synthesized=True)
                log.append(job, "completed", ts=ts, cached=True)
        elif type_ == "leased":
            log.append(job, "leased", ts=ts, attempt=rec.get("attempt"))
        elif type_ == "span":
            ev = rec.get("ev")
            if ev:
                attrs = {k: v for k, v in rec.items()
                         if k not in ("t", "job", "ev", "ts", "trace",
                                      "seq")}
                log.append(job, ev, trace=trace, ts=ts, **attrs)
        elif type_ in _LIFECYCLE_TERMINAL:
            attrs = {}
            if rec.get("error") is not None:
                attrs["error"] = rec.get("error")
            if rec.get("cached"):
                attrs["cached"] = True
            log.append(job, _LIFECYCLE_TERMINAL[type_], ts=ts, **attrs)
    return log


# -- structured logging --------------------------------------------------------


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log line; extra fields ride on ``fields``."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {"ts": round(record.created, 6),
               "level": record.levelname.lower(),
               "logger": record.name,
               "event": record.getMessage()}
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in doc:
                    doc[key] = value
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


#: Sentinel attribute marking the handler configure_logging installed.
_HANDLER_FLAG = "_repro_json_handler"


def configure_logging(stream=None, level: int = logging.INFO
                      ) -> logging.Logger:
    """Attach the JSON line handler to the ``repro`` logger (idempotent).

    Libraries call :func:`get_logger` freely; nothing reaches a stream
    until an entry point (``repro serve``, tests) calls this.
    """
    root = logging.getLogger("repro")
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            if stream is not None:
                handler.setStream(stream)
            return root
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger (``repro.<name>``); silent until configured."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, event: str,
              level: int = logging.INFO, **fields) -> None:
    """Emit one structured line: ``event`` plus arbitrary JSON fields
    (job / trace ids ride here, so every line is greppable by id)."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})
