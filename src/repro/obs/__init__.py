"""Observability: cycle-level tracing, time-series metrics, Perfetto
export, self-profiling and run provenance.

Everything in this package is strictly *read-only* with respect to the
simulation: attaching a tracer/sampler/profiler never changes any timing
statistic, and with all of them detached (the default) the core models run
the exact seed code paths — the same disabled-means-bit-identical contract
the invariant sanitizer established.
"""

from repro.obs.accounting import COMPONENTS, CycleAccounting, \
    format_stack_table
from repro.obs.critpath import EDGE_TYPES, critical_path, edge_slack
from repro.obs.events import EVENT_KINDS, TraceEvent, Tracer
from repro.obs.metrics import MetricsSampler
from repro.obs.perfetto import build_trace, validate_trace
from repro.obs.profile import SelfProfiler
from repro.obs.provenance import counter_digest, git_rev, run_manifest
from repro.obs.schedulediff import diff_schedules, format_diff_report

__all__ = [
    "EVENT_KINDS", "TraceEvent", "Tracer", "MetricsSampler",
    "build_trace", "validate_trace", "SelfProfiler",
    "counter_digest", "git_rev", "run_manifest",
    "COMPONENTS", "CycleAccounting", "format_stack_table",
    "EDGE_TYPES", "critical_path", "edge_slack",
    "diff_schedules", "format_diff_report",
]
