"""Structured cycle-level event tracing.

A :class:`Tracer` is attached to a core for one run (``core.run(...,
tracer=Tracer())``).  The core models emit one :class:`TraceEvent` per
microarchitectural event — the emit sites live in
:mod:`repro.engine.core_base` (dispatch, commit, squash, cache miss) and in
each core's ``_step`` path (wakeup/issue/execute-done, S-IQ promotion,
memory-order violations), mirroring the ``_occupancy()`` hook pattern of
the sanitizer.

Contract: with no tracer attached (the default) the only added work per
event site is one ``is None`` test, and the simulated timing is bit-
identical either way — the tracer only ever *reads* core state.

Events are stored in a bounded ring buffer (oldest evicted first) and can
be filtered at emit time by kind and by sequence-number range, so tracing
a billion-cycle run around one misbehaving instruction stays cheap.

Timestamps: events are stamped with the cycle the event *pertains to*,
which for ``wakeup`` (operands became ready) and ``execute_done``
(completion time, known at issue in this simulator) may differ from the
cycle the core emitted them.  :meth:`Tracer.events` therefore returns the
buffer sorted by cycle (stable, emission order breaks ties).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

#: Canonical event kinds (see docs/OBSERVABILITY.md for the schema).
EV_DISPATCH = "dispatch"
EV_WAKEUP = "wakeup"
EV_ISSUE = "issue"
EV_EXECUTE_DONE = "execute_done"
EV_COMMIT = "commit"
EV_SQUASH = "squash"
EV_SIQ_PROMOTE = "siq_promote"
EV_CACHE_MISS = "cache_miss"
EV_STORESET_VIOLATION = "storeset_violation"

EVENT_KINDS: Tuple[str, ...] = (
    EV_DISPATCH, EV_WAKEUP, EV_ISSUE, EV_EXECUTE_DONE, EV_COMMIT,
    EV_SQUASH, EV_SIQ_PROMOTE, EV_CACHE_MISS, EV_STORESET_VIOLATION,
)


class TraceEvent:
    """One microarchitectural event: what happened, when, to which seq."""

    __slots__ = ("kind", "cycle", "seq", "data")

    def __init__(self, kind: str, cycle: int, seq: int, data: dict) -> None:
        self.kind = kind
        self.cycle = cycle
        self.seq = seq
        self.data = data

    def as_dict(self) -> dict:
        out = {"kind": self.kind, "cycle": self.cycle, "seq": self.seq}
        out.update(self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} @{self.cycle} #{self.seq} {self.data}>"


class Tracer:
    """Bounded, filterable recorder of :class:`TraceEvent` streams.

    ``capacity`` bounds the ring buffer (oldest events are evicted);
    ``kinds`` restricts recording to a subset of :data:`EVENT_KINDS`;
    ``seq_min``/``seq_max`` restrict it to a sequence-number window
    (events not tied to an instruction, e.g. ``squash``, carry ``seq`` of
    the first squashed instruction and filter the same way).
    """

    def __init__(self, capacity: int = 65_536,
                 kinds: Optional[Iterable[str]] = None,
                 seq_min: Optional[int] = None,
                 seq_max: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        unknown = set(kinds or ()) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(f"unknown event kind(s): {sorted(unknown)}")
        self.capacity = capacity
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.seq_min = seq_min
        self.seq_max = seq_max
        self._buffer: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.counts: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def wants(self, kind: str, seq: int) -> bool:
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.seq_min is not None and seq < self.seq_min:
            return False
        if self.seq_max is not None and seq > self.seq_max:
            return False
        return True

    def emit(self, kind: str, cycle: int, seq: int = -1, **data) -> None:
        if not self.wants(kind, seq):
            return
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._buffer.append(TraceEvent(kind, cycle, seq, data))

    # -- inspection --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (recorded minus retained)."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> List[TraceEvent]:
        """Retained events sorted by cycle (stable: emission order ties)."""
        return sorted(self._buffer, key=lambda e: e.cycle)

    def events_for(self, seq: int) -> List[TraceEvent]:
        """The lifetime of one instruction, in cycle order."""
        return [e for e in self.events() if e.seq == seq]

    def as_dicts(self) -> List[dict]:
        return [e.as_dict() for e in self.events()]
