"""Instruction-aligned diff of two cores' schedules on the same trace.

Both cores run the *same* dynamic trace, so their recorded schedules
(``run(..., record_schedule=True)``) commit the same instructions with
the same sequence numbers; aligning on ``seq`` compares, instruction by
instruction, *when* each core issued the same work.  The interesting
quantity is the **issue delay** — ``issue_at`` minus the cycle the
instruction's operands were ready on that core (recomputed from the
schedule via :func:`repro.obs.critpath.build_graph`) — because it
isolates scheduling quality from dataflow: an instruction with a large
delay on core A and none on core B marks exactly where A's scheduler
fell behind.

:func:`diff_schedules` returns per-instruction deltas plus two ranked
lists: ``fell_behind`` (A delayed issue where B did not — on
``casino`` vs ``ooo``, the head-of-queue stalls the cascade failed to
hide) and ``caught_up`` (the reverse), each naming the specific
instruction (seq, opcode, pc) with both cores' issue/delay cycles, and a
per-opcode aggregation for the long tail.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.critpath import DEFAULT_HIT_LATENCY, build_graph


def diff_schedules(sched_a: Sequence[tuple], sched_b: Sequence[tuple],
                   name_a: str = "A", name_b: str = "B",
                   top: int = 10,
                   hit_latency: int = DEFAULT_HIT_LATENCY) -> dict:
    """Compare two schedules of the same trace, instruction by
    instruction.

    Positive ``delta`` means core A held the instruction in its window
    longer than core B did (A fell behind); negative means A issued it
    closer to readiness.  Entries cover the intersection of committed
    sequence numbers (identical for two complete runs of one trace).
    """
    nodes_a = {n.seq: n for n in build_graph(sched_a, hit_latency)}
    nodes_b = {n.seq: n for n in build_graph(sched_b, hit_latency)}
    entries: List[dict] = []
    by_op: Dict[str, dict] = {}
    for seq in sorted(nodes_a.keys() & nodes_b.keys()):
        a, b = nodes_a[seq], nodes_b[seq]
        delay_a = a.issue_at - a.ready
        delay_b = b.issue_at - b.ready
        delta = delay_a - delay_b
        entries.append({
            "seq": seq,
            "op": a.inst.op.name,
            "pc": a.inst.pc,
            "issue_a": a.issue_at,
            "issue_b": b.issue_at,
            "delay_a": delay_a,
            "delay_b": delay_b,
            "delta": delta,
        })
        agg = by_op.setdefault(a.inst.op.name, {
            "count": 0, "delay_a": 0, "delay_b": 0, "delta": 0})
        agg["count"] += 1
        agg["delay_a"] += delay_a
        agg["delay_b"] += delay_b
        agg["delta"] += delta
    fell_behind = sorted((e for e in entries if e["delta"] > 0),
                         key=lambda e: (-e["delta"], e["seq"]))[:top]
    caught_up = sorted((e for e in entries if e["delta"] < 0),
                       key=lambda e: (e["delta"], e["seq"]))[:top]
    total_a = sum(e["delay_a"] for e in entries)
    total_b = sum(e["delay_b"] for e in entries)
    return {
        "core_a": name_a,
        "core_b": name_b,
        "instructions": len(entries),
        "total_delay_a": total_a,
        "total_delay_b": total_b,
        "total_delta": total_a - total_b,
        "fell_behind": fell_behind,
        "caught_up": caught_up,
        "by_op": by_op,
    }


def format_diff_report(diff: dict) -> str:
    """Human-readable ``where A caught up / fell behind`` report."""
    a, b = diff["core_a"], diff["core_b"]
    lines = [
        f"schedule diff: {a} vs {b} over {diff['instructions']} instructions",
        f"  issue-delay cycles: {a}={diff['total_delay_a']} "
        f"{b}={diff['total_delay_b']} (delta {diff['total_delta']:+d})",
    ]

    def block(title: str, rows: List[dict]) -> None:
        lines.append(f"  {title}:")
        if not rows:
            lines.append("    (none)")
            return
        for e in rows:
            lines.append(
                f"    #{e['seq']:<6d} {e['op']:<9s} pc=0x{e['pc']:x}  "
                f"delay {a}={e['delay_a']} {b}={e['delay_b']} "
                f"(delta {e['delta']:+d}; issue {e['issue_a']} vs "
                f"{e['issue_b']})")

    block(f"where {a} fell behind {b}", diff["fell_behind"])
    block(f"where {a} caught up on {b}", diff["caught_up"])
    worst = sorted(diff["by_op"].items(),
                   key=lambda kv: -abs(kv[1]["delta"]))[:6]
    lines.append("  by opcode (total issue-delay delta):")
    for op, agg in worst:
        lines.append(f"    {op:<9s} n={agg['count']:<6d} "
                     f"delta {agg['delta']:+d} "
                     f"({a}={agg['delay_a']} {b}={agg['delay_b']})")
    return "\n".join(lines)
