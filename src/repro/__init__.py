"""repro — a from-scratch reproduction of the CASINO core microarchitecture
(Jeong, Park, Lee & Ro, HPCA 2020).

Public API quick tour::

    from repro import (
        make_ino_config, make_casino_config, make_ooo_config,
        build_core, Runner, suite_profiles,
    )

    runner = Runner()
    profile = suite_profiles("all")[0]
    result = runner.run(make_casino_config(), profile)
    print(result.ipc, result.energy.total_j)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every figure.
"""

from repro.common.params import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    MemoryConfig,
    SimConfig,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.common.config_io import dump_core_config, load_core_config
from repro.common.stats import Stats, geomean
from repro.cores import build_core
from repro.harness.runner import RunResult, Runner
from repro.power.accounting import build_power_model
from repro.workloads.suite import SUITE, get_profile, suite_profiles

__version__ = "1.0.0"

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "MemoryConfig",
    "SimConfig",
    "Stats",
    "geomean",
    "build_core",
    "build_power_model",
    "load_core_config",
    "dump_core_config",
    "Runner",
    "RunResult",
    "SUITE",
    "get_profile",
    "suite_profiles",
    "make_casino_config",
    "make_freeway_config",
    "make_ino_config",
    "make_lsc_config",
    "make_ooo_config",
    "make_specino_config",
]
