"""Pool- and store-backed drop-in runner for the experiment sweep.

Figure drivers call ``runner.run(cfg, profile)`` inside nested loops, so
a naive parallel runner cannot know the job set up front.  The
:class:`PooledRunner` solves this with a **collect pass**: the figure
function runs once in collecting mode, where ``run()`` records the
requested (config, profile) pair and returns an arithmetically benign
placeholder; the recorded grid is then fanned out through the pool (and
result store) in one batch; finally the figure runs again for real
against fully memoised results.  Drivers are pure functions of their
runner, so the second pass is exact — and any pair the collect pass
missed (e.g. behind data-dependent control flow) is simply computed
through the pool on demand during the real pass.

Records coming back from pool workers are produced by the same
``ResilientRunner._simulate`` path the serial sweep uses, so counters are
bit-identical to serial execution — asserted in tests.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.params import CoreConfig
from repro.common.stats import Stats
from repro.harness.resilience import FailureRecord, ResilientRunner
from repro.harness.runner import RunResult
from repro.power.accounting import EnergyReport
from repro.service.jobs import JobSpec, record_to_result
from repro.service.pool import SimulationPool
from repro.workloads.generator import WorkloadProfile


def _placeholder_result(cfg: CoreConfig, profile: WorkloadProfile,
                        accounting: bool) -> RunResult:
    """A benign stand-in for the collect pass: positive IPC, positive
    energy, zeroed accounting — figure arithmetic (ratios, geomeans,
    argmax) runs without dividing by zero, and nothing is simulated."""
    stats = Stats()
    stats.counters["cycles"] = 2000.0
    stats.counters["committed"] = 1000.0
    energy = EnergyReport(dynamic_j=1e-9, leakage_j=1e-9, by_group={},
                          cycles=2000.0, committed=1000.0)
    report = None
    if accounting:
        from repro.obs.accounting import COMPONENTS
        zero = {c: 0 for c in COMPONENTS}
        report = {"components": dict(zero), "fractions": dict(zero),
                  "cpi_stack": dict(zero), "cpi": 2.0,
                  "total_cycles": 0, "committed": 0}
    return RunResult(core=cfg, app=profile.name, stats=stats, energy=energy,
                     accounting=report)


class PooledRunner(ResilientRunner):
    """A ResilientRunner whose simulations execute in pool workers.

    Every cache miss — during a batch flush or an individual ``run()`` —
    is computed by a worker process via the resilient execute path and
    written to the content-addressed store, so a warm-store rerun of a
    whole sweep performs zero simulations.
    """

    def __init__(self, pool: SimulationPool,
                 n_instrs: int = 24_000, warmup: int = 6_000,
                 mem_cfg=None, sanitize: Optional[bool] = None,
                 retries: int = 1, accounting: bool = False,
                 sample_interval: Optional[int] = None) -> None:
        super().__init__(n_instrs=n_instrs, warmup=warmup, mem_cfg=mem_cfg,
                         sanitize=sanitize, retries=retries,
                         accounting=accounting,
                         sample_interval=sample_interval)
        self.pool = pool
        self._collecting = False
        #: result-cache key -> (cfg, profile) recorded by the collect pass.
        self._wanted: Dict[tuple, tuple] = {}

    # -- job plumbing ----------------------------------------------------------

    def _spec(self, cfg: CoreConfig, profile: WorkloadProfile) -> JobSpec:
        return JobSpec.make(cfg, profile, n_instrs=self.n_instrs,
                            warmup=self.warmup, mem_cfg=self.mem_cfg,
                            sanitize=self.sanitize, retries=self.retries,
                            accounting=self.accounting)

    def _adopt(self, key: tuple, cfg: CoreConfig, profile: WorkloadProfile,
               record: dict) -> RunResult:
        """Convert a pool/store record into the memoised RunResult,
        mirroring ResilientRunner's failure bookkeeping."""
        result = record_to_result(record, self._spec(cfg, profile))
        if result.failed:
            self.failures.append(FailureRecord(
                core=cfg.name, app=profile.name, seed=profile.seed,
                error=str(result.error or "failed in pool worker"),
                manifest=record.get("manifest", {})))
            self.excluded.add(profile.name)
        self._results[key] = result
        return result

    # -- the collect pass ------------------------------------------------------

    @contextlib.contextmanager
    def collecting(self):
        """Record requested (cfg, profile) pairs instead of simulating."""
        self._collecting = True
        try:
            yield self._wanted
        finally:
            self._collecting = False

    def flush(self, echo: Optional[Callable[[str], None]] = None) -> int:
        """Batch every collected pair through the pool; returns the number
        of jobs resolved (store hits included)."""
        pairs = [(key, cfg, profile)
                 for key, (cfg, profile) in self._wanted.items()
                 if key not in self._results]
        self._wanted.clear()
        if not pairs:
            return 0
        if echo:
            echo(f"[pool] {len(pairs)} job(s) across "
                 f"{self.pool.n_workers} worker(s)")
        records = self.pool.run_batch(
            [self._spec(cfg, profile) for _, cfg, profile in pairs])
        for (key, cfg, profile), record in zip(pairs, records):
            self._adopt(key, cfg, profile, record)
        return len(pairs)

    def run_figure(self, fn: Callable, profiles: Sequence):
        """Run one figure driver with collect -> flush -> real pass."""
        with self.collecting():
            try:
                fn(self, profiles)
            except Exception:
                # Placeholder arithmetic may trip a driver mid-collect;
                # whatever was recorded up to that point still batches,
                # and the real pass computes stragglers through the pool.
                pass
        # The collect pass must leave no failure bookkeeping behind.
        self.failures.clear()
        self.excluded.clear()
        self.flush()
        return fn(self, profiles)

    # -- execution -------------------------------------------------------------

    def run(self, cfg: CoreConfig, profile: WorkloadProfile) -> RunResult:
        key = self._result_key(cfg, profile)
        if key in self._results:
            return self._results[key]
        if self._collecting:
            self._wanted[key] = (cfg, profile)
            return _placeholder_result(cfg, profile, self.accounting)
        record = self.pool.run_batch([self._spec(cfg, profile)])[0]
        return self._adopt(key, cfg, profile, record)
