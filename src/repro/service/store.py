"""Content-addressed on-disk result store.

Simulations are deterministic, so a result is fully identified by *what*
was simulated: core config, memory config, workload profile (name +
trace seed), trace length, code revision and interpreter build.  The
store hashes exactly that identity (via the provenance manifest digest)
into a key and keeps one canonical JSON record per key on disk:

* **Atomic writes** — records land via unique temp file + ``os.replace``,
  so concurrent writers of the same key are idempotent (records are
  canonically serialised, hence byte-identical) and a reader never sees a
  half-written file.
* **Integrity** — every record envelope embeds a digest of its payload;
  a corrupt entry is detected on read, moved into ``quarantine/`` and
  reported as a miss so the caller recomputes it.
* **Bounded** — an optional LRU entry cap (by access time) evicts the
  coldest records; hits, misses, writes, evictions and quarantines are
  counted for the service ``/stats`` endpoint.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.common.params import MemoryConfig
from repro.engine.soatrace import (
    TraceArrays,
    TraceCodecError,
    encode_trace,
)
from repro.obs.provenance import (
    config_hash,
    git_rev,
    interpreter_tag,
    manifest_digest,
)

#: Version of the on-disk record envelope.  A reader finding any other
#: value treats the entry as a miss (never served across schema changes).
STORE_SCHEMA = 1

#: Version of the *legacy* pickled-trace envelope.  New trace entries are
#: written as binary ``.rtr`` containers (see :class:`TraceStore`); this
#: schema is still validated on read so existing caches keep working.
TRACE_SCHEMA = 1

#: ``format`` tag of a codec-encoded trace wire record (see
#: :func:`trace_wire_record`).
TRACE_WIRE_FORMAT = "rtr"


def result_key(cfg, profile, n_instrs: int, warmup: int,
               mem_cfg: Optional[MemoryConfig] = None) -> str:
    """Content address of one simulation's result.

    Covers everything that can change the simulated counters: both config
    hashes, the app identity (name + trace seed), trace lengths, the code
    revision and the interpreter build.  Deliberately *excludes* read-only
    observers (sanitizer, accounting, samplers) — they never change
    timing, so results computed with or without them share an address.
    """
    identity = {
        "config_hash": config_hash(cfg),
        "mem_hash": config_hash(mem_cfg if mem_cfg is not None
                                else MemoryConfig()),
        "core": cfg.name,
        "app": profile.name,
        "trace_seed": profile.seed,
        "profile_hash": config_hash(profile),
        "n_instrs": n_instrs,
        "warmup": warmup,
        "git_rev": git_rev(),
        "platform": interpreter_tag(),
    }
    return manifest_digest(identity)


def encode_record(key: str, record: dict) -> bytes:
    """Canonical bytes for one store entry (deterministic: same record ->
    same bytes, so racing writers replace files with identical content)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode()).hexdigest()
    envelope = {"schema": STORE_SCHEMA, "key": key, "digest": digest,
                "record": record}
    return (json.dumps(envelope, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def verify_envelope(key: str, envelope) -> Optional[dict]:
    """The validated record inside one store envelope, or None.

    Checks schema, key and the embedded sha256 against the canonical
    re-serialisation of the record — the same validation a local read
    performs, usable on envelopes that arrived over the wire (a replica
    fetching ``GET /results/<key>`` trusts nothing it did not hash)."""
    if not isinstance(envelope, dict):
        return None
    if envelope.get("schema") != STORE_SCHEMA or envelope.get("key") != key:
        return None
    record = envelope.get("record")
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if hashlib.sha256(payload.encode()).hexdigest() != envelope.get("digest"):
        return None
    return record


def _decode_record(key: str, raw: bytes) -> Optional[dict]:
    """The validated record payload, or None when the entry is corrupt."""
    try:
        envelope = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return verify_envelope(key, envelope)


class ResultStore:
    """Content-addressed result store rooted at a directory.

    Entries are sharded two hex characters deep (``ab/abcdef....json``) so
    a big store never puts thousands of files in one directory.
    """

    def __init__(self, root: Union[str, Path],
                 max_entries: Optional[int] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0,
            "evictions": 0, "quarantined": 0,
        }
        #: Report of the most recent :meth:`scrub` (surfaced in /stats).
        self.last_scrub: Optional[dict] = None

    # -- paths -----------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never delete evidence)."""
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.stem}.{n}{path.suffix}"
        try:
            os.replace(path, target)
        except OSError:
            pass
        self.stats["quarantined"] += 1

    # -- read ------------------------------------------------------------------

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Raw validated entry bytes (what ``GET /results/<key>`` serves)."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats["misses"] += 1
            return None
        if _decode_record(key, raw) is None:
            self._quarantine(path)
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        self._touch(path)
        return raw

    def get(self, key: str) -> Optional[dict]:
        """The validated record for ``key``, or None (miss / corrupt)."""
        raw = self.get_bytes(key)
        if raw is None:
            return None
        return _decode_record(key, raw)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    # -- write -----------------------------------------------------------------

    def put(self, key: str, record: dict) -> Path:
        """Atomically write ``record`` under ``key`` and return its path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        data = encode_record(key, record)
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        self.stats["writes"] += 1
        self._evict()
        return path

    # -- maintenance -----------------------------------------------------------

    def _touch(self, path: Path) -> None:
        """Refresh access time so LRU eviction tracks real usage."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _entries(self) -> Iterator[Path]:
        for shard in self.root.iterdir():
            # "traces" is the sibling TraceStore (pickled traces, not
            # result records) when the pool shares traces under this root.
            if shard.name in ("quarantine", "traces") or not shard.is_dir():
                continue
            yield from shard.glob("*.json")

    def keys(self) -> list:
        return sorted(p.stem for p in self._entries())

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _evict(self) -> None:
        if not self.max_entries:
            return
        entries = sorted(self._entries(),
                         key=lambda p: (p.stat().st_mtime, p.name))
        excess = len(entries) - self.max_entries
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
                self.stats["evictions"] += 1
            except OSError:
                pass

    def quarantined_paths(self) -> List[Path]:
        """Every quarantined entry file, sorted (repair/inspection)."""
        qdir = self.root / "quarantine"
        return sorted(qdir.glob("*.json")) if qdir.is_dir() else []

    def scrub(self) -> dict:
        """Full integrity walk: re-hash every envelope in the result
        store (and the sibling trace store, when present), quarantining
        result mismatches and deleting corrupt traces.

        Returns (and remembers, for ``/stats``) a report with per-store
        counts and the keys quarantined by this walk.
        """
        report = {"results": {"checked": 0, "ok": 0, "quarantined": []}}
        for path in list(self._entries()):
            key = path.stem
            report["results"]["checked"] += 1
            try:
                raw = path.read_bytes()
            except OSError:
                continue  # raced with eviction: nothing to verify
            if _decode_record(key, raw) is None:
                self._quarantine(path)
                report["results"]["quarantined"].append(key)
            else:
                report["results"]["ok"] += 1
        traces_root = self.root / "traces"
        if traces_root.is_dir():
            report["traces"] = TraceStore(traces_root).scrub()
        report["quarantine_backlog"] = len(self.quarantined_paths())
        self.last_scrub = report
        return report

    def stats_snapshot(self) -> dict:
        snapshot = dict(self.stats, entries=len(self))
        if self.last_scrub is not None:
            snapshot["last_scrub"] = self.last_scrub
        return snapshot


# -- shared synthetic traces ---------------------------------------------------


def trace_key(profile, n_instrs: int) -> str:
    """Content address of one generated synthetic trace.

    Trace generation is deterministic in the profile fields and the
    requested length, but it is *code*: a generator change must never be
    served a stale trace, so the key also covers the revision and the
    interpreter build (mirroring :func:`result_key`).
    """
    identity = {
        "app": profile.name,
        "trace_seed": profile.seed,
        "profile_hash": config_hash(profile),
        "n_instrs": n_instrs,
        "git_rev": git_rev(),
        "platform": interpreter_tag(),
    }
    return manifest_digest(identity)


def trace_wire_record(key: str, trace: Union[List, bytes]) -> dict:
    """JSON-safe store record carrying one codec-encoded trace.

    Publishing this under ``key`` in a coordinator's :class:`ResultStore`
    makes the trace fetchable through the ordinary cluster replica path:
    :func:`verify_envelope` validates the wire envelope, and the embedded
    binary container re-verifies its own sha256 *and* key on decode — two
    independent integrity checks between the wire and the simulator.
    ``trace`` may be the object stream or pre-encoded container bytes.
    """
    raw = trace if isinstance(trace, bytes) else encode_trace(trace, key)
    return {"kind": "trace", "format": TRACE_WIRE_FORMAT,
            "data": base64.b64encode(raw).decode("ascii")}


def trace_container_from_wire(key: str, record) -> Optional[bytes]:
    """Validated container bytes from one wire trace record, or None.

    Rejects anything that is not a well-formed trace record whose
    embedded container decodes cleanly *for this key* — a record renamed
    onto the wrong key, a bit-flipped payload and a truncated base64
    string all return None rather than raising.
    """
    if (not isinstance(record, dict) or record.get("kind") != "trace"
            or record.get("format") != TRACE_WIRE_FORMAT):
        return None
    data = record.get("data")
    if not isinstance(data, str):
        return None
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError):
        return None
    try:
        TraceArrays.decode(raw, key)
    except TraceCodecError:
        return None
    return raw


class TraceStore:
    """Content-addressed on-disk cache of generated synthetic traces.

    Pool workers each used to regenerate the same (app, seed, n) trace —
    the single most expensive redundant step in a fleet, since every
    worker simulating a suite app pays full generation before its first
    cycle.  This store lets the first worker to generate a trace publish
    it for every other worker process.

    Entries are binary ``.rtr`` containers (the
    :mod:`~repro.engine.soatrace` codec: versioned header + typed columns
    + embedded sha256) — arrays on the wire and on disk, not object
    pickles.  Legacy pickled ``.pkl`` envelopes remain readable.  The
    write idiom matches :class:`ResultStore` — unique temp file +
    ``os.replace`` — so concurrent writers of one key are idempotent and
    readers never see a torn entry.  A corrupt binary entry is moved to
    ``quarantine/`` (evidence, like result records); a corrupt legacy
    pickle is deleted as before — both count as ``corrupt`` misses.

    ``fetch`` (optional) turns the store into a pull-through replica of
    a coordinator, mirroring :class:`~repro.service.cluster.replica.\
ReplicaStore`: on a local miss it is called with the trace key and must
    return the coordinator's wire envelope (``GET /results/<key>``) or
    None; the envelope is validated with :func:`verify_envelope`, the
    embedded container re-verified by the codec, and only then cached
    locally — byte-identical to the authority's entry.
    """

    def __init__(self, root: Union[str, Path],
                 fetch: Optional[Callable[[str], Optional[dict]]] = None,
                 ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._fetch = fetch
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
            "fetched": 0, "quarantined": 0,
        }

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.rtr"

    def _legacy_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt binary entry aside (never delete evidence)."""
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.stem}.{n}{path.suffix}"
        try:
            os.replace(path, target)
        except OSError:
            pass
        self.stats["corrupt"] += 1
        self.stats["quarantined"] += 1

    # -- read ------------------------------------------------------------------

    def _read_binary(self, key: str) -> Optional[List]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            arrays = TraceArrays.decode(raw, key)
        except TraceCodecError:
            self._quarantine(path)
            return None
        return arrays.materialize()

    def _read_legacy(self, key: str) -> Optional[List]:
        path = self._legacy_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            envelope = pickle.loads(raw)
        except Exception:
            envelope = None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != TRACE_SCHEMA
                or envelope.get("key") != key
                or not isinstance(envelope.get("trace"), list)):
            try:
                path.unlink()
            except OSError:
                pass
            self.stats["corrupt"] += 1
            return None
        return envelope["trace"]

    def _fetch_raw(self, key: str) -> Optional[bytes]:
        """Fetch, verify and locally cache one entry's container bytes."""
        envelope = self._fetch(key)
        if envelope is None:
            return None
        record = verify_envelope(key, envelope)
        if record is None:
            return None
        raw = trace_container_from_wire(key, record)
        if raw is None:
            return None
        # The codec is deterministic, so caching the fetched bytes
        # verbatim is exactly what a local re-encode would write.
        self._write_raw(key, raw)
        self.stats["fetched"] += 1
        return raw

    def _fetch_remote(self, key: str) -> Optional[List]:
        raw = self._fetch_raw(key)
        if raw is None:
            return None
        return TraceArrays.decode(raw, key).materialize()

    def get(self, profile, n_instrs: int) -> Optional[List]:
        """The cached trace for (profile, n_instrs), or None on a miss.

        Read order: binary entry, legacy pickle, then the ``fetch`` hook
        (when configured).  Corrupt entries never propagate — they are
        quarantined/deleted and treated as misses.
        """
        key = trace_key(profile, n_instrs)
        trace = self._read_binary(key)
        if trace is None:
            trace = self._read_legacy(key)
        if trace is None and self._fetch is not None:
            trace = self._fetch_remote(key)
        if trace is None:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return trace

    def prefetch(self, profile, n_instrs: int) -> bool:
        """Ensure the entry exists locally without materializing it.

        A cluster node calls this when it leases a job: if the
        coordinator has published the job's input trace, the verified
        container lands in the shared on-disk cache before any pool
        worker starts, so no worker pays generation.  Best-effort — a
        False just means the first worker generates locally as usual.
        """
        key = trace_key(profile, n_instrs)
        if self._path(key).exists() or self._legacy_path(key).exists():
            return True
        if self._fetch is None:
            return False
        return self._fetch_raw(key) is not None

    # -- write -----------------------------------------------------------------

    def _write_raw(self, key: str, data: bytes) -> Path:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        self.stats["writes"] += 1
        return path

    def put(self, profile, n_instrs: int, trace: List) -> Path:
        """Atomically publish a freshly generated trace (binary codec)."""
        key = trace_key(profile, n_instrs)
        return self._write_raw(key, encode_trace(trace, key))

    def wire_record(self, profile, n_instrs: int) -> Optional[dict]:
        """The stored entry as a wire record (what a coordinator would
        publish in its result store for replicas to fetch), or None."""
        key = trace_key(profile, n_instrs)
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        return trace_wire_record(key, raw)

    # -- maintenance -----------------------------------------------------------

    def _validate_legacy(self, path: Path) -> bool:
        key = path.stem
        try:
            envelope = pickle.loads(path.read_bytes())
        except Exception:
            return False
        return (isinstance(envelope, dict)
                and envelope.get("schema") == TRACE_SCHEMA
                and envelope.get("key") == key
                and isinstance(envelope.get("trace"), list))

    def scrub(self) -> dict:
        """Integrity walk: validate every trace entry.

        Binary containers are re-verified through the codec and
        quarantined on mismatch; legacy pickles are validated as before
        and deleted when corrupt (bulk regenerable data).
        """
        report = {"checked": 0, "ok": 0, "deleted": 0, "quarantined": 0}
        for shard in self.root.iterdir():
            if shard.name == "quarantine" or not shard.is_dir():
                continue
            for path in list(shard.glob("*.rtr")):
                report["checked"] += 1
                try:
                    TraceArrays.decode(path.read_bytes(), path.stem)
                except TraceCodecError:
                    self._quarantine(path)
                    report["quarantined"] += 1
                except OSError:
                    continue  # raced with eviction: nothing to verify
                else:
                    report["ok"] += 1
            for path in list(shard.glob("*.pkl")):
                report["checked"] += 1
                if self._validate_legacy(path):
                    report["ok"] += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    pass
                self.stats["corrupt"] += 1
                report["deleted"] += 1
        return report

    def stats_snapshot(self) -> dict:
        return dict(self.stats)
