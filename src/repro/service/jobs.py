"""Job specs and the worker-side execute function.

A :class:`JobSpec` is the picklable, JSON-able description of one
simulation: full core/memory/profile field dicts plus trace lengths and
retry policy.  :func:`execute_job` runs one spec inside a worker process
through a (per-process, reused) :class:`ResilientRunner` — so pool
workers get retry-with-reseed, failure capture and the bounded trace
cache for free — and returns a **deterministic** result record: no wall
times or per-worker state, so two workers computing the same spec write
byte-identical store entries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.params import CoreConfig, MemoryConfig
from repro.common.stats import Stats
from repro.harness.runner import RunResult
from repro.power.accounting import EnergyReport
from repro.workloads.generator import WorkloadProfile

#: Version of the result-record layout carried inside store entries.
RECORD_SCHEMA = 1


@dataclass
class JobSpec:
    """One simulation request, fully self-describing and picklable."""

    core: dict                      # dataclasses.asdict(CoreConfig)
    profile: dict                   # dataclasses.asdict(WorkloadProfile)
    n_instrs: int = 24_000
    warmup: int = 6_000
    mem: Optional[dict] = None      # dataclasses.asdict(MemoryConfig)
    sanitize: Optional[bool] = None
    retries: int = 1
    accounting: bool = False
    #: Test hook: makes the *worker process* exit hard before simulating
    #: while the delivery attempt is <= ``test_kill`` (so ``True``/1
    #: kills only the first delivery and the job completes on
    #: redelivery; a large value is a poison job that dead-letters).
    #: Ignored when executing serially in the parent.
    test_kill: int = 0
    #: Test hook: on the *first* delivery only, stall for this many
    #: seconds before heartbeats start, so the parent's lease provably
    #: expires and the reclaim path redelivers the job.
    test_stall_s: float = 0.0
    #: Telemetry trace id minted at submit.  Pure observability: it is
    #: NOT part of :meth:`key`, so traced and untraced submissions of
    #: the same simulation share one store entry, and old journaled spec
    #: dicts (which lack the field) still rebuild via ``JobSpec(**d)``.
    trace_id: Optional[str] = None

    @classmethod
    def make(cls, cfg: CoreConfig, profile: WorkloadProfile,
             n_instrs: int = 24_000, warmup: int = 6_000,
             mem_cfg: Optional[MemoryConfig] = None, **kw) -> "JobSpec":
        return cls(core=dataclasses.asdict(cfg),
                   profile=dataclasses.asdict(profile),
                   n_instrs=n_instrs, warmup=warmup,
                   mem=dataclasses.asdict(mem_cfg) if mem_cfg else None,
                   **kw)

    # -- materialised views ----------------------------------------------------

    def core_config(self) -> CoreConfig:
        return CoreConfig(**self.core)

    def workload_profile(self) -> WorkloadProfile:
        return WorkloadProfile(**self.profile)

    def memory_config(self) -> Optional[MemoryConfig]:
        if self.mem is None:
            return None
        mem = dict(self.mem)
        from repro.common.params import CacheConfig, DramConfig
        for level in ("l1i", "l1d", "l2"):
            if isinstance(mem.get(level), dict):
                mem[level] = CacheConfig(**mem[level])
        if isinstance(mem.get("dram"), dict):
            mem["dram"] = DramConfig(**mem["dram"])
        return MemoryConfig(**mem)

    def key(self) -> str:
        from repro.service.store import result_key
        return result_key(self.core_config(), self.workload_profile(),
                          self.n_instrs, self.warmup, self.memory_config())

    def label(self) -> str:
        return f"{self.core.get('name')}/{self.profile.get('name')}"


# -- worker-side execution ---------------------------------------------------

#: Per-process runner cache, keyed by the runner-shaping spec fields.
#: Reusing the runner across jobs keeps the (bounded, LRU) trace cache
#: warm inside a long-lived worker.
_RUNNERS: Dict[Tuple, "object"] = {}

#: Set by the pool's worker main so test hooks only fire inside workers.
IN_WORKER = False

#: Cross-process trace cache (service.store.TraceStore), set by the
#: pool's worker main when the pool shares traces.  All of a process's
#: runners share it, so the first worker to generate an (app, seed, n)
#: trace publishes it for the whole fleet.
TRACE_STORE = None

#: Worker-local metrics registry (obs.telemetry.MetricsRegistry), set by
#: the pool's worker main when telemetry is enabled.  Cumulative
#: snapshots ride back on result messages and are merged parent-side —
#: the registry observes only host-side timing, never simulated state,
#: so result records stay byte-identical with telemetry on or off.
TELEMETRY = None


def telemetry_snapshot() -> Optional[dict]:
    """This process's cumulative metrics snapshot (None when disabled)."""
    if TELEMETRY is None:
        return None
    return TELEMETRY.snapshot()


def _runner_for(spec: JobSpec):
    from repro.harness.resilience import ResilientRunner
    key = (spec.n_instrs, spec.warmup, spec.sanitize, spec.retries,
           spec.accounting,
           None if spec.mem is None else tuple(sorted(map(str, spec.mem.items()))))
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = ResilientRunner(
            n_instrs=spec.n_instrs, warmup=spec.warmup,
            mem_cfg=spec.memory_config(), sanitize=spec.sanitize,
            retries=spec.retries, accounting=spec.accounting,
            trace_store=TRACE_STORE)
        _RUNNERS[key] = runner
    return runner


def trace_evictions() -> int:
    """Total trace-cache evictions across this process's runners."""
    return sum(r.trace_evictions for r in _RUNNERS.values())


def trace_store_stats() -> Optional[dict]:
    """This process's shared-trace-cache counters (None when unshared)."""
    if TRACE_STORE is None:
        return None
    return TRACE_STORE.stats_snapshot()


def result_record(res: RunResult, spec: JobSpec) -> dict:
    """Deterministic, JSON-able record of one RunResult.

    Everything volatile (wall time, worker identity) stays out; the
    manifest contributes only identity + counter-digest fields.
    """
    from repro.obs.provenance import run_manifest
    profile = spec.workload_profile()
    record = {
        "schema": RECORD_SCHEMA,
        "core": res.core.name,
        "app": res.app,
        "failed": bool(res.failed),
        "error": res.error,
        "n_instrs": spec.n_instrs,
        "warmup": spec.warmup,
        "ipc": res.ipc,
        # int/float-ness is preserved: the counter digest of the
        # reconstructed Stats must match the live one bit for bit.
        "counters": {k: (v if isinstance(v, int) else float(v))
                     for k, v in res.stats.counters.items()},
        "energy": {
            "dynamic_j": res.energy.dynamic_j,
            "leakage_j": res.energy.leakage_j,
            "by_group": dict(res.energy.by_group),
            "cycles": res.energy.cycles,
            "committed": res.energy.committed,
        },
        "manifest": run_manifest(res.core, profile, stats=res.stats),
    }
    if res.accounting is not None:
        record["accounting"] = res.accounting
    return record


def record_to_result(record: dict, spec: JobSpec) -> RunResult:
    """Rebuild a RunResult (Stats, EnergyReport) from a stored record."""
    stats = Stats()
    for name, value in record.get("counters", {}).items():
        stats.counters[name] = value
    energy = record.get("energy", {})
    report = EnergyReport(
        dynamic_j=energy.get("dynamic_j", 0.0),
        leakage_j=energy.get("leakage_j", 0.0),
        by_group=dict(energy.get("by_group", {})),
        cycles=energy.get("cycles", stats.cycles),
        committed=energy.get("committed", stats.committed))
    return RunResult(core=spec.core_config(), app=record.get("app", ""),
                     stats=stats, energy=report,
                     failed=bool(record.get("failed")),
                     error=record.get("error"),
                     accounting=record.get("accounting"))


def failure_record(spec: JobSpec, error: str, status: str = "error") -> dict:
    """Placeholder record for a job the pool could not complete (worker
    death, timeout, cancellation).  Never written to the store."""
    return {"schema": RECORD_SCHEMA, "core": spec.core.get("name"),
            "app": spec.profile.get("name"), "failed": True,
            "error": error, "status": status,
            "n_instrs": spec.n_instrs, "warmup": spec.warmup,
            "ipc": 0.0, "counters": {}, "energy": {}}


def execute_job(spec: JobSpec, attempt: int = 1) -> dict:
    """Run one spec (in this process) and return its result record.

    ``SimulationError`` never escapes: the underlying ResilientRunner
    retries with reseeded traces and degrades to a ``failed`` record.
    ``attempt`` is the pool's delivery count (1 on first delivery); the
    fault-injection hooks key off it so a transiently-faulty job
    succeeds once redelivered while a poison job keeps failing.
    """
    if IN_WORKER and attempt <= int(spec.test_kill or 0):
        import os
        os._exit(43)
    runner = _runner_for(spec)
    if TELEMETRY is None:
        res = runner.run(spec.core_config(), spec.workload_profile())
    else:
        import time
        t0 = time.perf_counter()
        res = runner.run(spec.core_config(), spec.workload_profile())
        elapsed = time.perf_counter() - t0
        TELEMETRY.histogram(
            "repro_worker_sim_seconds",
            "Wall time one worker spent simulating a job").observe(elapsed)
        TELEMETRY.counter(
            "repro_worker_jobs_total",
            "Jobs executed by workers, by outcome",
            outcome="failed" if res.failed else "ok").inc()
    runner.drain()  # failure bookkeeping is per-job, not per-process
    return result_record(res, spec)
