"""Simulation-as-a-service subsystem.

Composes the provenance layer (stable identity hashes), the resilience
layer (retry-with-reseed, failure capture) and ``multiprocessing`` into a
serving stack:

* :mod:`repro.service.store` — content-addressed on-disk result store
  keyed by the provenance manifest digest, with atomic writes, integrity
  checking/quarantine and hit/miss/eviction stats.
* :mod:`repro.service.jobs` — picklable job specs, the worker-side
  execute function and the deterministic result-record schema.
* :mod:`repro.service.pool` — worker pool fanning (core, app, config)
  jobs across CPUs with timeouts, cancellation and graceful degradation
  to serial execution when workers die.
* :mod:`repro.service.runner` — a ``ResilientRunner`` that transparently
  routes simulations through the pool + store (used by the sweep driver).
* :mod:`repro.service.server` — stdlib HTTP JSON API with a bounded
  priority queue and explicit 429 backpressure.
* :mod:`repro.service.client` — ``urllib``-based client behind the
  ``python -m repro submit`` CLI verb.

Everything is stdlib-only and deterministic: a record computed by a pool
worker is byte-identical to one computed serially, which is what makes
the content-addressed cache sound.
"""

from repro.service.jobs import JobSpec, execute_job, record_to_result
from repro.service.pool import SimulationPool
from repro.service.runner import PooledRunner
from repro.service.store import ResultStore, result_key

__all__ = [
    "JobSpec",
    "PooledRunner",
    "ResultStore",
    "SimulationPool",
    "execute_job",
    "record_to_result",
    "result_key",
]
