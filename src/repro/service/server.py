"""Stdlib HTTP JSON API in front of the pool + store.

Endpoints
---------
``POST /jobs``            submit one job (``{"core": ..., "app": ...}``)
                          or a batch (``{"jobs": [...]}``); responds 202
                          with one entry per job, **429** with a
                          ``Retry-After`` header when the bounded queue
                          is full (explicit backpressure — clients retry,
                          the server never buffers unboundedly), or
                          **503** + ``Retry-After`` while draining.
``GET /jobs/<id>``        job status: queued | running | done | failed
                          | dead_letter
``GET /jobs/<id>/trace``  the job's span: trace id + timestamped
                          lifecycle events (submit → terminal),
                          surviving crash/restart via the journal
``GET /jobs``             list jobs (``?status=`` filters; dead-letter
                          inspection is ``/jobs?status=dead_letter``)
``GET /results/<key>``    the raw store record for a result key
``GET /healthz``          liveness: ``ok`` | ``draining`` (+ workers)
``GET /stats``            versioned (``schema``) snapshot: store, pool
                          (namespaced), queue, jobs by status, journal,
                          telemetry, recovery + scrub summaries
``GET /metrics``          Prometheus text exposition of the fabric-wide
                          metrics registry (parent + merged workers)
``POST /scrub``           integrity walk of the result + trace stores

Submissions land in a bounded **priority queue** (lower number = served
first; ties FIFO).  A single dispatcher thread moves jobs from that
queue into the multiprocessing pool — keeping at most ``2 x workers``
jobs in flight so late high-priority submissions overtake queued
low-priority ones — and resolves completions back into the job registry.
A job whose key is already in the store completes at submission time
without ever touching the queue.

Durability: given a :class:`~repro.service.journal.Journal` the service
writes every job-state transition through it *before* acknowledging, so
a restarted server replays the journal, re-registers every acknowledged
job, completes those whose results already landed in the store (zero
re-simulation) and re-queues the rest.  SIGTERM/SIGINT trigger a
graceful drain: new submissions get 503, leased jobs run to completion
up to a deadline, and the queued remainder stays journaled for the next
start.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.common.params import CoreConfig
from repro.obs.telemetry import (MetricsRegistry, SpanLog, configure_logging,
                                 fold_spans, get_logger, log_event,
                                 merge_snapshots, new_trace_id,
                                 render_prometheus)
from repro.service.journal import TERMINAL_STATES, Journal, fold_jobs
from repro.service.jobs import JobSpec
from repro.service.pool import SimulationPool
from repro.service.store import ResultStore

#: Priority used when a submission does not specify one.
DEFAULT_PRIORITY = 100

#: Version tag of the ``GET /stats`` payload.  Schema 2 namespaced the
#: pool snapshot (``counters`` / ``trace`` / topology keys) and added
#: the ``telemetry`` section; ``store``/``queue``/``jobs``/``service``
#: kept their schema-1 shapes.
STATS_SCHEMA = 2

_LOG = get_logger("service.server")

#: Hint sent with 429 (queue full) and 503 (draining) responses.
RETRY_AFTER_S = 2

#: Seconds between journal heartbeat records while jobs are in flight.
HEARTBEAT_JOURNAL_S = 1.0


class QueueFullError(Exception):
    """The bounded submission queue is at capacity."""


class DrainingError(Exception):
    """The service is draining and accepts no new jobs."""


class BadJobError(Exception):
    """The submitted job spec is invalid."""


def _core_factories() -> dict:
    from repro.__main__ import _CORES
    return _CORES


def spec_from_request(body: dict) -> JobSpec:
    """Validate one submitted job object into a JobSpec.

    ``core`` is a known core name or a full config object; ``app`` is a
    suite application name or ``profile`` a full profile object.
    """
    if not isinstance(body, dict):
        raise BadJobError("job must be a JSON object")
    core = body.get("core", "casino")
    if isinstance(core, str):
        factories = _core_factories()
        if core not in factories:
            raise BadJobError(
                f"unknown core {core!r}; valid: {', '.join(sorted(factories))}")
        cfg = factories[core]()
    elif isinstance(core, dict):
        try:
            from repro.common.config_io import core_config_from_dict
            cfg = core_config_from_dict(core)
        except Exception as exc:
            raise BadJobError(f"bad core config: {exc}")
    else:
        raise BadJobError("core must be a name or a config object")
    profile = body.get("profile")
    if profile is None:
        app = body.get("app")
        if not isinstance(app, str):
            raise BadJobError("job needs an 'app' name or a 'profile' object")
        from repro.workloads.suite import SUITE
        if app not in SUITE:
            raise BadJobError(f"unknown app {app!r}")
        profile_obj = SUITE[app]
    else:
        try:
            from repro.workloads.generator import WorkloadProfile
            profile_obj = WorkloadProfile(**profile)
        except (TypeError, ValueError) as exc:
            raise BadJobError(f"bad profile: {exc}")
    try:
        n_instrs = int(body.get("n", body.get("n_instrs", 24_000)))
        warmup = int(body.get("warmup", 6_000))
    except (TypeError, ValueError):
        raise BadJobError("'n' and 'warmup' must be integers")
    try:
        # Fault-injection hooks (chaos tests and the cluster bench's
        # stall workload submit these over HTTP; neither is part of the
        # result key, so they never pollute the store).
        test_kill = int(body.get("test_kill", 0))
        test_stall_s = float(body.get("test_stall_s", 0.0))
    except (TypeError, ValueError):
        raise BadJobError("'test_kill' and 'test_stall_s' must be numeric")
    return JobSpec(core=dataclasses.asdict(cfg),
                   profile=dataclasses.asdict(profile_obj),
                   n_instrs=n_instrs, warmup=warmup,
                   sanitize=bool(body["sanitize"]) if "sanitize" in body
                   else None,
                   retries=int(body.get("retries", 1)),
                   accounting=bool(body.get("accounting", True)),
                   test_kill=test_kill, test_stall_s=test_stall_s)


class SimulationService:
    """Job registry + bounded priority queue + dispatcher thread.

    With a journal, every acknowledged state transition is durable:
    ``submitted`` is written before the 202 leaves the building, so a
    crash never loses an acknowledged job — :meth:`recover` rebuilds the
    registry and queue on the next start.
    """

    def __init__(self, pool: SimulationPool, store: ResultStore,
                 max_queue: int = 64,
                 journal: Optional[Journal] = None,
                 telemetry: bool = True) -> None:
        self.pool = pool
        self.store = store
        self.max_queue = max_queue
        self.journal = journal
        #: Service-side metrics registry + per-job span log.  Telemetry
        #: is a pure observer of the service fabric: disabling it
        #: changes no job outcome and no simulation counter (tested).
        self.telemetry: Optional[MetricsRegistry] = \
            MetricsRegistry() if telemetry else None
        self.spans: Optional[SpanLog] = SpanLog() if telemetry else None
        if telemetry:
            t = self.telemetry
            self._m_submitted = t.counter(
                "repro_jobs_submitted_total", "Jobs accepted at POST /jobs")
            self._m_cached = t.counter(
                "repro_jobs_cached_total",
                "Submissions served instantly from the result store")
            self._m_queue_wait = t.histogram(
                "repro_queue_wait_seconds",
                "Seconds between submit ack and pool lease")
            self._m_run = t.histogram(
                "repro_job_run_seconds",
                "Seconds between pool lease and terminal state")
            # Span events only the pool can see flow back through this
            # hook (started / simulated / stored / lease reclaims ...).
            pool.on_event = self._pool_event
        self.queue: "queue.PriorityQueue[Tuple[int, int, str]]" = \
            queue.PriorityQueue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._jobs: Dict[str, dict] = {}
        self._seq = 0
        self._pool_ids: Dict[int, str] = {}
        self._stop = threading.Event()
        self._draining = False
        self._drained = threading.Event()
        self._last_hb = 0.0
        self.recovery: Dict[str, int] = {
            "replayed": 0, "recovered_done": 0, "recovered_terminal": 0,
            "requeued": 0, "lost": 0,
        }
        self.scrub_report: Optional[dict] = None
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="dispatcher", daemon=True)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self.journal is not None:
            self.recover()
        self.pool.start()
        self._dispatcher.start()

    def stop(self) -> None:
        self._stop.set()
        self._dispatcher.join(timeout=5.0)
        self.pool.close()
        if self.journal is not None:
            self.journal.close()

    # -- graceful drain --------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting and dispatching; in-flight jobs keep running."""
        if self._draining:
            return
        self._draining = True
        self._journal_append("drain")

    def drain(self, timeout_s: Optional[float] = 30.0) -> bool:
        """Wait for in-flight (leased) jobs to finish; returns True when
        the pool emptied within the deadline.  Queued-but-undispatched
        jobs are left journaled for the next start."""
        self.begin_drain()
        if not self._dispatcher.is_alive():
            return not self._pool_ids
        return self._drained.wait(timeout=timeout_s)

    # -- journal ---------------------------------------------------------------

    def _journal_append(self, type_: str, **fields) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(type_, **fields)
        except OSError:  # journalling must never take down the service
            pass

    # -- telemetry -------------------------------------------------------------

    def _span(self, job_id: str, event: str, trace: Optional[str] = None,
              ts: Optional[float] = None, durable: bool = False,
              **attrs) -> Optional[dict]:
        """Append one span event; with ``durable`` also journal it.

        Lifecycle transitions (submitted/leased/terminal) already ride
        their own journal records — enriched with ``ts``/``trace`` so
        replay re-synthesises their span events — and must NOT be
        journaled again here.  ``durable`` is for events with no
        lifecycle record (``started``, ``stored``, lease annotations).
        Returns the stored event (``None`` when telemetry is off or a
        terminal event was deduplicated), so callers can reuse its
        timestamp for the matching journal record.
        """
        if self.spans is None:
            return None
        rec = self.spans.append(job_id, event, trace=trace, ts=ts, **attrs)
        if rec is not None and durable:
            self._journal_append("span", job=job_id, ev=event,
                                 ts=rec["ts"], trace=trace, **attrs)
        return rec

    def _pool_event(self, pool_id: int, event: str, **attrs) -> None:
        """Translate pool-side span events (pool job id) to service jobs."""
        job_id = self._pool_ids.get(pool_id)
        if job_id is None:
            return
        self._span(job_id, event, durable=True, **attrs)
        if self.telemetry is not None and event in (
                "lease_expired", "redelivered", "worker_died", "timeout"):
            self.telemetry.counter(
                "repro_lease_events_total",
                "Lease reclaims, redeliveries and worker deaths by kind",
                event=event).inc()
            log_event(_LOG, f"service.{event}", job=job_id, **attrs)

    def recover(self) -> None:
        """Replay the journal: re-register every acknowledged job.

        Jobs already terminal keep their state.  Non-terminal jobs whose
        result key is meanwhile in the store complete as ``done`` with
        zero re-simulation (the content-addressed store is the dedup
        authority — this also heals a torn/corrupt terminal record).
        Everything else re-enters the queue at its original priority.
        Afterwards the journal is compacted down to the live jobs.
        """
        assert self.journal is not None
        records = list(self.journal.records())
        folded = fold_jobs(records)
        if self.spans is not None:
            # Replay span history first: SpanLog's terminal-event
            # idempotence then guarantees the store-dedup path below can
            # never append a *second* terminal event to a replayed span.
            fold_spans(records, self.spans)
        live: list = []
        for job_id, state in folded.items():
            self.recovery["replayed"] += 1
            match = re.fullmatch(r"job-(\d+)", job_id)
            if match:
                self._seq = max(self._seq, int(match.group(1)))
            entry = {"id": job_id, "key": state["key"],
                     "priority": state["priority"], "recovered": True}
            spec_dict = state.get("spec")
            spec = None
            if isinstance(spec_dict, dict):
                try:
                    spec = JobSpec(**spec_dict)
                except TypeError:
                    spec = None
            if spec is not None:
                entry["core"] = spec.core.get("name")
                entry["app"] = spec.profile.get("name")
            if state["status"] in TERMINAL_STATES:
                entry["status"] = state["status"]
                if state["status"] == "done":
                    entry["cached"] = state["cached"]
                    self.recovery["recovered_done"] += 1
                else:
                    entry["error"] = state.get("error")
                    self.recovery["recovered_terminal"] += 1
                self._jobs[job_id] = entry
                continue
            key = state["key"]
            if key is not None and self.store.get(key) is not None:
                # The simulation already completed; only the terminal
                # journal record was lost.  Store dedup: done, no rerun.
                entry["status"] = "done"
                entry["cached"] = True
                self._jobs[job_id] = entry
                self.recovery["recovered_done"] += 1
                self._span(job_id, "completed", trace=state.get("trace"),
                           cached=True, recovered=True)
                continue
            if spec is None:
                entry["status"] = "failed"
                entry["error"] = "lost on recovery: spec unrecoverable"
                self._jobs[job_id] = entry
                self.recovery["lost"] += 1
                continue
            entry["status"] = "queued"
            entry["spec"] = spec
            try:
                self.queue.put_nowait((state["priority"], self._seq + len(live),
                                       job_id))
            except queue.Full:
                entry["status"] = "failed"
                entry["error"] = "lost on recovery: queue full"
                self._jobs[job_id] = entry
                self.recovery["lost"] += 1
                continue
            self._jobs[job_id] = entry
            self.recovery["requeued"] += 1
            self._span(job_id, "recovered", trace=state.get("trace"))
            live.append({"t": "submitted", "job": job_id, "key": key,
                         "spec": spec_dict, "priority": state["priority"],
                         "ts": state.get("ts"), "trace": state.get("trace")})
        if self.spans is not None:
            # Terminal jobs leave the registry at compaction (the
            # journal tracks open work), but their spans stay queryable
            # across restarts: write each one's events back as ``span``
            # records.  Requeued jobs keep only their ``submitted``
            # record — their in-flight history is obsolete once they
            # re-run.
            requeued = {s["job"] for s in live}
            for job_id, span in self.spans.spans().items():
                if job_id in requeued:
                    continue
                for event in span["events"]:
                    attrs = {k: v for k, v in event.items()
                             if k not in ("ev", "ts")}
                    live.append({"t": "span", "job": job_id,
                                 "ev": event["ev"], "ts": event["ts"],
                                 "trace": span.get("trace"), **attrs})
        self.journal.compact(live)
        log_event(_LOG, "service.recovered", **self.recovery)

    # -- submission (called from HTTP handler threads) -------------------------

    def submit(self, spec: JobSpec,
               priority: int = DEFAULT_PRIORITY) -> dict:
        if self._draining:
            raise DrainingError("service is draining; retry against the "
                                "next instance")
        key = spec.key()
        traced = self.spans is not None
        trace = new_trace_id() if traced else None
        now = round(time.time(), 6)
        if traced:
            spec.trace_id = trace
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq}"
            entry = {"id": job_id, "status": "queued", "key": key,
                     "core": spec.core.get("name"),
                     "app": spec.profile.get("name"),
                     "priority": priority, "spec": spec,
                     "_ts_submitted": now}
            if traced:
                entry["trace"] = trace
            if self.telemetry is not None:
                self._m_submitted.inc()
            # The get() counts the cache-served submission as a store
            # hit and refreshes the entry's LRU recency; on a miss the
            # pool consults (and counts) the store itself.
            if key in self.store and self.store.get(key) is not None:
                entry["status"] = "done"
                entry["cached"] = True
                self._jobs[job_id] = entry
                # One record: a cached submission folds straight to done
                # — and its ts/trace let replay re-synthesise the whole
                # four-event span without extra appends on the hot path.
                self._journal_append("submitted", job=job_id, key=key,
                                     priority=priority, cached=True,
                                     ts=now, trace=trace)
                self._span(job_id, "submitted", trace=trace, ts=now,
                           priority=priority)
                self._span(job_id, "journaled", ts=now)
                self._span(job_id, "store_hit", ts=now)
                self._span(job_id, "completed", ts=now, cached=True)
                if self.telemetry is not None:
                    self._m_cached.inc()
                    self.telemetry.counter(
                        "repro_jobs_terminal_total",
                        "Jobs reaching a terminal state, by status",
                        status="done").inc()
                return self._public(entry)
            self._jobs[job_id] = entry
            # Journal *before* acknowledging: a crash after the 202 can
            # never lose this job.
            self._journal_append("submitted", job=job_id, key=key,
                                 spec=dataclasses.asdict(spec),
                                 priority=priority, ts=now, trace=trace)
            self._span(job_id, "submitted", trace=trace, ts=now,
                       priority=priority)
            self._span(job_id, "journaled")
        try:
            self.queue.put_nowait((priority, self._seq, job_id))
        except queue.Full:
            with self._lock:
                del self._jobs[job_id]
            self._journal_append("failed", job=job_id,
                                 error="rejected: queue full",
                                 ts=round(time.time(), 6))
            self._span(job_id, "failed", error="rejected: queue full")
            if self.telemetry is not None:
                self.telemetry.counter(
                    "repro_jobs_terminal_total",
                    "Jobs reaching a terminal state, by status",
                    status="failed").inc()
            raise QueueFullError(
                f"queue full ({self.max_queue} jobs); retry later")
        return self._public(entry)

    def job(self, job_id: str) -> Optional[dict]:
        with self._lock:
            entry = self._jobs.get(job_id)
            return self._public(entry) if entry else None

    def jobs_snapshot(self, status: Optional[str] = None) -> list:
        """Public views of every job, optionally filtered by status."""
        with self._lock:
            return [self._public(entry) for entry in self._jobs.values()
                    if status is None or entry["status"] == status]

    @staticmethod
    def _public(entry: dict) -> dict:
        public = {k: v for k, v in entry.items()
                  if k != "spec" and not k.startswith("_")}
        if entry["status"] in ("done", "failed") and entry.get("key"):
            public["result_url"] = f"/results/{entry['key']}"
        return public

    def scrub(self, repair: bool = False) -> dict:
        """Integrity-walk the result + trace stores (see store.scrub).

        With ``repair``, reconstructable quarantined entries re-enter
        the normal submission path as new jobs (the dispatcher owns the
        pool — repairs ride the same queue as everything else); the
        report lists their job ids for the caller to poll.
        """
        report = self.store.scrub()
        if repair:
            from repro.service.scrub import quarantined_specs
            repairable, unrepairable = quarantined_specs(self.store)
            requeued = []
            for _, spec in repairable:
                try:
                    requeued.append(self.submit(spec)["id"])
                except (QueueFullError, DrainingError):
                    break
            report["repair"] = {"requeued": requeued,
                                "unrepairable": unrepairable}
        self.scrub_report = report
        return report

    def stats(self) -> dict:
        """Versioned stats payload (see :data:`STATS_SCHEMA`).

        Schema 2 folds the pool's flat snapshot into namespaced keys —
        monotonic ``counters``, the ``trace`` cache section and topology
        fields (``workers``/``degraded``/``pending``/``leases``) — and
        adds a ``telemetry`` summary, instead of schema 1's flat merge.
        """
        with self._lock:
            by_status: Dict[str, int] = {}
            for entry in self._jobs.values():
                by_status[entry["status"]] = \
                    by_status.get(entry["status"], 0) + 1
        pool = self.pool.stats_snapshot()
        pool_ns = {
            "workers": pool.pop("workers"),
            "degraded": pool.pop("degraded"),
            "pending": pool.pop("pending"),
            "leases": pool.pop("leases"),
            "trace": {"evictions": pool.pop("trace_evictions"),
                      "store": pool.pop("trace_store")},
            "counters": pool,
        }
        stats = {
            "schema": STATS_SCHEMA,
            "store": self.store.stats_snapshot(),
            "pool": pool_ns,
            "queue": {"depth": self.queue.qsize(), "max": self.max_queue},
            "jobs": by_status,
            "service": {"draining": self._draining,
                        "recovery": dict(self.recovery)},
            "telemetry": {"enabled": self.telemetry is not None},
        }
        if self.telemetry is not None:
            stats["telemetry"].update(
                spans=len(self.spans),
                workers_reporting=len(self.pool.telemetry_snapshots()))
        if self.journal is not None:
            stats["journal"] = self.journal.stats_snapshot()
        if self.scrub_report is not None:
            stats["scrub"] = self.scrub_report
        return stats

    def metrics_text(self) -> Optional[str]:
        """Prometheus text exposition of the whole fabric, or ``None``
        when telemetry is disabled.

        Scrape-time state lands in gauges (queue depth, leases, worker
        count, gauge mirrors of the store/pool/journal counter dicts);
        the per-worker registries merge in losslessly, so worker-side
        series (``repro_worker_sim_seconds`` ...) cover every worker
        that ever reported, dead ones included.
        """
        if self.telemetry is None:
            return None
        t = self.telemetry
        t.gauge("repro_queue_depth",
                "Jobs waiting in the submission queue").set(
            self.queue.qsize())
        t.gauge("repro_jobs_inflight",
                "Jobs leased to the pool, not yet terminal").set(
            len(self._pool_ids))
        t.gauge("repro_workers_alive",
                "Live pool worker processes").set(
            self.pool.alive_workers())
        t.gauge("repro_service_draining",
                "1 while draining, else 0").set(
            1.0 if self._draining else 0.0)
        t.gauge("repro_spans_tracked",
                "Jobs with an in-memory span").set(len(self.spans))
        mirrors = [("store", self.store.stats_snapshot()),
                   ("pool", self.pool.stats_snapshot())]
        if self.journal is not None:
            mirrors.append(("journal", self.journal.stats_snapshot()))
        for prefix, snapshot in mirrors:
            for name, value in sorted(snapshot.items()):
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                t.gauge(f"repro_{prefix}_{name}",
                        f"Gauge mirror of the {prefix} counter "
                        f"{name!r}").set(value)
        merged = merge_snapshots([t.snapshot()]
                                 + self.pool.telemetry_snapshots())
        return render_prometheus(merged)

    def job_trace(self, job_id: str) -> Optional[dict]:
        """The span of one job (``GET /jobs/<id>/trace``), or ``None``.

        Served from the SpanLog, not the job registry: spans of jobs
        compacted out of the registry (terminal before a restart) stay
        queryable.
        """
        if self.spans is None:
            return None
        return self.spans.trace(job_id)

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        max_in_flight = max(2 * self.pool.n_workers, 2)
        while not self._stop.is_set():
            moved = False
            if not self._draining and len(self._pool_ids) < max_in_flight:
                try:
                    _, _, job_id = self.queue.get(timeout=0.05)
                    moved = True
                except queue.Empty:
                    pass
                if moved:
                    with self._lock:
                        entry = self._jobs.get(job_id)
                        if entry is not None and entry["status"] == "queued":
                            entry["status"] = "running"
                            pool_id = self.pool.submit(entry["spec"])
                            self._pool_ids[pool_id] = job_id
                            now = round(time.time(), 6)
                            entry["_ts_leased"] = now
                            self._journal_append(
                                "leased", job=job_id, ts=now,
                                attempt=self.pool.attempts(pool_id) or 1)
                            self._span(job_id, "leased", ts=now,
                                       attempt=self.pool.attempts(pool_id)
                                       or 1)
                            if self.telemetry is not None:
                                submitted = entry.get("_ts_submitted")
                                if submitted is not None:
                                    self._m_queue_wait.observe(
                                        max(0.0, now - submitted))
            self.pool.tick(block_s=0.0 if moved else 0.05)
            self._collect()
            self._heartbeat_journal()
            if self._draining and not self._pool_ids:
                self._drained.set()
            elif self._pool_ids:
                self._drained.clear()

    def _heartbeat_journal(self) -> None:
        """Journal a liveness record ~1/s while work is in flight, so a
        post-crash reader can tell how recently the server was alive."""
        if self.journal is None or not self._pool_ids:
            return
        now = time.monotonic()
        if now - self._last_hb >= HEARTBEAT_JOURNAL_S:
            self._last_hb = now
            self._journal_append("heartbeat", leases=len(self._pool_ids))

    def _collect(self) -> None:
        for pool_id in list(self._pool_ids):
            if not self.pool.done(pool_id):
                continue
            job_id = self._pool_ids.pop(pool_id)
            record = self.pool.record(pool_id)
            with self._lock:
                entry = self._jobs.get(job_id)
                if entry is None:
                    continue
                now = round(time.time(), 6)
                if record.get("status") == "dead_letter":
                    entry["status"] = "dead_letter"
                    entry["error"] = record.get("error")
                    self._journal_append("dead_letter", job=job_id, ts=now,
                                         error=record.get("error"))
                    self._span(job_id, "dead_lettered", ts=now,
                               error=record.get("error"))
                elif record.get("failed"):
                    entry["status"] = "failed"
                    entry["error"] = record.get("error")
                    self._journal_append("failed", job=job_id, ts=now,
                                         error=record.get("error"))
                    self._span(job_id, "failed", ts=now,
                               error=record.get("error"))
                else:
                    entry["status"] = "done"
                    self._journal_append("done", job=job_id, ts=now)
                    self._span(job_id, "completed", ts=now)
                if self.telemetry is not None:
                    self.telemetry.counter(
                        "repro_jobs_terminal_total",
                        "Jobs reaching a terminal state, by status",
                        status=entry["status"]).inc()
                    leased = entry.get("_ts_leased")
                    if leased is not None:
                        self._m_run.observe(max(0.0, now - leased))
                    log_event(_LOG, "service.terminal", job=job_id,
                              trace=entry.get("trace"),
                              status=entry["status"],
                              error=entry.get("error"))


class _Handler(BaseHTTPRequestHandler):
    service: SimulationService = None  # set by create_server
    protocol_version = "HTTP/1.1"

    # -- helpers ---------------------------------------------------------------

    def _send(self, code: int, payload, headers: Optional[dict] = None,
              content_type: str = "application/json") -> None:
        body = payload if isinstance(payload, bytes) else \
            (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # quiet by default
        pass

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        service = self.service
        if self.path == "/healthz":
            self._send(200, {"status": "draining" if service.draining
                             else "ok",
                             "workers": service.pool.alive_workers()})
        elif self.path == "/stats":
            self._send(200, service.stats())
        elif self.path == "/metrics":
            text = service.metrics_text()
            if text is None:
                self._send(404, {"error": "telemetry is disabled"})
            else:
                self._send(200, text.encode(),
                           content_type="text/plain; version=0.0.4; "
                                        "charset=utf-8")
        elif self.path == "/jobs" or self.path.startswith("/jobs?"):
            status = None
            match = re.fullmatch(r"/jobs\?status=([a-z_]+)", self.path)
            if match:
                status = match.group(1)
            self._send(200, {"jobs": service.jobs_snapshot(status)})
        elif self.path.startswith("/jobs/") and self.path.endswith("/trace"):
            job_id = self.path[len("/jobs/"):-len("/trace")]
            if service.spans is None:
                self._send(404, {"error": "telemetry is disabled"})
                return
            trace = service.job_trace(job_id)
            if trace is None:
                self._send(404, {"error": "no trace for that job"})
            else:
                self._send(200, trace)
        elif self.path.startswith("/jobs/"):
            job = service.job(self.path[len("/jobs/"):])
            if job is None:
                self._send(404, {"error": "no such job"})
            else:
                self._send(200, job)
        else:
            match = re.fullmatch(r"/results/([0-9a-f]+)", self.path)
            if match:
                raw = service.store.get_bytes(match.group(1))
                if raw is None:
                    self._send(404, {"error": "no such result"})
                else:
                    self._send(200, raw)
            else:
                self._send(404, {"error": "unknown endpoint"})

    def do_POST(self) -> None:
        # Drain the request body unconditionally, before any routing:
        # on a keep-alive socket, body bytes a handler never read would
        # be parsed as the start of the *next* request.
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        if self.path == "/scrub" or self.path == "/scrub?repair=1":
            report = self.service.scrub(repair=self.path.endswith("repair=1"))
            self._send(200, report)
            return
        if self.path != "/jobs":
            self._send(404, {"error": "unknown endpoint"})
            return
        if self.service.draining:
            self._send(503, {"error": "service is draining",
                             "retry_after_s": RETRY_AFTER_S},
                       headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        try:
            body = json.loads(raw or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send(400, {"error": "invalid JSON body"})
            return
        raw_jobs = body.get("jobs", [body]) if isinstance(body, dict) else None
        if not isinstance(raw_jobs, list) or not raw_jobs:
            self._send(400, {"error": "submit a job object or "
                                      "{'jobs': [...]}"})
            return
        accepted = []
        try:
            specs = [(spec_from_request(job),
                      int(job.get("priority", DEFAULT_PRIORITY))
                      if isinstance(job, dict) else DEFAULT_PRIORITY)
                     for job in raw_jobs]
        except BadJobError as exc:
            self._send(400, {"error": str(exc)})
            return
        try:
            for spec, priority in specs:
                accepted.append(self.service.submit(spec, priority))
        except QueueFullError as exc:
            self._send(429, {"error": str(exc), "accepted": accepted,
                             "retry_after_s": RETRY_AFTER_S},
                       headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        except DrainingError as exc:
            self._send(503, {"error": str(exc), "accepted": accepted,
                             "retry_after_s": RETRY_AFTER_S},
                       headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        self._send(202, {"jobs": accepted})


def create_server(host: str = "127.0.0.1", port: int = 0,
                  workers: Optional[int] = None,
                  store_dir: str = ".repro-store",
                  max_queue: int = 64,
                  timeout: Optional[float] = None,
                  max_store_entries: Optional[int] = None,
                  journal_sync: Optional[str] = "batch",
                  telemetry: bool = True):
    """Build (but do not start serving) the HTTP service.

    Returns ``(httpd, service)``; callers run ``httpd.serve_forever()``
    and ``service.stop()``/``httpd.shutdown()`` to tear down.  The
    write-ahead journal lives under ``<store_dir>/journal`` with the
    given fsync policy (``always`` | ``batch`` | ``off``); pass
    ``journal_sync=None`` to run without one (volatile job state, as
    before the journal existed).  ``telemetry=False`` turns off the
    metrics registry, spans and ``/metrics``; results are byte-identical
    either way (telemetry observes the fabric, never the simulation).
    """
    store = ResultStore(store_dir, max_entries=max_store_entries)
    journal = None
    if journal_sync not in (None, "none"):
        journal = Journal(Path(store_dir) / "journal", sync=journal_sync)
    pool = SimulationPool(n_workers=workers, store=store, timeout=timeout,
                          telemetry=telemetry)
    service = SimulationService(pool, store, max_queue=max_queue,
                                journal=journal, telemetry=telemetry)
    handler = type("Handler", (_Handler,), {"service": service})
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    service.start()
    return httpd, service


def serve(host: str, port: int, workers: Optional[int], store_dir: str,
          max_queue: int, timeout: Optional[float],
          drain_timeout_s: float = 30.0,
          journal_sync: Optional[str] = "batch",
          telemetry: bool = True,
          stats_interval: Optional[float] = None,
          echo=print) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    SIGTERM/SIGINT start a graceful drain: submissions get 503 +
    ``Retry-After``, leased jobs finish (up to ``drain_timeout_s``), the
    queued remainder stays journaled for the next start, and the process
    exits 0.  Service lifecycle events additionally land on stderr as
    JSON log lines (one object per line, job/trace ids attached); with
    ``stats_interval`` a background thread logs a ``service.stats``
    metrics line every that-many seconds.
    """
    configure_logging()
    httpd, service = create_server(host=host, port=port, workers=workers,
                                   store_dir=store_dir, max_queue=max_queue,
                                   timeout=timeout, journal_sync=journal_sync,
                                   telemetry=telemetry)
    bound = httpd.server_address
    recovered = service.recovery
    echo(f"simulation service on http://{bound[0]}:{bound[1]} "
         f"({service.pool.n_workers} worker(s), store {store_dir}, "
         f"queue {max_queue}, journal "
         f"{journal_sync if service.journal else 'off'}, telemetry "
         f"{'on' if telemetry else 'off'})")
    log_event(_LOG, "service.started", host=bound[0], port=bound[1],
              workers=service.pool.n_workers, store=store_dir,
              telemetry=telemetry)
    if recovered["replayed"]:
        echo(f"recovered {recovered['replayed']} journaled job(s): "
             f"{recovered['recovered_done']} already done, "
             f"{recovered['requeued']} re-queued, "
             f"{recovered['lost']} lost")

    stats_stop = threading.Event()
    if stats_interval:
        def _stats_loop():
            while not stats_stop.wait(stats_interval):
                snapshot = service.stats()
                log_event(_LOG, "service.stats",
                          queue_depth=snapshot["queue"]["depth"],
                          jobs=snapshot["jobs"],
                          pool=snapshot["pool"]["counters"],
                          store_hits=snapshot["store"].get("hits"),
                          store_misses=snapshot["store"].get("misses"),
                          workers=snapshot["pool"]["workers"])

        threading.Thread(target=_stats_loop, name="stats-logger",
                         daemon=True).start()

    def _drain_and_stop(signum, frame):
        echo(f"signal {signum}: draining (timeout {drain_timeout_s}s)")
        log_event(_LOG, "service.draining", signum=signum,
                  timeout_s=drain_timeout_s)
        service.begin_drain()

        def _finish():
            clean = service.drain(timeout_s=drain_timeout_s)
            echo("drain complete" if clean
                 else "drain timed out; queued work stays journaled")
            log_event(_LOG, "service.drained", clean=clean)
            stats_stop.set()
            httpd.shutdown()

        threading.Thread(target=_finish, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain_and_stop)
        signal.signal(signal.SIGINT, _drain_and_stop)
    except ValueError:  # not the main thread (tests): no signal handling
        pass
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        echo("shutting down")
    finally:
        stats_stop.set()
        service.stop()
        httpd.server_close()
    return 0
