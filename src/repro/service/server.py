"""Stdlib HTTP JSON API in front of the pool + store.

Endpoints
---------
``POST /jobs``            submit one job (``{"core": ..., "app": ...}``)
                          or a batch (``{"jobs": [...]}``); responds 202
                          with one entry per job, or **429** with a
                          ``Retry-After`` header when the bounded queue
                          is full (explicit backpressure — clients retry,
                          the server never buffers unboundedly).
``GET /jobs/<id>``        job status: queued | running | done | failed
``GET /results/<key>``    the raw store record for a result key
``GET /healthz``          liveness (also reports worker count)
``GET /stats``            store hits/misses/evictions/quarantines, pool
                          counters (incl. trace-cache evictions), queue
                          depth, jobs by status

Submissions land in a bounded **priority queue** (lower number = served
first; ties FIFO).  A single dispatcher thread moves jobs from that
queue into the multiprocessing pool — keeping at most ``2 x workers``
jobs in flight so late high-priority submissions overtake queued
low-priority ones — and resolves completions back into the job registry.
A job whose key is already in the store completes at submission time
without ever touching the queue.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.common.params import CoreConfig
from repro.service.jobs import JobSpec
from repro.service.pool import SimulationPool
from repro.service.store import ResultStore

#: Priority used when a submission does not specify one.
DEFAULT_PRIORITY = 100

#: Hint sent with 429 responses.
RETRY_AFTER_S = 2


class QueueFullError(Exception):
    """The bounded submission queue is at capacity."""


class BadJobError(Exception):
    """The submitted job spec is invalid."""


def _core_factories() -> dict:
    from repro.__main__ import _CORES
    return _CORES


def spec_from_request(body: dict) -> JobSpec:
    """Validate one submitted job object into a JobSpec.

    ``core`` is a known core name or a full config object; ``app`` is a
    suite application name or ``profile`` a full profile object.
    """
    if not isinstance(body, dict):
        raise BadJobError("job must be a JSON object")
    core = body.get("core", "casino")
    if isinstance(core, str):
        factories = _core_factories()
        if core not in factories:
            raise BadJobError(
                f"unknown core {core!r}; valid: {', '.join(sorted(factories))}")
        cfg = factories[core]()
    elif isinstance(core, dict):
        try:
            from repro.common.config_io import core_config_from_dict
            cfg = core_config_from_dict(core)
        except Exception as exc:
            raise BadJobError(f"bad core config: {exc}")
    else:
        raise BadJobError("core must be a name or a config object")
    profile = body.get("profile")
    if profile is None:
        app = body.get("app")
        if not isinstance(app, str):
            raise BadJobError("job needs an 'app' name or a 'profile' object")
        from repro.workloads.suite import SUITE
        if app not in SUITE:
            raise BadJobError(f"unknown app {app!r}")
        profile_obj = SUITE[app]
    else:
        try:
            from repro.workloads.generator import WorkloadProfile
            profile_obj = WorkloadProfile(**profile)
        except (TypeError, ValueError) as exc:
            raise BadJobError(f"bad profile: {exc}")
    try:
        n_instrs = int(body.get("n", body.get("n_instrs", 24_000)))
        warmup = int(body.get("warmup", 6_000))
    except (TypeError, ValueError):
        raise BadJobError("'n' and 'warmup' must be integers")
    return JobSpec(core=dataclasses.asdict(cfg),
                   profile=dataclasses.asdict(profile_obj),
                   n_instrs=n_instrs, warmup=warmup,
                   sanitize=bool(body["sanitize"]) if "sanitize" in body
                   else None,
                   retries=int(body.get("retries", 1)),
                   accounting=bool(body.get("accounting", True)))


class SimulationService:
    """Job registry + bounded priority queue + dispatcher thread."""

    def __init__(self, pool: SimulationPool, store: ResultStore,
                 max_queue: int = 64) -> None:
        self.pool = pool
        self.store = store
        self.max_queue = max_queue
        self.queue: "queue.PriorityQueue[Tuple[int, int, str]]" = \
            queue.PriorityQueue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._jobs: Dict[str, dict] = {}
        self._seq = 0
        self._pool_ids: Dict[int, str] = {}
        self._stop = threading.Event()
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="dispatcher", daemon=True)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.pool.start()
        self._dispatcher.start()

    def stop(self) -> None:
        self._stop.set()
        self._dispatcher.join(timeout=5.0)
        self.pool.close()

    # -- submission (called from HTTP handler threads) -------------------------

    def submit(self, spec: JobSpec,
               priority: int = DEFAULT_PRIORITY) -> dict:
        key = spec.key()
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq}"
            entry = {"id": job_id, "status": "queued", "key": key,
                     "core": spec.core.get("name"),
                     "app": spec.profile.get("name"),
                     "priority": priority, "spec": spec}
            # The get() counts the cache-served submission as a store
            # hit and refreshes the entry's LRU recency; on a miss the
            # pool consults (and counts) the store itself.
            if key in self.store and self.store.get(key) is not None:
                entry["status"] = "done"
                entry["cached"] = True
                self._jobs[job_id] = entry
                return self._public(entry)
            self._jobs[job_id] = entry
        try:
            self.queue.put_nowait((priority, self._seq, job_id))
        except queue.Full:
            with self._lock:
                del self._jobs[job_id]
            raise QueueFullError(
                f"queue full ({self.max_queue} jobs); retry later")
        return self._public(entry)

    def job(self, job_id: str) -> Optional[dict]:
        with self._lock:
            entry = self._jobs.get(job_id)
            return self._public(entry) if entry else None

    @staticmethod
    def _public(entry: dict) -> dict:
        public = {k: v for k, v in entry.items() if k != "spec"}
        if entry["status"] in ("done", "failed"):
            public["result_url"] = f"/results/{entry['key']}"
        return public

    def stats(self) -> dict:
        with self._lock:
            by_status: Dict[str, int] = {}
            for entry in self._jobs.values():
                by_status[entry["status"]] = \
                    by_status.get(entry["status"], 0) + 1
        return {
            "store": self.store.stats_snapshot(),
            "pool": self.pool.stats_snapshot(),
            "queue": {"depth": self.queue.qsize(), "max": self.max_queue},
            "jobs": by_status,
        }

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        max_in_flight = max(2 * self.pool.n_workers, 2)
        while not self._stop.is_set():
            moved = False
            if len(self._pool_ids) < max_in_flight:
                try:
                    _, _, job_id = self.queue.get(timeout=0.05)
                    moved = True
                except queue.Empty:
                    pass
                if moved:
                    with self._lock:
                        entry = self._jobs.get(job_id)
                        if entry is not None and entry["status"] == "queued":
                            entry["status"] = "running"
                            pool_id = self.pool.submit(entry["spec"])
                            self._pool_ids[pool_id] = job_id
            self.pool.tick(block_s=0.0 if moved else 0.05)
            self._collect()

    def _collect(self) -> None:
        for pool_id in list(self._pool_ids):
            if not self.pool.done(pool_id):
                continue
            job_id = self._pool_ids.pop(pool_id)
            record = self.pool.record(pool_id)
            with self._lock:
                entry = self._jobs.get(job_id)
                if entry is None:
                    continue
                if record.get("failed"):
                    entry["status"] = "failed"
                    entry["error"] = record.get("error")
                else:
                    entry["status"] = "done"


class _Handler(BaseHTTPRequestHandler):
    service: SimulationService = None  # set by create_server
    protocol_version = "HTTP/1.1"

    # -- helpers ---------------------------------------------------------------

    def _send(self, code: int, payload, headers: Optional[dict] = None) -> None:
        body = payload if isinstance(payload, bytes) else \
            (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # quiet by default
        pass

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        service = self.service
        if self.path == "/healthz":
            self._send(200, {"status": "ok",
                             "workers": service.pool.alive_workers()})
        elif self.path == "/stats":
            self._send(200, service.stats())
        elif self.path.startswith("/jobs/"):
            job = service.job(self.path[len("/jobs/"):])
            if job is None:
                self._send(404, {"error": "no such job"})
            else:
                self._send(200, job)
        else:
            match = re.fullmatch(r"/results/([0-9a-f]+)", self.path)
            if match:
                raw = service.store.get_bytes(match.group(1))
                if raw is None:
                    self._send(404, {"error": "no such result"})
                else:
                    self._send(200, raw)
            else:
                self._send(404, {"error": "unknown endpoint"})

    def do_POST(self) -> None:
        if self.path != "/jobs":
            self._send(404, {"error": "unknown endpoint"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send(400, {"error": "invalid JSON body"})
            return
        raw_jobs = body.get("jobs", [body]) if isinstance(body, dict) else None
        if not isinstance(raw_jobs, list) or not raw_jobs:
            self._send(400, {"error": "submit a job object or "
                                      "{'jobs': [...]}"})
            return
        accepted = []
        try:
            specs = [(spec_from_request(job),
                      int(job.get("priority", DEFAULT_PRIORITY))
                      if isinstance(job, dict) else DEFAULT_PRIORITY)
                     for job in raw_jobs]
        except BadJobError as exc:
            self._send(400, {"error": str(exc)})
            return
        try:
            for spec, priority in specs:
                accepted.append(self.service.submit(spec, priority))
        except QueueFullError as exc:
            self._send(429, {"error": str(exc), "accepted": accepted,
                             "retry_after_s": RETRY_AFTER_S},
                       headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        self._send(202, {"jobs": accepted})


def create_server(host: str = "127.0.0.1", port: int = 0,
                  workers: Optional[int] = None,
                  store_dir: str = ".repro-store",
                  max_queue: int = 64,
                  timeout: Optional[float] = None,
                  max_store_entries: Optional[int] = None):
    """Build (but do not start serving) the HTTP service.

    Returns ``(httpd, service)``; callers run ``httpd.serve_forever()``
    and ``service.stop()``/``httpd.shutdown()`` to tear down.
    """
    store = ResultStore(store_dir, max_entries=max_store_entries)
    pool = SimulationPool(n_workers=workers, store=store, timeout=timeout)
    service = SimulationService(pool, store, max_queue=max_queue)
    handler = type("Handler", (_Handler,), {"service": service})
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    service.start()
    return httpd, service


def serve(host: str, port: int, workers: Optional[int], store_dir: str,
          max_queue: int, timeout: Optional[float],
          echo=print) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    httpd, service = create_server(host=host, port=port, workers=workers,
                                   store_dir=store_dir, max_queue=max_queue,
                                   timeout=timeout)
    bound = httpd.server_address
    echo(f"simulation service on http://{bound[0]}:{bound[1]} "
         f"({service.pool.n_workers} worker(s), store {store_dir}, "
         f"queue {max_queue})")
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        echo("shutting down")
    finally:
        service.stop()
        httpd.server_close()
    return 0
