"""Durable write-ahead journal for the simulation service.

An append-only log of job lifecycle records (``submitted`` / ``leased``
/ ``heartbeat`` / ``done`` / ``failed`` / ``dead_letter``) that a
restarted :class:`~repro.service.server.SimulationService` replays to
reconstruct its queue and re-dispatch orphaned work.  Design points:

* **One record per line** — a JSON object ``{"crc", "seq", "rec"}``
  where ``crc`` is the CRC-32 of the canonical serialisation of
  ``rec``.  A flipped bit breaks either the JSON framing or the
  checksum; replay *skips* the record (counted), it never aborts.
* **Torn-tail tolerance** — a crash mid-append leaves a partial final
  line; replay detects it (unparseable record at the very end of the
  newest segment), counts it once and stops cleanly.  Durable state
  regresses by at most that one record, and the job it described is
  re-driven from its previous journaled state.
* **Segmented** — the log rotates into numbered segment files
  (``segment-000001.jrnl`` ...) once the active one exceeds
  ``max_segment_bytes``; :meth:`compact` rewrites only the live records
  into a fresh segment and deletes every older one, so the journal's
  size tracks the number of *open* jobs, not the total ever submitted.
* **Tunable durability** — ``sync="always"`` fsyncs every append;
  ``"batch"`` (the service default) flushes every record to the kernel
  (a SIGKILL of the process loses nothing) and group-commits fsyncs
  from a background flusher thread every ``sync_interval_s`` seconds
  plus on rotation/compaction/close, keeping the multi-millisecond
  fsync tail off the submit path and bounding the post-OS-crash loss
  window by *time* rather than record count; ``"off"`` is for
  throwaway test journals.

The journal stores facts, not interpretations: :func:`fold_jobs` is the
shared replay fold that turns the record stream into per-job final
states for the service (and the sweep's orphan report).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Version of the on-disk record framing written by this build.
#: Schema 2 (telemetry plane) added the ``span`` record type and the
#: ``ts`` / ``trace`` fields on lifecycle records; the framing itself is
#: unchanged, so v1 journals replay losslessly (they just carry no span
#: history).  Replay treats records from any *unknown* version as
#: corrupt (skipped, never misread).
JOURNAL_SCHEMA = 2

#: Schema versions replay understands (backward-readable set).
SUPPORTED_SCHEMAS = frozenset((1, 2))

#: Record types a journal append will accept.  ``span`` (schema 2)
#: persists one per-job telemetry span event with no lifecycle effect;
#: ``node`` records cluster-node roster transitions (register / suspect
#: / dead) — informational for post-mortems, ignored by the job fold.
RECORD_TYPES = ("submitted", "leased", "heartbeat", "done", "failed",
                "dead_letter", "drain", "span", "node")

#: Job states that end a job's lifecycle.
TERMINAL_STATES = ("done", "failed", "dead_letter")

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jrnl"


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _frame(seq: int, rec: dict) -> bytes:
    payload = _canon(rec).encode()
    crc = zlib.crc32(payload)
    return (b'{"crc":%d,"schema":%d,"seq":%d,"rec":%s}\n'
            % (crc, JOURNAL_SCHEMA, seq, payload))


def _unframe(line: bytes) -> Optional[dict]:
    """The validated record (with ``seq``), or None when corrupt/torn."""
    try:
        envelope = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("schema") not in SUPPORTED_SCHEMAS:
        return None
    rec = envelope.get("rec")
    if not isinstance(rec, dict) or not isinstance(envelope.get("seq"), int):
        return None
    if zlib.crc32(_canon(rec).encode()) != envelope.get("crc"):
        return None
    rec = dict(rec)
    rec["seq"] = envelope["seq"]
    return rec


class Journal:
    """Append-only, checksummed, segmented write-ahead journal."""

    def __init__(self, root: Union[str, Path], sync: str = "batch",
                 max_segment_bytes: int = 1 << 20,
                 sync_interval_s: float = 0.05) -> None:
        if sync not in ("always", "batch", "off"):
            raise ValueError(f"sync must be always|batch|off, not {sync!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.max_segment_bytes = max_segment_bytes
        self.sync_interval_s = max(0.001, sync_interval_s)
        self.stats: Dict[str, int] = {
            "appends": 0, "fsyncs": 0, "rotations": 0, "compactions": 0,
            "replayed": 0, "corrupt_skipped": 0, "torn_tail": 0,
        }
        self._lock = threading.RLock()
        self._fh = None
        self._size = 0  # bytes in the active segment (avoids tell())
        self._dirty = False  # flushed-but-not-fsynced records pending
        self._seq = self._scan_last_seq()
        self._flusher_stop = threading.Event()
        self._flusher = None
        if sync == "batch":
            self._flusher = threading.Thread(
                target=self._flush_loop, name="journal-flusher", daemon=True)
            self._flusher.start()

    # -- segments --------------------------------------------------------------

    def segments(self) -> List[Path]:
        """All segment files, oldest first."""
        return sorted(self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    @staticmethod
    def _segment_index(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"

    def _next_index(self) -> int:
        existing = self.segments()
        return (self._segment_index(existing[-1]) + 1) if existing else 1

    def _scan_last_seq(self) -> int:
        last = 0
        for rec in self._iter_segments(self.segments(), count=False):
            last = max(last, rec.get("seq", 0))
        return last

    # -- append ----------------------------------------------------------------

    def _open_active(self):
        if self._fh is None or self._fh.closed:
            segments = self.segments()
            path = segments[-1] if segments else self._segment_path(1)
            self._fh = open(path, "ab")
            try:
                self._size = path.stat().st_size
            except OSError:
                self._size = 0
        return self._fh

    def append(self, type_: str, **fields) -> int:
        """Durably append one record; returns its sequence number."""
        if type_ not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {type_!r}")
        rec = {"t": type_}
        rec.update(fields)
        with self._lock:
            fh = self._fh  # fast path: already open (the common case)
            if fh is None or fh.closed:
                fh = self._open_active()
            self._seq += 1
            frame = _frame(self._seq, rec)
            fh.write(frame)
            fh.flush()  # reaches the kernel: a process kill loses nothing
            self._size += len(frame)
            self.stats["appends"] += 1
            if self.sync == "always":
                os.fsync(fh.fileno())
                self.stats["fsyncs"] += 1
            elif self.sync == "batch":
                self._dirty = True  # the flusher thread group-commits
            if self._size >= self.max_segment_bytes:
                self._rotate()
            return self._seq

    def _rotate(self) -> None:
        fh = self._fh
        if fh is not None and not fh.closed:
            fh.flush()
            if self.sync != "off":
                os.fsync(fh.fileno())
                self.stats["fsyncs"] += 1
            fh.close()
        self._fh = open(self._segment_path(self._next_index()), "ab")
        self._size = 0
        self._dirty = False
        self.stats["rotations"] += 1

    def _flush_loop(self) -> None:
        """Group-commit fsync for ``sync="batch"``: at most one fsync per
        ``sync_interval_s``, taken off the append path so submit latency
        never eats the (occasionally multi-ms) fsync tail."""
        while not self._flusher_stop.wait(self.sync_interval_s):
            with self._lock:
                fh = self._fh
                if not self._dirty or fh is None or fh.closed:
                    continue
                try:
                    # fsync outside the lock (on a dup so a concurrent
                    # rotate/close can't invalidate the fd) — appends
                    # must never wait out the fsync tail.
                    dup = os.dup(fh.fileno())
                except (OSError, ValueError):
                    continue
                self._dirty = False
            try:
                os.fsync(dup)
                self.stats["fsyncs"] += 1
            except OSError:  # transient (e.g. full disk): retry next tick
                with self._lock:
                    self._dirty = True
            finally:
                try:
                    os.close(dup)
                except OSError:
                    pass

    def sync_now(self) -> None:
        """Force an fsync of the active segment (drain/shutdown barrier)."""
        with self._lock:
            fh = self._fh
            if fh is not None and not fh.closed:
                fh.flush()
                os.fsync(fh.fileno())
                self.stats["fsyncs"] += 1
                self._dirty = False

    def close(self) -> None:
        self._flusher_stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
            self._flusher = None
        with self._lock:
            fh = self._fh
            if fh is not None and not fh.closed:
                fh.flush()
                if self.sync != "off":
                    os.fsync(fh.fileno())
                    self.stats["fsyncs"] += 1
                fh.close()
            self._fh = None
            self._dirty = False

    # -- replay ----------------------------------------------------------------

    def _iter_segments(self, segments: List[Path],
                       count: bool = True) -> Iterator[dict]:
        for seg_i, path in enumerate(segments):
            try:
                with open(path, "rb") as fh:
                    lines = fh.read().split(b"\n")
            except OSError:
                continue
            if lines and lines[-1] == b"":
                lines.pop()
            for line_i, line in enumerate(lines):
                if not line.strip():
                    continue
                rec = _unframe(line)
                if rec is None:
                    if count:
                        at_tail = (seg_i == len(segments) - 1
                                   and line_i == len(lines) - 1)
                        if at_tail:
                            self.stats["torn_tail"] += 1
                        else:
                            self.stats["corrupt_skipped"] += 1
                    continue
                if count:
                    self.stats["replayed"] += 1
                yield rec

    def records(self) -> Iterator[dict]:
        """Every valid record, oldest first, across all segments.

        Corrupt records are skipped and counted; an unparseable record
        at the very tail of the newest segment counts as a torn tail.
        """
        with self._lock:
            segments = self.segments()
        yield from self._iter_segments(segments)

    # -- compaction ------------------------------------------------------------

    def compact(self, live_records: List[dict]) -> None:
        """Atomically replace the whole journal with ``live_records``.

        Each entry is ``{"t": type, ...fields}``.  The records land in a
        brand-new segment (fsync'd before old segments are deleted), so
        a crash during compaction leaves either the old journal or the
        new one — never neither.
        """
        with self._lock:
            old = self.segments()
            fresh = self._segment_path(self._next_index())
            with open(fresh, "wb") as fh:
                for rec in live_records:
                    rec = dict(rec)
                    type_ = rec.pop("t")
                    rec.pop("seq", None)
                    if type_ not in RECORD_TYPES:
                        raise ValueError(
                            f"unknown journal record type {type_!r}")
                    self._seq += 1
                    fh.write(_frame(self._seq, {"t": type_, **rec}))
                fh.flush()
                os.fsync(fh.fileno())
                self.stats["fsyncs"] += 1
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = open(fresh, "ab")
            try:
                self._size = fresh.stat().st_size
            except OSError:
                self._size = 0
            self._dirty = False
            for path in old:
                try:
                    path.unlink()
                except OSError:
                    pass
            self.stats["compactions"] += 1

    def stats_snapshot(self) -> dict:
        with self._lock:
            snapshot = dict(self.stats)
            snapshot["segments"] = len(self.segments())
            snapshot["sync"] = self.sync
        return snapshot


def fold_jobs(records) -> Dict[str, dict]:
    """Fold a record stream into per-job final states, oldest first.

    Returns ``{job_id: state}`` in submission order, where each state is
    ``{"job", "status", "key", "spec", "priority", "attempts", "error",
    "cached"}``.  ``status`` is ``submitted`` / ``leased`` or one of
    :data:`TERMINAL_STATES`; a record for a job with no surviving
    ``submitted`` record (corrupt/truncated) is dropped — the client
    never got a durable acknowledgement for work we cannot describe.
    """
    jobs: Dict[str, dict] = {}
    for rec in records:
        type_ = rec.get("t")
        job = rec.get("job")
        if type_ == "submitted":
            if job is None:
                continue
            cached = bool(rec.get("cached"))
            jobs[job] = {
                # A cache-served submission is born terminal: one
                # record covers its whole lifecycle.
                "job": job, "status": "done" if cached else "submitted",
                "key": rec.get("key"), "spec": rec.get("spec"),
                "priority": rec.get("priority", 100),
                "attempts": 0, "error": None,
                "cached": cached,
                "trace": rec.get("trace"), "ts": rec.get("ts"),
            }
        elif job in jobs:
            state = jobs[job]
            if state["status"] in TERMINAL_STATES:
                continue  # terminal states never regress
            if type_ == "leased":
                state["status"] = "leased"
                state["attempts"] = rec.get("attempt", state["attempts"] + 1)
            elif type_ == "done":
                state["status"] = "done"
                state["cached"] = bool(rec.get("cached", state["cached"]))
            elif type_ == "failed":
                state["status"] = "failed"
                state["error"] = rec.get("error")
            elif type_ == "dead_letter":
                state["status"] = "dead_letter"
                state["error"] = rec.get("error")
            # "heartbeat" renews a lease and "span" records telemetry;
            # neither changes replayed lifecycle state (spans are folded
            # separately by repro.obs.telemetry.fold_spans).
    return jobs
