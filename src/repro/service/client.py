"""Minimal stdlib client for the simulation service.

Wraps the JSON API behind typed helpers and understands the service's
backpressure contract: a 429 raises :class:`ServiceBusyError` carrying
the server's ``Retry-After`` hint, and :meth:`ServiceClient.submit` can
optionally honour it with bounded retries.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Union


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceBusyError(ServiceError):
    """429 — the bounded job queue is full; retry after ``retry_after_s``."""

    @property
    def retry_after_s(self) -> float:
        return float(self.payload.get("retry_after_s", 1))


class ServiceClient:
    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            url, data=data, method="POST" if data else "GET",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except (ValueError, json.JSONDecodeError):
                body = {"error": str(exc)}
            if exc.code == 429:
                raise ServiceBusyError(exc.code, body) from None
            raise ServiceError(exc.code, body) from None

    # -- API -------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{job_id}")

    def result(self, key: str) -> dict:
        return self._request(f"/results/{key}")

    def submit(self, jobs: Union[dict, Sequence[dict]],
               retries_on_busy: int = 0) -> List[dict]:
        """Submit one job object or a batch; returns the accepted entries.

        ``retries_on_busy`` re-submits (whole batch) after the server's
        Retry-After hint when the queue is full.
        """
        body = jobs if isinstance(jobs, dict) else {"jobs": list(jobs)}
        attempts = 0
        while True:
            try:
                response = self._request("/jobs", payload=body)
                return response["jobs"]
            except ServiceBusyError as exc:
                attempts += 1
                if attempts > retries_on_busy:
                    raise
                time.sleep(exc.retry_after_s)

    def wait(self, job_ids: Sequence[str], poll_s: float = 0.25,
             timeout_s: float = 600.0) -> Dict[str, dict]:
        """Poll until every job id is done/failed; returns {id: job}."""
        deadline = time.monotonic() + timeout_s
        done: Dict[str, dict] = {}
        remaining = list(job_ids)
        while remaining:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(remaining)} job(s) still pending after "
                    f"{timeout_s}s: {remaining[:4]}")
            still = []
            for job_id in remaining:
                entry = self.job(job_id)
                if entry["status"] in ("done", "failed"):
                    done[job_id] = entry
                else:
                    still.append(job_id)
            remaining = still
            if remaining:
                time.sleep(poll_s)
        return done
