"""Minimal stdlib client for the simulation service.

Wraps the JSON API behind typed helpers and understands the service's
availability contract:

* **429** (bounded queue full) raises :class:`ServiceBusyError` and
  **503** (draining/restarting) raises :class:`ServiceDrainingError`,
  both carrying the server's ``Retry-After`` hint.
* :meth:`ServiceClient.submit` retries those — and, optionally,
  connection failures while a server restarts — with capped exponential
  backoff plus **full jitter** (each sleep is uniform in [0, cap'd
  window], never below the server's ``Retry-After`` hint), under an
  overall ``deadline_s``.  Exhausting retries or the deadline raises a
  typed :class:`ServiceUnavailableError` wrapping the last failure.

Transport: one persistent **keep-alive** HTTP/1.1 connection per client
(``http.client``), not one socket per request — a batch of N submissions
costs one TCP handshake, not N (``connections_opened`` counts the
reconnects, asserted by the micro-benchmark test).  A request that fails
on a stale pooled connection (the server closed it between requests) is
transparently retried once on a fresh connection; connection-level
failures surface as ``OSError`` (so ``except OSError`` catches both a
refused connect and a mid-request reset).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Sequence, Tuple, Union


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceBusyError(ServiceError):
    """429 — the bounded job queue is full; retry after ``retry_after_s``."""

    @property
    def retry_after_s(self) -> float:
        return float(self.payload.get("retry_after_s", 1))


class ServiceDrainingError(ServiceError):
    """503 — the service is draining; retry against the next instance."""

    @property
    def retry_after_s(self) -> float:
        return float(self.payload.get("retry_after_s", 1))


class ServiceUnavailableError(ServiceError):
    """Retries/deadline exhausted without the service accepting work.

    ``last_error`` is the failure from the final attempt (a
    :class:`ServiceError` subclass or a connection error).
    """

    def __init__(self, message: str, last_error: Exception,
                 attempts: int) -> None:
        Exception.__init__(self, message)
        self.status = getattr(last_error, "status", None)
        self.payload = getattr(last_error, "payload", {})
        self.last_error = last_error
        self.attempts = attempts


class ServiceClient:
    def __init__(self, base_url: str, timeout: float = 30.0,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 10.0,
                 rng: Optional[random.Random] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng if rng is not None else random.Random()
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// is supported, not {base_url!r}")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_lock = threading.Lock()
        #: Fresh TCP connections opened so far (keep-alive reuse makes
        #: this ~1 per client, not 1 per request — tested).
        self.connections_opened = 0

    # -- transport -------------------------------------------------------------

    def close(self) -> None:
        """Drop the pooled connection (next request reopens)."""
        with self._conn_lock:
            self._drop_conn()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _http(self, method: str, path: str,
              body: Optional[bytes] = None,
              ) -> Tuple[int, dict, bytes]:
        """One request on the pooled connection -> (status, headers, body).

        A failure on a *reused* connection (the server closed it idle) is
        retried once on a fresh one; a failure on a fresh connection
        propagates as ``OSError``.
        """
        headers = {"Content-Type": "application/json",
                   "Connection": "keep-alive"}
        with self._conn_lock:
            for attempt in (1, 2):
                fresh = self._conn is None
                if fresh:
                    self._conn = http.client.HTTPConnection(
                        self._host, self._port, timeout=self.timeout)
                    self.connections_opened += 1
                try:
                    self._conn.request(method, path, body=body,
                                       headers=headers)
                    resp = self._conn.getresponse()
                    payload = resp.read()
                    resp_headers = dict(resp.getheaders())
                    if resp.will_close:
                        self._drop_conn()
                    return resp.status, resp_headers, payload
                except socket.timeout:
                    self._drop_conn()
                    raise
                except (http.client.HTTPException, OSError) as exc:
                    self._drop_conn()
                    if fresh or attempt == 2:
                        if isinstance(exc, OSError):
                            raise
                        raise OSError(f"connection failed: {exc!r}") from exc
                    # Stale keep-alive connection: retry once, fresh.
            raise OSError("unreachable")  # pragma: no cover - loop returns

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        status, _, raw = self._http("POST" if data is not None else "GET",
                                    path, body=data)
        if 200 <= status < 300:
            return json.loads(raw.decode())
        try:
            body = json.loads(raw.decode())
        except (ValueError, json.JSONDecodeError):
            body = {"error": raw.decode(errors="replace") or f"HTTP {status}"}
        if status == 429:
            raise ServiceBusyError(status, body)
        if status == 503:
            raise ServiceDrainingError(status, body)
        raise ServiceError(status, body)

    def _backoff_sleep(self, attempt: int, hint_s: float,
                       deadline: Optional[float]) -> None:
        """Capped exponential backoff with full jitter, floored at the
        server's Retry-After hint and ceilinged by the deadline."""
        window = min(self.backoff_cap_s,
                     self.backoff_base_s * (2 ** max(attempt - 1, 0)))
        sleep_s = max(hint_s, self._rng.uniform(0.0, window))
        if deadline is not None:
            sleep_s = min(sleep_s, max(deadline - time.monotonic(), 0.0))
        if sleep_s > 0:
            time.sleep(sleep_s)

    # -- API -------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def job(self, job_id: str, wait_s: Optional[float] = None) -> dict:
        """One job's public entry.  Against a cluster front door,
        ``wait_s`` long-polls: the response returns early the moment the
        job turns terminal (single-mode servers ignore long-polling —
        pass ``wait_s`` only to a coordinator)."""
        path = f"/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
        return self._request(path)

    def trace(self, job_id: str) -> dict:
        """Per-job span: ``{job, trace, complete, events: [...]}``."""
        return self._request(f"/jobs/{job_id}/trace")

    def metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics`` (not JSON)."""
        status, _, raw = self._http("GET", "/metrics")
        if 200 <= status < 300:
            return raw.decode()
        try:
            body = json.loads(raw.decode())
        except (ValueError, json.JSONDecodeError):
            body = {"error": raw.decode(errors="replace")}
        raise ServiceError(status, body)

    def jobs(self, status: Optional[str] = None) -> List[dict]:
        path = "/jobs" + (f"?status={status}" if status else "")
        return self._request(path)["jobs"]

    def result(self, key: str) -> dict:
        return self._request(f"/results/{key}")

    def scrub(self, repair: bool = False) -> dict:
        return self._request("/scrub" + ("?repair=1" if repair else ""),
                             payload={})

    def submit(self, jobs: Union[dict, Sequence[dict]],
               retries_on_busy: int = 0,
               deadline_s: Optional[float] = None,
               retry_connect: bool = False) -> List[dict]:
        """Submit one job object or a batch; returns the accepted entries.

        Retryable failures — 429 (queue full), 503 (draining), and
        connection errors when ``retry_connect`` (a server restarting in
        place) — are re-submitted (whole batch) up to ``retries_on_busy``
        times with capped exponential backoff + full jitter, never
        sooner than the server's ``Retry-After`` hint, and never past
        ``deadline_s`` overall.  With retries enabled, exhaustion raises
        :class:`ServiceUnavailableError` carrying the last failure; with
        ``retries_on_busy=0`` the original failure propagates untouched.
        """
        body = jobs if isinstance(jobs, dict) else {"jobs": list(jobs)}
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._request("/jobs", payload=body)
                return response["jobs"]
            except (ServiceBusyError, ServiceDrainingError) as exc:
                failure = exc
                hint_s = exc.retry_after_s
            except OSError as exc:
                if not retry_connect:
                    raise
                failure = exc
                hint_s = 0.0
            if attempt > retries_on_busy:
                if retries_on_busy == 0:
                    raise failure
                raise ServiceUnavailableError(
                    f"service unavailable after {attempt} attempt(s): "
                    f"{failure}", failure, attempt) from failure
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceUnavailableError(
                    f"deadline {deadline_s}s exhausted after {attempt} "
                    f"attempt(s): {failure}", failure, attempt) from failure
            self._backoff_sleep(attempt, hint_s, deadline)

    def wait(self, job_ids: Sequence[str], poll_s: float = 0.25,
             timeout_s: float = 600.0,
             long_poll_s: Optional[float] = None) -> Dict[str, dict]:
        """Poll until every job id is terminal; returns {id: job}.

        With ``long_poll_s`` (cluster front door only) each status check
        parks server-side until the job turns terminal or that many
        seconds pass, so completion is observed promptly without a tight
        poll loop."""
        deadline = time.monotonic() + timeout_s
        done: Dict[str, dict] = {}
        remaining = list(job_ids)
        while remaining:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(remaining)} job(s) still pending after "
                    f"{timeout_s}s: {remaining[:4]}")
            still = []
            for job_id in remaining:
                entry = self.job(job_id, wait_s=long_poll_s)
                if entry["status"] in ("done", "failed", "dead_letter"):
                    done[job_id] = entry
                else:
                    still.append(job_id)
            remaining = still
            if remaining and long_poll_s is None:
                time.sleep(poll_s)
        return done
