"""Multiprocessing worker pool for simulation jobs.

Fans :class:`~repro.service.jobs.JobSpec` jobs across long-lived worker
processes (each reusing a :class:`ResilientRunner`, so retry-with-reseed
and the bounded trace cache come along).  The parent keeps full control
by doing the dispatching itself: every worker has its own job queue and
holds at most one job at a time, recorded parent-side at assignment.  A
worker that dies — even so abruptly that none of its messages ever
flushed — therefore always has an identifiable casualty job.

* **Store integration** — a submitted job whose key is already in the
  result store completes instantly without touching a worker; freshly
  computed records are written back atomically.
* **Leases + heartbeats** — every assignment is a time-bounded lease
  (``lease_s``), renewed by heartbeat messages a worker thread sends
  every ``heartbeat_s`` while executing.  An expired lease escalates:
  first a *poll* (one grace interval for a late heartbeat — a hung
  worker is not the same thing as a dead worker), then the worker is
  terminated and a replacement spawns.
* **Bounded redelivery + dead-letter** — a job whose worker dies or
  whose lease is reclaimed goes back to the front of the backlog and is
  redelivered to a fresh worker, at most ``max_redeliveries`` times;
  beyond that it is a poison job and resolves to a ``dead_letter``
  record instead of taking more of the fleet down with it.
* **Per-job timeouts** — a job running past ``timeout`` seconds gets its
  worker terminated and is reported failed (``status: "timeout"``); too
  slow is a property of the job, not the worker, so it is not
  redelivered.
* **Degradation** — once ``max_worker_deaths`` total deaths accumulate
  the pool stops respawning and runs everything remaining serially in
  the parent.
* **Cancellation** — :meth:`cancel_pending` flushes every job still in
  the parent's backlog (i.e. not yet handed to a worker).
* **Journal hook** — given a :class:`~repro.service.journal.Journal`,
  the pool writes ``submitted`` / ``leased`` / ``done`` / ``failed`` /
  ``dead_letter`` records through it, so a crashed batch driver (e.g. a
  pooled sweep) can account for dispatched-but-unfinished work.

All coordination happens in :meth:`tick`, which the blocking helpers
(:meth:`wait`, :meth:`run_batch`) call in a loop and which an HTTP server
can call from its own dispatcher thread.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import get_logger, log_event
from repro.service import jobs as jobs_mod
from repro.service.jobs import JobSpec, execute_job, failure_record
from repro.service.store import ResultStore

_POISON = None

_LOG = get_logger("service.pool")


def _heartbeat_loop(result_q, job_id: int, pid: int, interval: float,
                    stop: "threading.Event") -> None:
    """Worker-side: renew the parent's lease while a job executes."""
    while not stop.wait(interval):
        try:
            result_q.put(("hb", job_id, pid, None, None, None, None))
        except (OSError, ValueError):
            return


def _worker_main(job_q, result_q, trace_dir=None,
                 heartbeat_s: Optional[float] = None,
                 telemetry: bool = False) -> None:
    """Worker loop: execute one spec at a time until the poison pill.

    Messages back to the parent are ``(kind, job_id, pid, payload,
    trace_evictions, trace_store, telemetry)`` tuples;
    ``trace_evictions`` is the cumulative eviction count of this
    process's runners, ``trace_store`` its shared-trace-cache counters
    (both for ``/stats``) and ``telemetry`` the worker's cumulative
    metrics-registry snapshot (``None`` unless the pool enabled worker
    telemetry).  A ``start`` message announces job pickup so the parent
    can stamp the ``started`` span event.  ``trace_dir`` roots the
    cross-process :class:`~repro.service.store.TraceStore` so workers
    share one generation of each synthetic trace.  While a job executes,
    a heartbeat thread renews the parent's lease every ``heartbeat_s``.
    """
    jobs_mod.IN_WORKER = True
    if trace_dir is not None:
        from repro.service.store import TraceStore
        jobs_mod.TRACE_STORE = TraceStore(trace_dir)
    if telemetry:
        from repro.obs.telemetry import MetricsRegistry
        jobs_mod.TELEMETRY = MetricsRegistry()
    pid = os.getpid()
    while True:
        item = job_q.get()
        if item is _POISON:
            result_q.put(("bye", -1, pid, None, jobs_mod.trace_evictions(),
                          jobs_mod.trace_store_stats(),
                          jobs_mod.telemetry_snapshot()))
            return
        job_id, spec, attempt = item
        # The SIGKILL test hook (in jobs.execute_job) exits hard right
        # after this point.  Announcing pickup first would risk dying
        # while the queue's feeder thread holds the shared write lock,
        # wedging every later worker's messages — so a delivery that is
        # about to die stays silent, exactly like a real crash landing
        # before any message flushed.
        will_die = attempt <= int(getattr(spec, "test_kill", 0) or 0)
        if not will_die:
            try:
                result_q.put(("start", job_id, pid, None, None, None, None))
            except (OSError, ValueError):
                pass  # parent gone; the job attempt below will fail loudly
        # Chaos/test hook: a first-delivery stall with heartbeats
        # suppressed, so the parent's lease provably expires and the
        # reclaim path redelivers the job.
        stall = float(getattr(spec, "test_stall_s", 0.0) or 0.0)
        if stall and attempt <= 1:
            time.sleep(stall)
        stop_hb = threading.Event()
        if heartbeat_s:
            threading.Thread(target=_heartbeat_loop,
                             args=(result_q, job_id, pid, heartbeat_s,
                                   stop_hb), daemon=True).start()
        try:
            record = execute_job(spec, attempt=attempt)
            stop_hb.set()
            result_q.put(("done", job_id, pid, record,
                          jobs_mod.trace_evictions(),
                          jobs_mod.trace_store_stats(),
                          jobs_mod.telemetry_snapshot()))
        except BaseException as exc:  # keep the worker loop alive
            stop_hb.set()
            result_q.put(("error", job_id, pid, repr(exc),
                          jobs_mod.trace_evictions(),
                          jobs_mod.trace_store_stats(),
                          jobs_mod.telemetry_snapshot()))


class SimulationPool:
    """Store-aware multiprocessing pool for simulation jobs."""

    def __init__(self, n_workers: Optional[int] = None,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = None,
                 max_worker_deaths: int = 6,
                 max_redeliveries: int = 2,
                 lease_s: float = 30.0,
                 heartbeat_s: Optional[float] = None,
                 journal=None,
                 telemetry: bool = False,
                 mp_context: Optional[str] = None) -> None:
        self.n_workers = max(1, n_workers if n_workers is not None
                             else (os.cpu_count() or 1))
        self.store = store
        self.timeout = timeout
        self.max_worker_deaths = max_worker_deaths
        self.max_redeliveries = max(0, max_redeliveries)
        self.lease_s = lease_s
        self.heartbeat_s = (heartbeat_s if heartbeat_s is not None
                            else max(lease_s / 4.0, 0.05))
        self.journal = journal
        #: Enables worker-local metrics registries (snapshots ride back
        #: on result messages and merge parent-side, losslessly).
        self.telemetry = telemetry
        #: Span-event hook: ``on_event(job_id, event, **attrs)`` fires
        #: for lifecycle moments only the pool can see (``started``,
        #: ``simulated``, ``stored``, ``lease_expired``, ``redelivered``,
        #: ``worker_died``, ``timeout``, ``store_hit``).  The service
        #: installs a translator that appends them to its SpanLog; a
        #: raising hook is swallowed — telemetry never breaks dispatch.
        self.on_event = None
        #: Directory of the shared cross-worker trace cache; riding under
        #: the result store's root keeps one content-addressed tree per
        #: service.  No store -> no sharing (workers regenerate locally).
        self._trace_dir = (str(store.root / "traces")
                           if store is not None else None)
        self._ctx = multiprocessing.get_context(mp_context)
        self._result_q = None
        self._workers: Dict[int, multiprocessing.Process] = {}
        #: pid -> that worker's private job queue (one job in flight max).
        self._worker_qs: Dict[int, object] = {}
        #: pid -> (job_id, assignment time) while a job is in flight.
        self._assigned: Dict[int, Tuple[int, float]] = {}
        #: pid -> monotonic deadline by which a heartbeat must arrive.
        self._lease_deadline: Dict[int, float] = {}
        #: pid -> end of the post-expiry grace poll (hung != dead).
        self._suspect: Dict[int, float] = {}
        self._started = False
        self._closed = False
        self._degraded = False
        self._cancelling = False
        self._seq = 0
        #: job ids submitted but not yet handed to a worker, FIFO.
        self._backlog: List[int] = []
        #: job_id -> spec for every job not yet resolved to a record.
        self._pending: Dict[int, JobSpec] = {}
        #: job_id -> deliveries so far (redelivery budget accounting).
        self._attempts: Dict[int, int] = {}
        self._records: Dict[int, dict] = {}
        self._keys: Dict[int, str] = {}
        self._evictions_by_pid: Dict[int, int] = {}
        #: pid -> latest shared-trace-cache counters from that worker.
        self._trace_stats_by_pid: Dict[int, dict] = {}
        #: pid -> latest cumulative metrics snapshot from that worker.
        #: Snapshots are cumulative per process, so keeping only the
        #: newest per pid and summing across pids is lossless.
        self._telemetry_by_pid: Dict[int, dict] = {}
        self.stats: Dict[str, int] = {
            "submitted": 0, "cached": 0, "dispatched": 0, "completed": 0,
            "failed": 0, "timeouts": 0, "worker_deaths": 0,
            "serial_fallbacks": 0, "cancelled": 0,
            "heartbeats": 0, "lease_expired": 0, "redeliveries": 0,
            "dead_lettered": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._result_q = self._ctx.Queue()
        for _ in range(self.n_workers):
            self._spawn_worker()
        self._started = True

    def _spawn_worker(self) -> None:
        job_q = self._ctx.Queue()
        proc = self._ctx.Process(target=_worker_main,
                                 args=(job_q, self._result_q,
                                       self._trace_dir, self.heartbeat_s,
                                       self.telemetry),
                                 daemon=True)
        proc.start()
        self._workers[proc.pid] = proc
        self._worker_qs[proc.pid] = job_q

    def close(self) -> None:
        """Stop the workers (pending jobs are abandoned — wait first)."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for pid, job_q in self._worker_qs.items():
                if self._workers.get(pid) is not None \
                        and self._workers[pid].is_alive():
                    try:
                        job_q.put(_POISON)
                    except (OSError, ValueError):
                        pass
            deadline = time.monotonic() + 5.0
            for proc in self._workers.values():
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._drain_messages()
            for q in [self._result_q] + list(self._worker_qs.values()):
                q.close()
                q.cancel_join_thread()
        self._workers.clear()
        self._worker_qs.clear()
        self._assigned.clear()
        self._lease_deadline.clear()
        self._suspect.clear()

    def kill(self) -> None:
        """Chaos hook: SIGKILL-equivalent teardown.

        Terminates every worker immediately — no poison pills, no
        message draining, no journaling — simulating the whole process
        tree dying.  Only the journal and store contents survive, which
        is exactly what a crash-recovery test needs to exercise.
        """
        self._closed = True
        for proc in self._workers.values():
            try:
                proc.kill()
            except (AttributeError, OSError):
                proc.terminate()
        for proc in self._workers.values():
            proc.join(timeout=2.0)
        if self._started:
            for q in [self._result_q] + list(self._worker_qs.values()):
                try:
                    q.close()
                    q.cancel_join_thread()
                except (OSError, ValueError):
                    pass
        self._workers.clear()
        self._worker_qs.clear()
        self._assigned.clear()
        self._lease_deadline.clear()
        self._suspect.clear()

    def __enter__(self) -> "SimulationPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def degraded(self) -> bool:
        """True once the pool gave up on workers and runs jobs serially."""
        return self._degraded

    def alive_workers(self) -> int:
        return sum(1 for p in self._workers.values() if p.is_alive())

    # -- journal hook ----------------------------------------------------------

    def _journal(self, type_: str, job_id: int, **fields) -> None:
        if self.journal is None:
            return
        try:
            # ``ts`` (schema 2) lets replay rebuild span timelines from
            # the lifecycle records themselves — no extra appends on the
            # hot path.
            self.journal.append(type_, job=f"pool-{job_id}",
                                key=self._keys.get(job_id),
                                ts=round(time.time(), 6), **fields)
        except OSError:  # journalling must never take down the batch
            pass

    def _emit(self, job_id: int, event: str, **attrs) -> None:
        """Fire a span event: the ``on_event`` hook (service-side
        SpanLog) plus, when the pool owns a journal, a durable ``span``
        record.  Only events with no lifecycle record of their own come
        through here; terminal transitions are covered by the
        ``done``/``failed``/``dead_letter`` records."""
        if self.on_event is not None:
            try:
                self.on_event(job_id, event, **attrs)
            except Exception:
                pass  # telemetry must never break dispatch
        if self.journal is not None:
            try:
                self.journal.append("span", job=f"pool-{job_id}", ev=event,
                                    ts=round(time.time(), 6), **attrs)
            except OSError:
                pass

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Queue one job; returns its pool-local job id.

        A store hit resolves the job immediately (no worker involved).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._seq += 1
        job_id = self._seq
        self.stats["submitted"] += 1
        key = spec.key() if self.store is not None else None
        self._keys[job_id] = key
        if key is not None:
            record = self.store.get(key)
            if record is not None:
                self._records[job_id] = record
                self.stats["cached"] += 1
                self._journal("submitted", job_id, label=spec.label(),
                              cached=True)
                if self.on_event is not None:
                    self._emit(job_id, "store_hit")
                return job_id
        self._journal("submitted", job_id, label=spec.label())
        self._pending[job_id] = spec
        self._attempts[job_id] = 0
        if self._degraded:
            self._run_serial(job_id, spec)
            return job_id
        self.start()
        self._cancelling = False
        self._backlog.append(job_id)
        self._maybe_respawn()
        self._assign_backlog()
        return job_id

    def cancel_pending(self) -> None:
        """Flush every job that has not been handed to a worker."""
        self._cancelling = True
        for job_id in list(self._backlog):
            self._resolve_cancelled(job_id)
        self._backlog.clear()

    # -- status ----------------------------------------------------------------

    def done(self, job_id: int) -> bool:
        return job_id in self._records

    def record(self, job_id: int) -> Optional[dict]:
        return self._records.get(job_id)

    def status(self, job_id: int) -> str:
        if job_id in self._records:
            record = self._records[job_id]
            if record.get("status") == "dead_letter":
                return "dead_letter"
            return "failed" if record.get("failed") else "done"
        if any(job == job_id for job, _ in self._assigned.values()):
            return "running"
        if job_id in self._pending:
            return "queued"
        return "unknown"

    def attempts(self, job_id: int) -> int:
        """Deliveries so far for one job (redelivery accounting)."""
        return self._attempts.get(job_id, 0)

    def dead_letters(self) -> List[dict]:
        """Every dead-letter record resolved so far."""
        return [dict(r, job_id=job_id) for job_id, r in self._records.items()
                if r.get("status") == "dead_letter"]

    def lease_snapshot(self) -> Dict[int, dict]:
        """Live leases: ``{pid: {job, expires_in_s, suspect}}``."""
        now = time.monotonic()
        return {pid: {"job": job,
                      "expires_in_s": self._lease_deadline.get(pid, 0.0) - now,
                      "suspect": pid in self._suspect}
                for pid, (job, _) in self._assigned.items()}

    def stats_snapshot(self) -> dict:
        snapshot = dict(self.stats)
        snapshot["trace_evictions"] = sum(self._evictions_by_pid.values())
        trace_store = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                       "fetched": 0, "quarantined": 0}
        for per_worker in self._trace_stats_by_pid.values():
            for name in trace_store:
                trace_store[name] += per_worker.get(name, 0)
        snapshot["trace_store"] = trace_store
        snapshot["workers"] = self.alive_workers()
        snapshot["degraded"] = self._degraded
        snapshot["pending"] = len(self._pending)
        snapshot["leases"] = len(self._assigned)
        return snapshot

    def telemetry_snapshots(self) -> List[dict]:
        """Latest cumulative metrics snapshot per worker process.

        Merge with the parent's registry via
        :func:`repro.obs.telemetry.merge_snapshots` for a fabric-wide
        view; snapshots of dead workers are retained, so their final
        counts are never lost."""
        return list(self._telemetry_by_pid.values())

    # -- the event loop --------------------------------------------------------

    def tick(self, block_s: float = 0.05) -> None:
        """One scheduling step: collect results, enforce deadlines and
        leases, reap dead workers, hand out backlog, degrade when the
        fleet is gone."""
        self._drain_messages(block_s if self._pending else 0.0)
        self._enforce_timeouts()
        self._enforce_leases()
        self._reap_dead_workers()
        if self._pending and not self._degraded and not self.alive_workers():
            self._degraded = True
            log_event(_LOG, "pool.degraded",
                      deaths=self.stats["worker_deaths"])
        if self._degraded:
            self._run_backlog_serially()
        else:
            self._assign_backlog()

    def wait(self, job_ids: Optional[Sequence[int]] = None,
             deadline_s: Optional[float] = None) -> None:
        """Block until the given jobs (default: all) are resolved."""
        target = set(job_ids) if job_ids is not None else None
        start = time.monotonic()
        while True:
            unresolved = (self._pending if target is None
                          else target & set(self._pending))
            if not unresolved:
                return
            if (deadline_s is not None
                    and time.monotonic() - start > deadline_s):
                raise TimeoutError(
                    f"{len(unresolved)} job(s) unresolved after "
                    f"{deadline_s}s")
            self.tick()

    def run_batch(self, specs: Sequence[JobSpec]) -> List[dict]:
        """Submit ``specs``, wait for all, return records in order."""
        ids = [self.submit(spec) for spec in specs]
        self.wait(ids)
        return [self._records[job_id] for job_id in ids]

    # -- internals -------------------------------------------------------------

    def _assign_backlog(self) -> None:
        """Hand backlog jobs to idle workers (parent-side dispatch)."""
        if not self._started or self._cancelling:
            return
        for pid, proc in self._workers.items():
            if not self._backlog:
                return
            if pid in self._assigned or not proc.is_alive():
                continue
            job_id = self._backlog.pop(0)
            if job_id not in self._pending:  # already resolved (cancel)
                continue
            attempt = self._attempts.get(job_id, 0) + 1
            self._attempts[job_id] = attempt
            self._worker_qs[pid].put((job_id, self._pending[job_id], attempt))
            now = time.monotonic()
            self._assigned[pid] = (job_id, now)
            self._lease_deadline[pid] = now + self.lease_s
            self._suspect.pop(pid, None)
            self.stats["dispatched"] += 1
            self._journal("leased", job_id, attempt=attempt, pid=pid)

    def _drain_messages(self, block_s: float = 0.0) -> None:
        if self._result_q is None:
            return
        block = block_s > 0.0
        while True:
            try:
                msg = self._result_q.get(timeout=block_s) if block \
                    else self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            block = False  # only block for the first message per tick
            kind, job_id, pid, payload, evictions, trace_stats, tel = msg
            if evictions is not None:
                self._evictions_by_pid[pid] = evictions
            if trace_stats is not None:
                self._trace_stats_by_pid[pid] = trace_stats
            if tel is not None:
                self._telemetry_by_pid[pid] = tel
            if pid in self._assigned:
                # Any sign of life renews the lease and clears suspicion.
                self._lease_deadline[pid] = time.monotonic() + self.lease_s
                self._suspect.pop(pid, None)
            if kind == "hb":
                self.stats["heartbeats"] += 1
            elif kind == "start":
                self._emit(job_id, "started", pid=pid)
            elif kind == "done":
                self._assigned.pop(pid, None)
                self._lease_deadline.pop(pid, None)
                self._emit(job_id, "simulated", pid=pid)
                self._resolve(job_id, payload)
            elif kind == "error":
                self._assigned.pop(pid, None)
                self._lease_deadline.pop(pid, None)
                spec = self._pending.get(job_id)
                if spec is not None:
                    self._resolve(job_id, failure_record(
                        spec, f"worker error: {payload}"))
            # "bye" only carries the final eviction count.

    def _resolve(self, job_id: int, record: dict) -> None:
        if job_id not in self._pending and job_id in self._records:
            return
        self._pending.pop(job_id, None)
        self._records[job_id] = record
        if record.get("status") == "dead_letter":
            self.stats["dead_lettered"] += 1
            self._journal("dead_letter", job_id, error=record.get("error"))
        elif record.get("failed"):
            self.stats["failed"] += 1
            self._journal("failed", job_id, error=record.get("error"))
        else:
            self.stats["completed"] += 1
            key = self._keys.get(job_id)
            if self.store is not None and key is not None:
                self.store.put(key, record)
                self._emit(job_id, "stored")
            self._journal("done", job_id)

    def _resolve_cancelled(self, job_id: int) -> None:
        spec = self._pending.get(job_id)
        if spec is None:
            return
        self._pending.pop(job_id, None)
        self._records[job_id] = failure_record(spec, "cancelled",
                                               status="cancelled")
        self.stats["cancelled"] += 1
        self._journal("failed", job_id, error="cancelled")

    def _redeliver_or_dead_letter(self, job_id: int, cause: str) -> None:
        """A delivery was lost (dead worker / reclaimed lease): hand the
        job to a fresh worker unless its redelivery budget is spent."""
        spec = self._pending.get(job_id)
        if spec is None:
            return
        attempts = self._attempts.get(job_id, 0)
        if attempts > self.max_redeliveries:
            log_event(_LOG, "pool.dead_letter", job=f"pool-{job_id}",
                      trace=getattr(spec, "trace_id", None),
                      attempts=attempts, cause=cause)
            self._resolve(job_id, failure_record(
                spec, f"dead-lettered after {attempts} deliveries "
                      f"(last: {cause})", status="dead_letter"))
            return
        self.stats["redeliveries"] += 1
        self._emit(job_id, "redelivered", cause=cause, attempt=attempts)
        self._backlog.insert(0, job_id)

    def _enforce_timeouts(self) -> None:
        if not self.timeout:
            return
        now = time.monotonic()
        for pid in list(self._assigned):
            job_id, started = self._assigned[pid]
            if now - started <= self.timeout:
                continue
            proc = self._workers.get(pid)
            if proc is not None:
                proc.terminate()
                proc.join(timeout=1.0)
                self._retire_worker(pid)
            self._assigned.pop(pid, None)
            self._lease_deadline.pop(pid, None)
            self._suspect.pop(pid, None)
            spec = self._pending.get(job_id)
            if spec is not None:
                self.stats["timeouts"] += 1
                self._emit(job_id, "timeout", limit_s=self.timeout)
                self._resolve(job_id, failure_record(
                    spec, f"timed out after {self.timeout}s",
                    status="timeout"))
            self._maybe_respawn()

    def _enforce_leases(self) -> None:
        """Reclaim jobs whose lease expired: poll -> terminate -> respawn.

        A lease expiry means no heartbeat arrived in time.  The worker
        gets one grace interval first (``suspect``) — a late heartbeat
        clears it — then is terminated, its job redelivered (or
        dead-lettered), and a replacement spawned.
        """
        if not self.lease_s:
            return
        now = time.monotonic()
        for pid in list(self._assigned):
            deadline = self._lease_deadline.get(pid)
            if deadline is None or now <= deadline:
                continue
            proc = self._workers.get(pid)
            if proc is None or not proc.is_alive():
                continue  # dead, not hung: the reaper owns this pid
            grace_until = self._suspect.get(pid)
            if grace_until is None:
                # Poll first: give one heartbeat interval of grace.
                self._suspect[pid] = now + self.heartbeat_s
                continue
            if now <= grace_until:
                continue
            # Still silent after the grace poll: reclaim.
            self.stats["lease_expired"] += 1
            log_event(_LOG, "pool.lease_expired", pid=pid,
                      job=f"pool-{self._assigned[pid][0]}")
            proc.terminate()
            proc.join(timeout=1.0)
            self._retire_worker(pid)
            job_id, _ = self._assigned.pop(pid)
            self._emit(job_id, "lease_expired", pid=pid)
            self._lease_deadline.pop(pid, None)
            self._suspect.pop(pid, None)
            self._redeliver_or_dead_letter(job_id, "lease expired")
            self._maybe_respawn()

    def _retire_worker(self, pid: int) -> None:
        self._workers.pop(pid, None)
        job_q = self._worker_qs.pop(pid, None)
        if job_q is not None:
            job_q.close()
            job_q.cancel_join_thread()

    def _reap_dead_workers(self) -> None:
        for pid in list(self._workers):
            if self._workers[pid].is_alive():
                continue
            self._retire_worker(pid)
            if self._closed:
                continue
            self.stats["worker_deaths"] += 1
            log_event(_LOG, "pool.worker_died", pid=pid,
                      deaths=self.stats["worker_deaths"])
            died_with = self._assigned.pop(pid, None)
            self._lease_deadline.pop(pid, None)
            self._suspect.pop(pid, None)
            if died_with is not None:
                # The assignment map is parent-side state, so the
                # casualty is known even if the worker died before any
                # message flushed.  Redeliver to a fresh worker within
                # the bounded budget; a repeat offender is poison and
                # dead-letters instead of killing the whole fleet.
                self._emit(died_with[0], "worker_died", pid=pid)
                self._redeliver_or_dead_letter(died_with[0], "worker died")
            self._maybe_respawn()

    def _maybe_respawn(self) -> None:
        if (self._closed or self._degraded
                or self.stats["worker_deaths"] >= self.max_worker_deaths):
            return
        while len(self._workers) < self.n_workers and self._pending:
            self._spawn_worker()

    def _run_backlog_serially(self) -> None:
        for job_id in list(self._backlog):
            if self._cancelling:
                self._resolve_cancelled(job_id)
            elif job_id in self._pending:
                self._run_serial(job_id, self._pending[job_id])
        self._backlog.clear()

    def _run_serial(self, job_id: int, spec: JobSpec) -> None:
        """Execute one job in the parent process (degraded mode)."""
        self.stats["serial_fallbacks"] += 1
        try:
            record = execute_job(spec)
        except Exception as exc:  # pragma: no cover - defensive
            record = failure_record(spec, f"serial execution failed: {exc!r}")
        self._resolve(job_id, record)
