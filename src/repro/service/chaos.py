"""Deterministic chaos harness for the crash-safe job fabric.

Drives a real :class:`~repro.service.server.SimulationService` (journal
+ pool + store on one directory) through seeded fault injection —
worker SIGKILL, whole-fabric crash + restart, journal truncation and
bit-flips, store-entry corruption, stalled heartbeats — and gives tests
the levers to assert the fabric invariant:

    every submitted job eventually reaches exactly one of
    done / failed / dead_letter, and every ``done`` result is
    counter-digest identical to a serial run.

The harness works below the HTTP layer on purpose: the invariant lives
in the service/journal/pool stack, chaos runs stay single-process and
deterministic, and the HTTP surface has its own test module.

All randomness flows from one seeded :class:`random.Random`, so every
"random" victim (worker, record, byte, bit) is reproducible from the
scenario's seed.

``crash()`` is the SIGKILL model: the dispatcher is stopped, workers
are killed, and the journal object is *abandoned* — never flushed,
fsync'd or closed — so recovery sees exactly what a dead process would
have left in the page cache (the journal flushes each append to the
kernel, hence a process kill loses nothing already acknowledged).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.service.journal import Journal
from repro.service.jobs import JobSpec, execute_job
from repro.service.pool import SimulationPool
from repro.service.server import SimulationService
from repro.service.store import ResultStore

#: Terminal statuses a job may legally end in (exactly one of).
TERMINAL = ("done", "failed", "dead_letter")


class ChaosFabric:
    """A restartable service fabric rooted at one directory.

    ``start()`` builds store + journal + pool + service from whatever
    the directory already holds (so a restart recovers); ``crash()``
    kills it without any graceful teardown; ``stop()`` drains cleanly.
    """

    def __init__(self, root, workers: int = 2, seed: int = 0,
                 lease_s: float = 30.0,
                 heartbeat_s: Optional[float] = None,
                 max_redeliveries: int = 2,
                 max_queue: int = 64,
                 timeout: Optional[float] = None,
                 journal_sync: str = "always") -> None:
        self.root = Path(root)
        self.workers = workers
        self.rng = random.Random(seed)
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.max_redeliveries = max_redeliveries
        self.max_queue = max_queue
        self.timeout = timeout
        self.journal_sync = journal_sync
        self.generation = 0
        self.store: Optional[ResultStore] = None
        self.service: Optional[SimulationService] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> SimulationService:
        assert self.service is None, "fabric already running"
        self.generation += 1
        self.store = ResultStore(self.root / "store")
        journal = Journal(self.root / "store" / "journal",
                          sync=self.journal_sync)
        pool = SimulationPool(n_workers=self.workers, store=self.store,
                              timeout=self.timeout,
                              lease_s=self.lease_s,
                              heartbeat_s=self.heartbeat_s,
                              max_redeliveries=self.max_redeliveries)
        self.service = SimulationService(pool, self.store,
                                         max_queue=self.max_queue,
                                         journal=journal)
        self.service.start()
        return self.service

    def crash(self) -> None:
        """Die like a SIGKILL: no drain, no journal close, workers shot."""
        service, self.service = self.service, None
        if service is None:
            return
        service._stop.set()
        service._dispatcher.join(timeout=5.0)
        service.pool.kill()
        # The Journal object is abandoned un-closed on purpose (crash
        # model); drop the handle so the next generation reopens fresh.
        service.journal._fh = None

    def stop(self) -> None:
        """Graceful teardown (drain + journal close)."""
        service, self.service = self.service, None
        if service is not None:
            service.drain(timeout_s=30.0)
            service.stop()

    def restart(self) -> SimulationService:
        self.crash()
        return self.start()

    # -- job plumbing ----------------------------------------------------------

    def submit(self, specs: Sequence[JobSpec]) -> List[str]:
        return [self.service.submit(spec)["id"] for spec in specs]

    def ensure_submitted(self, specs: Sequence[JobSpec]) -> List[str]:
        """Client-retry model: (re)submit every spec the service does
        not currently track.  After a crash, submissions that were never
        durably acknowledged are exactly the ones a real client would
        retry on its connection error."""
        known = {entry.get("key") for entry in self.service.jobs_snapshot()}
        return [self.service.submit(spec)["id"] for spec in specs
                if spec.key() not in known]

    def wait_all(self, timeout_s: float = 300.0) -> Dict[str, dict]:
        """Wait until every tracked job is terminal; {id: public entry}."""
        import time
        deadline = time.monotonic() + timeout_s
        while True:
            entries = {e["id"]: e for e in self.service.jobs_snapshot()}
            if all(e["status"] in TERMINAL for e in entries.values()):
                return entries
            if time.monotonic() > deadline:
                stuck = [e["id"] for e in entries.values()
                         if e["status"] not in TERMINAL]
                raise TimeoutError(f"jobs stuck after {timeout_s}s: {stuck}")
            time.sleep(0.05)

    # -- fault injectors (all seeded through self.rng) -------------------------

    def kill_random_worker(self) -> int:
        """SIGKILL one live worker (preferring one with a job in flight,
        so the kill actually costs a delivery); returns its pid."""
        pool = self.service.pool
        busy = sorted(pid for pid in pool._assigned
                      if pid in pool._workers and pool._workers[pid].is_alive())
        victims = busy or sorted(pid for pid, proc in pool._workers.items()
                                 if proc.is_alive())
        assert victims, "no live worker to kill"
        pid = self.rng.choice(victims)
        os.kill(pid, signal.SIGKILL)
        return pid

    def journal_segments(self) -> List[Path]:
        root = self.root / "store" / "journal"
        return sorted(root.glob("segment-*.jrnl"))

    def truncate_journal_tail(self, n_bytes: int = 25) -> int:
        """Torn-write model: chop ``n_bytes`` off the newest segment."""
        segments = self.journal_segments()
        assert segments, "no journal segment to truncate"
        path = segments[-1]
        size = path.stat().st_size
        keep = max(size - n_bytes, 0)
        with open(path, "rb+") as fh:
            fh.truncate(keep)
        return size - keep

    def flip_journal_bit(self) -> int:
        """Bit-rot model: flip one random bit in a random journal byte
        (never the final line, which is the torn-tail injector's job).
        Returns the absolute byte offset flipped."""
        segments = self.journal_segments()
        assert segments, "no journal segment to corrupt"
        path = self.rng.choice(segments)
        data = bytearray(path.read_bytes())
        assert data, "journal segment empty"
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        offset = self.rng.randrange(max(last_line_start, 1))
        data[offset] ^= 1 << self.rng.randrange(8)
        path.write_bytes(bytes(data))
        return offset

    def corrupt_store_entry(self, key: Optional[str] = None) -> str:
        """Flip one bit in one stored result record; returns its key."""
        store = self.store
        if key is None:
            keys = store.keys()
            assert keys, "no store entry to corrupt"
            key = self.rng.choice(keys)
        path = store._path(key)
        data = bytearray(path.read_bytes())
        offset = self.rng.randrange(len(data))
        data[offset] ^= 1 << self.rng.randrange(8)
        path.write_bytes(bytes(data))
        return key


# -- cluster fabric ------------------------------------------------------------


def _node_main(coordinator_url: str, store_dir: str, node_id: str,
               workers: int, heartbeat_s: float,
               close_fds: Sequence[int] = ()) -> None:
    """Entry point of one worker-node *process* (its own process group,
    so a SIGKILL aimed at the node takes its pool workers down too —
    the honest node-death model: nothing on that host survives).

    ``close_fds`` are file descriptors inherited across the fork that
    the node must not hold — above all the coordinator's *listening*
    socket, which would otherwise keep the port bound after a
    coordinator crash and block the same-port restart."""
    os.setpgrp()
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    from repro.service.cluster.node import run_node
    run_node(coordinator_url, store_dir, node_id=node_id, workers=workers,
             heartbeat_s=heartbeat_s)


class ClusterChaosFabric:
    """A restartable coordinator + real node processes on one directory.

    The coordinator (state machine + asyncio front door) runs in-process
    so tests can crash it surgically and reach into its registry; nodes
    are genuine OS processes wrapping real pools, killed with
    ``SIGKILL`` to the whole process group.  The port is pinned after
    the first ``start()`` so a coordinator restart reuses the same
    address and live nodes reconnect on their own.
    """

    def __init__(self, root, seed: int = 0,
                 node_workers: int = 1,
                 suspect_after_s: float = 0.6,
                 dead_after_s: float = 1.2,
                 heartbeat_s: float = 0.15,
                 max_queue: int = 256,
                 journal_sync: str = "always") -> None:
        self.root = Path(root)
        self.rng = random.Random(seed)
        self.node_workers = node_workers
        self.suspect_after_s = suspect_after_s
        self.dead_after_s = dead_after_s
        self.heartbeat_s = heartbeat_s
        self.max_queue = max_queue
        self.journal_sync = journal_sync
        self.generation = 0
        self.port = 0  # pinned after the first start()
        self.store: Optional[ResultStore] = None
        self.service = None
        self.door = None
        # fork, not spawn: spawn re-imports the caller's __main__ (hostile
        # under pytest), and the pool already forks under threaded parents.
        self._ctx = multiprocessing.get_context("fork")
        self.nodes: Dict[str, multiprocessing.Process] = {}
        self._node_seq = 0

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        assert self.service is None, "coordinator already running"
        from repro.service.cluster.frontdoor import create_coordinator
        self.generation += 1
        self.door, self.service = create_coordinator(
            port=self.port, store_dir=str(self.root / "coord"),
            max_queue=self.max_queue, journal_sync=self.journal_sync,
            suspect_after_s=self.suspect_after_s,
            dead_after_s=self.dead_after_s)
        self.store = self.service.store
        self.service.start()
        self.door.start()
        self.port = self.door.port
        return self.service

    def crash(self) -> None:
        """Coordinator SIGKILL model: front door gone mid-connection,
        journal abandoned un-flushed, node processes left running."""
        door, self.door = self.door, None
        service, self.service = self.service, None
        if door is not None:
            door.stop()
        if service is not None and service.journal is not None:
            service.journal._fh = None  # abandoned, never closed
        self._crashed_service = service

    def restart(self):
        self.crash()
        return self.start()

    def stop(self) -> None:
        for node_id in list(self.nodes):
            self.stop_node(node_id)
        door, self.door = self.door, None
        service, self.service = self.service, None
        if service is not None:
            service.begin_drain()
        if door is not None:
            door.stop()
        if service is not None:
            service.stop()

    # -- nodes -----------------------------------------------------------------

    def spawn_node(self, node_id: Optional[str] = None,
                   workers: Optional[int] = None) -> str:
        self._node_seq += 1
        node_id = node_id or f"chaos-node-{self._node_seq}"
        listen_fds = []
        if self.door is not None and self.door._server is not None:
            listen_fds = [s.fileno() for s in self.door._server.sockets]
        proc = self._ctx.Process(
            target=_node_main,
            args=(self.url, str(self.root / node_id), node_id,
                  workers or self.node_workers, self.heartbeat_s,
                  listen_fds),
            daemon=False)  # daemonic processes cannot fork pool workers
        proc.start()
        self.nodes[node_id] = proc
        return node_id

    def wait_nodes_alive(self, n: int, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while True:
            roster = self.service.roster() if self.service else []
            if sum(1 for e in roster if e["state"] == "alive") >= n:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(roster)} node(s) registered after "
                    f"{timeout_s}s (wanted {n})")
            time.sleep(0.05)

    def kill_busy_node(self, timeout_s: float = 30.0) -> str:
        """Wait until some node provably holds a lease, then SIGKILL it
        — guarantees the kill costs a delivery (the reclaim/redelivery
        path must run for the batch to finish)."""
        deadline = time.monotonic() + timeout_s
        while True:
            busy = sorted(e["node"] for e in self.service.roster()
                          if e["leased"] > 0 and e["node"] in self.nodes
                          and self.nodes[e["node"]].is_alive())
            if busy:
                return self.kill_node(self.rng.choice(busy))
            if time.monotonic() > deadline:
                raise TimeoutError("no node ever held a lease")
            time.sleep(0.02)

    def kill_node(self, node_id: Optional[str] = None) -> str:
        """SIGKILL one node's whole process group (agent + pool
        workers); the coordinator only learns via missed heartbeats."""
        live = sorted(nid for nid, proc in self.nodes.items()
                      if proc.is_alive())
        assert live, "no live node to kill"
        node_id = node_id or self.rng.choice(live)
        proc = self.nodes[node_id]
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.join(timeout=10.0)
        return node_id

    def stop_node(self, node_id: str, timeout_s: float = 30.0) -> None:
        """Graceful node shutdown (SIGTERM: finish in-flight, report,
        exit)."""
        proc = self.nodes.pop(node_id, None)
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=timeout_s)
        if proc.is_alive():  # refuse to leak processes out of a test
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.join(timeout=5.0)

    # -- job plumbing ----------------------------------------------------------

    def submit(self, specs: Sequence[JobSpec]) -> List[str]:
        return [self.service.submit(spec)["id"] for spec in specs]

    def ensure_submitted(self, specs: Sequence[JobSpec]) -> List[str]:
        known = {entry.get("key") for entry in self.service.jobs_snapshot()}
        return [self.service.submit(spec)["id"] for spec in specs
                if spec.key() not in known]

    def wait_all(self, timeout_s: float = 300.0) -> Dict[str, dict]:
        deadline = time.monotonic() + timeout_s
        while True:
            entries = {e["id"]: e for e in self.service.jobs_snapshot()}
            if entries and all(e["status"] in TERMINAL
                               for e in entries.values()):
                return entries
            if time.monotonic() > deadline:
                stuck = [e["id"] for e in entries.values()
                         if e["status"] not in TERMINAL]
                raise TimeoutError(f"jobs stuck after {timeout_s}s: {stuck}")
            time.sleep(0.05)


# -- oracle --------------------------------------------------------------------


def serial_digests(specs: Sequence[JobSpec]) -> Dict[str, str]:
    """Ground truth: {result key: counter digest} from serial execution."""
    digests: Dict[str, str] = {}
    for spec in specs:
        record = execute_job(spec)
        assert not record.get("failed"), record.get("error")
        digests[spec.key()] = record["manifest"]["counter_digest"]
    return digests


def fabric_digests(store: ResultStore,
                   specs: Sequence[JobSpec]) -> Dict[str, str]:
    """{result key: counter digest} as the fabric's store recorded them."""
    digests: Dict[str, str] = {}
    for spec in specs:
        record = store.get(spec.key())
        if record is not None:
            digests[spec.key()] = record["manifest"]["counter_digest"]
    return digests


def assert_invariant(entries: Dict[str, dict],
                     store: ResultStore,
                     specs: Sequence[JobSpec],
                     expected: Dict[str, str]) -> None:
    """The fabric invariant, as one assertion helper.

    * every tracked job is in exactly one terminal state;
    * every submitted spec is tracked by at least one job;
    * every ``done`` result in the store is counter-digest identical to
      the serial oracle.
    """
    for entry in entries.values():
        assert entry["status"] in TERMINAL, \
            f"{entry['id']} not terminal: {entry['status']}"
    tracked = {e.get("key") for e in entries.values()}
    for spec in specs:
        assert spec.key() in tracked, f"lost job: {spec.label()}"
    for key, digest in fabric_digests(store, specs).items():
        assert digest == expected[key], f"digest mismatch for {key}"
