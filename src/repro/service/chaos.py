"""Deterministic chaos harness for the crash-safe job fabric.

Drives a real :class:`~repro.service.server.SimulationService` (journal
+ pool + store on one directory) through seeded fault injection —
worker SIGKILL, whole-fabric crash + restart, journal truncation and
bit-flips, store-entry corruption, stalled heartbeats — and gives tests
the levers to assert the fabric invariant:

    every submitted job eventually reaches exactly one of
    done / failed / dead_letter, and every ``done`` result is
    counter-digest identical to a serial run.

The harness works below the HTTP layer on purpose: the invariant lives
in the service/journal/pool stack, chaos runs stay single-process and
deterministic, and the HTTP surface has its own test module.

All randomness flows from one seeded :class:`random.Random`, so every
"random" victim (worker, record, byte, bit) is reproducible from the
scenario's seed.

``crash()`` is the SIGKILL model: the dispatcher is stopped, workers
are killed, and the journal object is *abandoned* — never flushed,
fsync'd or closed — so recovery sees exactly what a dead process would
have left in the page cache (the journal flushes each append to the
kernel, hence a process kill loses nothing already acknowledged).
"""

from __future__ import annotations

import os
import random
import signal
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.service.journal import Journal
from repro.service.jobs import JobSpec, execute_job
from repro.service.pool import SimulationPool
from repro.service.server import SimulationService
from repro.service.store import ResultStore

#: Terminal statuses a job may legally end in (exactly one of).
TERMINAL = ("done", "failed", "dead_letter")


class ChaosFabric:
    """A restartable service fabric rooted at one directory.

    ``start()`` builds store + journal + pool + service from whatever
    the directory already holds (so a restart recovers); ``crash()``
    kills it without any graceful teardown; ``stop()`` drains cleanly.
    """

    def __init__(self, root, workers: int = 2, seed: int = 0,
                 lease_s: float = 30.0,
                 heartbeat_s: Optional[float] = None,
                 max_redeliveries: int = 2,
                 max_queue: int = 64,
                 timeout: Optional[float] = None,
                 journal_sync: str = "always") -> None:
        self.root = Path(root)
        self.workers = workers
        self.rng = random.Random(seed)
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.max_redeliveries = max_redeliveries
        self.max_queue = max_queue
        self.timeout = timeout
        self.journal_sync = journal_sync
        self.generation = 0
        self.store: Optional[ResultStore] = None
        self.service: Optional[SimulationService] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> SimulationService:
        assert self.service is None, "fabric already running"
        self.generation += 1
        self.store = ResultStore(self.root / "store")
        journal = Journal(self.root / "store" / "journal",
                          sync=self.journal_sync)
        pool = SimulationPool(n_workers=self.workers, store=self.store,
                              timeout=self.timeout,
                              lease_s=self.lease_s,
                              heartbeat_s=self.heartbeat_s,
                              max_redeliveries=self.max_redeliveries)
        self.service = SimulationService(pool, self.store,
                                         max_queue=self.max_queue,
                                         journal=journal)
        self.service.start()
        return self.service

    def crash(self) -> None:
        """Die like a SIGKILL: no drain, no journal close, workers shot."""
        service, self.service = self.service, None
        if service is None:
            return
        service._stop.set()
        service._dispatcher.join(timeout=5.0)
        service.pool.kill()
        # The Journal object is abandoned un-closed on purpose (crash
        # model); drop the handle so the next generation reopens fresh.
        service.journal._fh = None

    def stop(self) -> None:
        """Graceful teardown (drain + journal close)."""
        service, self.service = self.service, None
        if service is not None:
            service.drain(timeout_s=30.0)
            service.stop()

    def restart(self) -> SimulationService:
        self.crash()
        return self.start()

    # -- job plumbing ----------------------------------------------------------

    def submit(self, specs: Sequence[JobSpec]) -> List[str]:
        return [self.service.submit(spec)["id"] for spec in specs]

    def ensure_submitted(self, specs: Sequence[JobSpec]) -> List[str]:
        """Client-retry model: (re)submit every spec the service does
        not currently track.  After a crash, submissions that were never
        durably acknowledged are exactly the ones a real client would
        retry on its connection error."""
        known = {entry.get("key") for entry in self.service.jobs_snapshot()}
        return [self.service.submit(spec)["id"] for spec in specs
                if spec.key() not in known]

    def wait_all(self, timeout_s: float = 300.0) -> Dict[str, dict]:
        """Wait until every tracked job is terminal; {id: public entry}."""
        import time
        deadline = time.monotonic() + timeout_s
        while True:
            entries = {e["id"]: e for e in self.service.jobs_snapshot()}
            if all(e["status"] in TERMINAL for e in entries.values()):
                return entries
            if time.monotonic() > deadline:
                stuck = [e["id"] for e in entries.values()
                         if e["status"] not in TERMINAL]
                raise TimeoutError(f"jobs stuck after {timeout_s}s: {stuck}")
            time.sleep(0.05)

    # -- fault injectors (all seeded through self.rng) -------------------------

    def kill_random_worker(self) -> int:
        """SIGKILL one live worker (preferring one with a job in flight,
        so the kill actually costs a delivery); returns its pid."""
        pool = self.service.pool
        busy = sorted(pid for pid in pool._assigned
                      if pid in pool._workers and pool._workers[pid].is_alive())
        victims = busy or sorted(pid for pid, proc in pool._workers.items()
                                 if proc.is_alive())
        assert victims, "no live worker to kill"
        pid = self.rng.choice(victims)
        os.kill(pid, signal.SIGKILL)
        return pid

    def journal_segments(self) -> List[Path]:
        root = self.root / "store" / "journal"
        return sorted(root.glob("segment-*.jrnl"))

    def truncate_journal_tail(self, n_bytes: int = 25) -> int:
        """Torn-write model: chop ``n_bytes`` off the newest segment."""
        segments = self.journal_segments()
        assert segments, "no journal segment to truncate"
        path = segments[-1]
        size = path.stat().st_size
        keep = max(size - n_bytes, 0)
        with open(path, "rb+") as fh:
            fh.truncate(keep)
        return size - keep

    def flip_journal_bit(self) -> int:
        """Bit-rot model: flip one random bit in a random journal byte
        (never the final line, which is the torn-tail injector's job).
        Returns the absolute byte offset flipped."""
        segments = self.journal_segments()
        assert segments, "no journal segment to corrupt"
        path = self.rng.choice(segments)
        data = bytearray(path.read_bytes())
        assert data, "journal segment empty"
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        offset = self.rng.randrange(max(last_line_start, 1))
        data[offset] ^= 1 << self.rng.randrange(8)
        path.write_bytes(bytes(data))
        return offset

    def corrupt_store_entry(self, key: Optional[str] = None) -> str:
        """Flip one bit in one stored result record; returns its key."""
        store = self.store
        if key is None:
            keys = store.keys()
            assert keys, "no store entry to corrupt"
            key = self.rng.choice(keys)
        path = store._path(key)
        data = bytearray(path.read_bytes())
        offset = self.rng.randrange(len(data))
        data[offset] ^= 1 << self.rng.randrange(8)
        path.write_bytes(bytes(data))
        return key


# -- oracle --------------------------------------------------------------------


def serial_digests(specs: Sequence[JobSpec]) -> Dict[str, str]:
    """Ground truth: {result key: counter digest} from serial execution."""
    digests: Dict[str, str] = {}
    for spec in specs:
        record = execute_job(spec)
        assert not record.get("failed"), record.get("error")
        digests[spec.key()] = record["manifest"]["counter_digest"]
    return digests


def fabric_digests(store: ResultStore,
                   specs: Sequence[JobSpec]) -> Dict[str, str]:
    """{result key: counter digest} as the fabric's store recorded them."""
    digests: Dict[str, str] = {}
    for spec in specs:
        record = store.get(spec.key())
        if record is not None:
            digests[spec.key()] = record["manifest"]["counter_digest"]
    return digests


def assert_invariant(entries: Dict[str, dict],
                     store: ResultStore,
                     specs: Sequence[JobSpec],
                     expected: Dict[str, str]) -> None:
    """The fabric invariant, as one assertion helper.

    * every tracked job is in exactly one terminal state;
    * every submitted spec is tracked by at least one job;
    * every ``done`` result in the store is counter-digest identical to
      the serial oracle.
    """
    for entry in entries.values():
        assert entry["status"] in TERMINAL, \
            f"{entry['id']} not terminal: {entry['status']}"
    tracked = {e.get("key") for e in entries.values()}
    for spec in specs:
        assert spec.key() in tracked, f"lost job: {spec.label()}"
    for key, digest in fabric_digests(store, specs).items():
        assert digest == expected[key], f"digest mismatch for {key}"
