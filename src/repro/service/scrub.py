"""Store repair: turn quarantined entries back into runnable jobs.

A quarantined result entry failed its digest check, but a flipped bit
usually leaves most of the JSON readable — enough to recover *what* was
simulated (core name, app, trace lengths) and recompute it from scratch.
Results are content-addressed and simulations deterministic, so a
re-run writes a fresh, valid entry; the quarantined file is evidence
until the recomputation lands.

Only specs built from the stock core factories and suite apps can be
reconstructed this way; a quarantined entry for a custom config is
reported as unrepairable (its submitter still holds the real spec).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro.service.jobs import JobSpec
from repro.service.store import ResultStore


def _spec_from_quarantined(path: Path) -> Optional[JobSpec]:
    """Best-effort JobSpec from a quarantined envelope, or None."""
    try:
        envelope = json.loads(path.read_bytes().decode(errors="replace"))
    except (OSError, json.JSONDecodeError):
        return None
    record = envelope.get("record") if isinstance(envelope, dict) else None
    if not isinstance(record, dict):
        return None
    core = record.get("core")
    app = record.get("app")
    try:
        n_instrs = int(record.get("n_instrs"))
        warmup = int(record.get("warmup"))
    except (TypeError, ValueError):
        return None
    from repro.__main__ import _CORES
    from repro.workloads.suite import SUITE
    if core not in _CORES or app not in SUITE:
        return None
    return JobSpec.make(_CORES[core](), SUITE[app],
                        n_instrs=n_instrs, warmup=warmup)


def quarantined_specs(store: ResultStore) \
        -> Tuple[List[Tuple[Path, JobSpec]], List[str]]:
    """Split the quarantine backlog into (path, rebuilt spec) pairs and
    the names of entries too damaged (or too custom) to reconstruct."""
    repairable: List[Tuple[Path, JobSpec]] = []
    unrepairable: List[str] = []
    for path in store.quarantined_paths():
        spec = _spec_from_quarantined(path)
        if spec is None:
            unrepairable.append(path.name)
        else:
            repairable.append((path, spec))
    return repairable, unrepairable


def repair_quarantined(store: ResultStore, pool) -> dict:
    """Re-run every reconstructable quarantined entry through ``pool``
    (synchronously) and drop the quarantined file once its replacement
    record landed in the store.  Returns a repair report."""
    repairable, unrepairable = quarantined_specs(store)
    report = {"attempted": len(repairable), "repaired": 0,
              "failed": 0, "unrepairable": unrepairable}
    if not repairable:
        return report
    records = pool.run_batch([spec for _, spec in repairable])
    for (path, spec), record in zip(repairable, records):
        if record.get("failed") or store.get(spec.key()) is None:
            report["failed"] += 1
            continue
        try:
            path.unlink()
        except OSError:
            pass
        report["repaired"] += 1
    return report
