"""Distributed simulation fabric: coordinator, nodes, async front door.

One **coordinator** owns the job registry, the bounded priority queue,
the authoritative content-addressed result store and the write-ahead
journal; N **worker nodes** (separate processes or hosts, each wrapping
a lease-based :class:`~repro.service.pool.SimulationPool`) register,
heartbeat and *pull* work over HTTP.  The layer composition:

* :mod:`~repro.service.cluster.coordinator` — the cluster state machine
  (roster, lease-per-node, journal-backed redelivery, cross-sweep
  dedup + in-flight coalescing).  No sockets: pure, lockable state.
* :mod:`~repro.service.cluster.frontdoor` — the asyncio HTTP/1.1 server
  multiplexing client submissions (same JSON API + 429/503 contract as
  the single-process server, plus long-poll job status) and the node
  protocol (``/cluster/register|heartbeat|lease|complete``).
* :mod:`~repro.service.cluster.node` — the node agent: lease, replicate
  (fetch-on-miss with digest verification), simulate, report back with
  span events and telemetry snapshots riding the completion message.
* :mod:`~repro.service.cluster.replica` — the pull-through replica view
  of a content-addressed store (digest keys make replication trivially
  correct: verify the embedded sha256 on receipt, then cache locally).

``repro serve --role coordinator|node`` wires the pieces up.
"""

from repro.service.cluster.coordinator import (  # noqa: F401
    ClusterService,
    UnknownNodeError,
)
from repro.service.cluster.frontdoor import (  # noqa: F401
    ClusterFrontDoor,
    serve_coordinator,
)
from repro.service.cluster.node import ClusterNode, run_node  # noqa: F401
from repro.service.cluster.replica import ReplicaStore  # noqa: F401
