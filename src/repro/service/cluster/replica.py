"""Pull-through replica of a content-addressed result store.

A node keeps its own local :class:`~repro.service.store.ResultStore` and
treats the coordinator's store as the authority.  A read tries the local
store first; on a miss it fetches the wire envelope for the key
(``GET /results/<key>`` via the injected ``fetch`` callable), runs the
exact same validation a local read would — schema, key, and the embedded
sha256 against the canonical re-serialisation
(:func:`~repro.service.store.verify_envelope`) — and only then caches
the record locally.  Content addressing makes this trivially correct:
the local write re-encodes canonically, producing bytes identical to the
authority's, so replicas can never diverge and a poisoned or truncated
wire payload is rejected before it touches disk.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.service.store import ResultStore, verify_envelope


class ReplicaStore:
    """Local store + fetch-on-miss against an authoritative peer.

    ``fetch(key)`` returns the peer's envelope dict (the JSON body of
    ``GET /results/<key>``) or ``None`` on a miss; transport errors
    should be mapped to ``None`` by the caller so a coordinator hiccup
    degrades to "recompute locally", never to a crash.
    """

    def __init__(self, local: ResultStore,
                 fetch: Callable[[str], Optional[dict]]) -> None:
        self.local = local
        self._fetch = fetch
        self.stats = {"local_hits": 0, "fetched": 0, "fetch_misses": 0,
                      "verify_failures": 0}

    def get(self, key: str) -> Optional[dict]:
        """The validated record for ``key``: local, else fetched +
        verified + cached, else None."""
        record = self.local.get(key)
        if record is not None:
            self.stats["local_hits"] += 1
            return record
        envelope = self._fetch(key)
        if envelope is None:
            self.stats["fetch_misses"] += 1
            return None
        record = verify_envelope(key, envelope)
        if record is None:
            self.stats["verify_failures"] += 1
            return None
        # Canonical re-encode: byte-identical to the authority's entry.
        self.local.put(key, record)
        self.stats["fetched"] += 1
        return record

    def __contains__(self, key: str) -> bool:
        return key in self.local

    def stats_snapshot(self) -> dict:
        return dict(self.stats)
