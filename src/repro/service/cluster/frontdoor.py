"""Async front door for the cluster coordinator.

The single-process service uses one thread per connection
(``ThreadingHTTPServer``) — fine for a handful of clients, hopeless for
a fleet of nodes plus thousands of concurrent submitters.  The cluster
front door replaces it with one asyncio event loop (running in its own
thread so the blocking service objects need no rewrite) that speaks
enough HTTP/1.1 for this API: keep-alive connections, ``Content-Length``
bodies, nothing else.

The client-facing routes keep the single-process server's JSON shapes
and availability contract byte-for-byte — ``POST /jobs`` (single or
batch) answers 202 with accepted entries, 429 + ``Retry-After`` when the
bounded queue fills, 503 + ``Retry-After`` while draining — plus one
cluster extra: ``GET /jobs/<id>?wait=S`` **long-polls**, parking the
request on an asyncio event until the job turns terminal (or S seconds
pass), so thousands of waiting clients cost events, not threads.

Node-facing routes (``POST /cluster/register|heartbeat|lease|complete``)
carry the pull protocol; ``lease`` long-polls on a global work event so
idle nodes learn of new work in one round-trip without hammering the
queue.  A liveness tick runs as a loop task, escalating silent nodes
alive -> suspect -> dead (lease reclaim + redelivery).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import threading
import urllib.parse
from pathlib import Path
from typing import Optional, Tuple

from repro.obs.telemetry import configure_logging, get_logger, log_event
from repro.service.cluster.coordinator import ClusterService, UnknownNodeError
from repro.service.journal import Journal
from repro.service.server import (DEFAULT_PRIORITY, RETRY_AFTER_S,
                                  BadJobError, DrainingError, QueueFullError,
                                  spec_from_request)
from repro.service.store import ResultStore

_LOG = get_logger("service.cluster.frontdoor")

#: Upper bound on any single long-poll park (client or node side).
LONG_POLL_CAP_S = 30.0
#: Lost-wakeup fallback: parked lease waits re-check at least this often.
POLL_SLICE_S = 0.25


class ClusterFrontDoor:
    """One asyncio HTTP server in a dedicated thread."""

    def __init__(self, service: ClusterService,
                 host: str = "127.0.0.1", port: int = 0,
                 tick_s: float = 0.05) -> None:
        self.service = service
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.tick_s = tick_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        #: job id -> event set when that job turns terminal (loop thread).
        self._job_events = {}
        self._work_event: Optional[asyncio.Event] = None
        service.on_terminal = self._notify_terminal
        service.on_enqueued = self._notify_enqueued

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run_loop,
                                        name="cluster-frontdoor",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            raise self._start_error

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._loop = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port))
        except OSError as exc:
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._work_event = asyncio.Event()
        self._tick_task = loop.create_task(self._tick_forever())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:  # parked long-polls + the tick task
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    async def _tick_forever(self) -> None:
        while True:
            await asyncio.sleep(self.tick_s)
            self.service.tick()

    # -- cross-thread notifications -------------------------------------------

    def _notify_terminal(self, job_id: str) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._set_job_event, job_id)

    def _set_job_event(self, job_id: str) -> None:
        event = self._job_events.pop(job_id, None)
        if event is not None:
            event.set()

    def _notify_enqueued(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._set_work_event)

    def _set_work_event(self) -> None:
        if self._work_event is not None:
            self._work_event.set()

    # -- HTTP plumbing ---------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError,
                        asyncio.LimitOverrunError, ConnectionError):
                    return
                lines = head.decode("latin-1").split("\r\n")
                try:
                    method, target, version = lines[0].split(" ", 2)
                except ValueError:
                    return
                headers = {}
                for line in lines[1:]:
                    if ":" in line:
                        name, value = line.split(":", 1)
                        headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", 0))
                except ValueError:
                    length = 0
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload, extra, ctype = \
                        await self._dispatch(method, target, body)
                except Exception as exc:  # route bug: 500, keep serving
                    log_event(_LOG, "frontdoor.error", target=target,
                              error=repr(exc))
                    status, payload, extra, ctype = \
                        500, {"error": f"internal error: {exc}"}, {}, None
                raw = payload if isinstance(payload, bytes) else \
                    (json.dumps(payload, sort_keys=True) + "\n").encode()
                head_lines = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                    f"Content-Type: "
                    f"{ctype or 'application/json'}",
                    f"Content-Length: {len(raw)}",
                ]
                for name, value in (extra or {}).items():
                    head_lines.append(f"{name}: {value}")
                close = (headers.get("connection", "").lower() == "close"
                         or version == "HTTP/1.0")
                head_lines.append(
                    "Connection: close" if close else
                    "Connection: keep-alive")
                writer.write(("\r\n".join(head_lines) + "\r\n\r\n")
                             .encode() + raw)
                await writer.drain()
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes
                        ) -> Tuple[int, object, dict, Optional[str]]:
        url = urllib.parse.urlsplit(target)
        path = url.path
        query = urllib.parse.parse_qs(url.query)
        if method == "GET":
            return await self._get(path, query)
        if method == "POST":
            return await self._post(path, query, body)
        return 405, {"error": f"method {method} not allowed"}, {}, None

    async def _get(self, path: str, query: dict):
        service = self.service
        if path == "/healthz":
            roster = service.roster()
            return 200, {
                "status": "draining" if service.draining else "ok",
                "role": "coordinator",
                "workers": sum(n["capacity"] for n in roster
                               if n["state"] != "dead"),
                "nodes": roster,
            }, {}, None
        if path == "/stats":
            return 200, service.stats(), {}, None
        if path == "/metrics":
            text = service.metrics_text()
            if text is None:
                return 404, {"error": "telemetry is disabled"}, {}, None
            return (200, text.encode(), {},
                    "text/plain; version=0.0.4; charset=utf-8")
        if path == "/jobs":
            status = (query.get("status") or [None])[0]
            return 200, {"jobs": service.jobs_snapshot(status)}, {}, None
        if path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            if service.spans is None:
                return 404, {"error": "telemetry is disabled"}, {}, None
            trace = service.job_trace(job_id)
            if trace is None:
                return 404, {"error": "no trace for that job"}, {}, None
            return 200, trace, {}, None
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            wait_s = 0.0
            try:
                wait_s = float((query.get("wait") or [0.0])[0])
            except ValueError:
                pass
            job = service.job(job_id)
            if job is not None and wait_s > 0 \
                    and job["status"] not in ("done", "failed",
                                              "dead_letter"):
                job = await self._long_poll_job(job_id, wait_s)
            if job is None:
                return 404, {"error": "no such job"}, {}, None
            return 200, job, {}, None
        match = re.fullmatch(r"/results/([0-9a-f]+)", path)
        if match:
            raw = service.store.get_bytes(match.group(1))
            if raw is None:
                return 404, {"error": "no such result"}, {}, None
            return 200, raw, {}, None
        return 404, {"error": "unknown endpoint"}, {}, None

    async def _long_poll_job(self, job_id: str, wait_s: float):
        """Park until ``job_id`` turns terminal or the wait expires."""
        event = self._job_events.get(job_id)
        if event is None:
            event = self._job_events[job_id] = asyncio.Event()
        # Re-check after registering: the terminal notification may have
        # fired between the status read and the event creation.
        job = self.service.job(job_id)
        if job is not None and job["status"] in ("done", "failed",
                                                 "dead_letter"):
            return job
        try:
            await asyncio.wait_for(event.wait(),
                                   timeout=min(wait_s, LONG_POLL_CAP_S))
        except asyncio.TimeoutError:
            pass
        return self.service.job(job_id)

    async def _post(self, path: str, query: dict, body: bytes):
        service = self.service
        if path.startswith("/cluster/"):
            return await self._post_cluster(path, body)
        if path == "/scrub":
            repair = (query.get("repair") or ["0"])[0] == "1"
            return 200, service.scrub(repair=repair), {}, None
        if path != "/jobs":
            return 404, {"error": "unknown endpoint"}, {}, None
        if service.draining:
            return (503, {"error": "service is draining",
                          "retry_after_s": RETRY_AFTER_S},
                    {"Retry-After": str(RETRY_AFTER_S)}, None)
        try:
            parsed = json.loads(body or b"{}")
        except (ValueError, json.JSONDecodeError):
            return 400, {"error": "invalid JSON body"}, {}, None
        raw_jobs = (parsed.get("jobs", [parsed])
                    if isinstance(parsed, dict) else None)
        if not isinstance(raw_jobs, list) or not raw_jobs:
            return (400, {"error": "submit a job object or "
                                   "{'jobs': [...]}"}, {}, None)
        try:
            specs = [(spec_from_request(job),
                      int(job.get("priority", DEFAULT_PRIORITY))
                      if isinstance(job, dict) else DEFAULT_PRIORITY)
                     for job in raw_jobs]
        except BadJobError as exc:
            return 400, {"error": str(exc)}, {}, None
        accepted = []
        try:
            for spec, priority in specs:
                accepted.append(service.submit(spec, priority))
        except QueueFullError as exc:
            return (429, {"error": str(exc), "accepted": accepted,
                          "retry_after_s": RETRY_AFTER_S},
                    {"Retry-After": str(RETRY_AFTER_S)}, None)
        except DrainingError as exc:
            return (503, {"error": str(exc), "accepted": accepted,
                          "retry_after_s": RETRY_AFTER_S},
                    {"Retry-After": str(RETRY_AFTER_S)}, None)
        return 202, {"jobs": accepted}, {}, None

    async def _post_cluster(self, path: str, body: bytes):
        service = self.service
        try:
            message = json.loads(body or b"{}")
        except (ValueError, json.JSONDecodeError):
            return 400, {"error": "invalid JSON body"}, {}, None
        if not isinstance(message, dict) or not message.get("node"):
            return 400, {"error": "message needs a 'node' id"}, {}, None
        node_id = str(message["node"])
        try:
            if path == "/cluster/register":
                ack = service.register_node(
                    node_id, capacity=int(message.get("capacity", 1)),
                    meta=message.get("meta"))
                return 200, ack, {}, None
            if path == "/cluster/heartbeat":
                ack = service.heartbeat(
                    node_id, telemetry=message.get("telemetry"))
                return 200, ack, {}, None
            if path == "/cluster/lease":
                max_jobs = int(message.get("max_jobs", 1))
                wait_s = float(message.get("wait_s", 0.0))
                jobs = await self._lease_long_poll(node_id, max_jobs,
                                                   wait_s)
                return 200, {"jobs": jobs,
                             "draining": service.draining}, {}, None
            if path == "/cluster/complete":
                ack = service.complete(
                    node_id, str(message.get("job")),
                    message.get("record") or {},
                    span_events=message.get("spans"),
                    telemetry=message.get("telemetry"),
                    key=message.get("key"))
                return 200, ack, {}, None
        except UnknownNodeError as exc:
            return 409, {"error": str(exc)}, {}, None
        return 404, {"error": "unknown endpoint"}, {}, None

    async def _lease_long_poll(self, node_id: str, max_jobs: int,
                               wait_s: float) -> list:
        """Lease now, or park on the work event until something queues
        (bounded slices guard against lost wakeups)."""
        jobs = self.service.try_lease(node_id, max_jobs)
        if jobs or wait_s <= 0:
            return jobs
        loop = asyncio.get_running_loop()
        deadline = loop.time() + min(wait_s, LONG_POLL_CAP_S)
        while not jobs:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._work_event.clear()
            try:
                await asyncio.wait_for(self._work_event.wait(),
                                       timeout=min(remaining,
                                                   POLL_SLICE_S))
            except asyncio.TimeoutError:
                pass
            jobs = self.service.try_lease(node_id, max_jobs)
        return jobs


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def create_coordinator(host: str = "127.0.0.1", port: int = 0,
                       store_dir: str = ".repro-store",
                       max_queue: int = 256,
                       journal_sync: Optional[str] = "batch",
                       telemetry: bool = True,
                       suspect_after_s: float = 5.0,
                       dead_after_s: float = 15.0):
    """Build (but do not start) a coordinator + front door pair."""
    store = ResultStore(store_dir)
    journal = None
    if journal_sync not in (None, "none"):
        journal = Journal(Path(store_dir) / "journal", sync=journal_sync)
    service = ClusterService(store, max_queue=max_queue, journal=journal,
                             telemetry=telemetry,
                             suspect_after_s=suspect_after_s,
                             dead_after_s=dead_after_s)
    door = ClusterFrontDoor(service, host=host, port=port)
    return door, service


def serve_coordinator(host: str, port: int, store_dir: str,
                      max_queue: int = 256,
                      journal_sync: Optional[str] = "batch",
                      telemetry: bool = True,
                      suspect_after_s: float = 5.0,
                      dead_after_s: float = 15.0,
                      drain_timeout_s: float = 30.0,
                      echo=print) -> int:
    """Blocking entry behind ``repro serve --role coordinator``.

    Node roster transitions (registered / suspect / dead / recovered)
    land on stdout with last-heartbeat ages; SIGTERM/SIGINT drain: new
    submissions get 503 + ``Retry-After``, leased jobs finish on their
    nodes (up to ``drain_timeout_s``), queued work stays journaled.
    """
    configure_logging()
    door, service = create_coordinator(
        host=host, port=port, store_dir=store_dir, max_queue=max_queue,
        journal_sync=journal_sync, telemetry=telemetry,
        suspect_after_s=suspect_after_s, dead_after_s=dead_after_s)

    def _roster_line(node_id: str, event: str) -> None:
        ages = {n["node"]: n["last_heartbeat_age_s"]
                for n in service.roster()}
        echo(f"[roster] node {node_id} {event} "
             f"(last heartbeat {ages.get(node_id, 0.0):.1f}s ago; "
             f"{len(ages)} node(s) known)")

    service.on_node_event = _roster_line
    service.start()
    door.start()
    echo(f"cluster coordinator on {door.url} (store {store_dir}, queue "
         f"{max_queue}, journal "
         f"{journal_sync if service.journal else 'off'}, telemetry "
         f"{'on' if telemetry else 'off'}, suspect after "
         f"{suspect_after_s:g}s, dead after {dead_after_s:g}s)")
    log_event(_LOG, "coordinator.started", host=host, port=door.port,
              store=store_dir)
    recovered = service.recovery
    if recovered["replayed"]:
        echo(f"recovered {recovered['replayed']} journaled job(s): "
             f"{recovered['recovered_done']} already done, "
             f"{recovered['requeued']} re-queued, "
             f"{recovered['lost']} lost")
    stop = threading.Event()

    def _signal(signum, frame):
        echo(f"signal {signum}: draining (leased jobs finish, queued "
             f"work stays journaled)")
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _signal)
        except ValueError:
            pass
    stop.wait()
    service.begin_drain()
    drained = service.drain(timeout_s=drain_timeout_s)
    door.stop()
    service.stop()
    echo("drained cleanly" if drained else
         f"drain timed out after {drain_timeout_s:g}s")
    return 0
