"""Worker-node agent: lease, replicate, simulate, report.

A :class:`ClusterNode` is one worker host in the fabric.  It wraps the
same lease-based :class:`~repro.service.pool.SimulationPool` the
single-process service uses (per-worker heartbeats, bounded
redeliveries, dead-letters) and speaks the coordinator's pull protocol
over one keep-alive HTTP connection:

1. ``register`` with a capacity, then ``heartbeat`` periodically —
   every message renews liveness, so a busy node never goes suspect.
2. ``lease`` up to its idle capacity.  Each leased job is first tried
   against the node's pull-through :class:`ReplicaStore` (local store,
   then fetch-on-miss from the coordinator with sha256 verification);
   a hit completes instantly with zero simulation.
3. Misses run on the local pool; pool span events (started / simulated /
   stored / redelivered / worker_died ...) are buffered per job, stamped
   with the node id, and ride the ``complete`` message back — together
   with a cumulative telemetry snapshot merging the node's own registry
   and every pool worker's, so the coordinator's ``/metrics`` and
   ``GET /jobs/<id>/trace`` stay as complete as single-process mode.
4. A completion that cannot be delivered (coordinator briefly down) is
   parked in an outbox and retried — finished work is never dropped.

Transport failures degrade to backoff-and-retry; an ``unknown node``
rejection (coordinator restarted, or it declared us dead while we were
partitioned) triggers re-registration.  The journal lives coordinator-
side: node death is handled by lease reclaim + redelivery there, so the
node itself keeps no durable state beyond its local store replica.
"""

from __future__ import annotations

import signal
import socket
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs.telemetry import (MetricsRegistry, get_logger, log_event,
                                 merge_snapshots)
from repro.service.client import ServiceClient, ServiceError
from repro.service.cluster.replica import ReplicaStore
from repro.service.jobs import JobSpec
from repro.service.pool import SimulationPool
from repro.service.store import ResultStore, TraceStore

_LOG = get_logger("service.cluster.node")


def default_node_id() -> str:
    return f"node-{socket.gethostname()}-{os.getpid()}"


class ClusterNode:
    def __init__(self, coordinator_url: str, store_dir,
                 node_id: Optional[str] = None,
                 workers: int = 1,
                 heartbeat_s: float = 1.0,
                 lease_wait_s: float = 0.5,
                 pool_lease_s: float = 30.0,
                 job_timeout_s: Optional[float] = None) -> None:
        self.node_id = node_id or default_node_id()
        self.capacity = max(1, int(workers))
        self.heartbeat_s = heartbeat_s
        self.lease_wait_s = lease_wait_s
        self.client = ServiceClient(coordinator_url, timeout=30.0)
        self.store = ResultStore(store_dir)
        self.replica = ReplicaStore(self.store, self._fetch_envelope)
        self.telemetry = MetricsRegistry()
        self._m_leased = self.telemetry.counter(
            "repro_node_jobs_leased_total", "Jobs leased by this node")
        self._m_replica = self.telemetry.counter(
            "repro_node_replica_hits_total",
            "Leased jobs served from the replica store with no simulation")
        self._m_completed = self.telemetry.counter(
            "repro_node_jobs_reported_total",
            "Completions delivered to the coordinator")
        self.pool = SimulationPool(n_workers=self.capacity,
                                   store=self.store,
                                   timeout=job_timeout_s,
                                   lease_s=pool_lease_s,
                                   telemetry=True)
        self.pool.on_event = self._pool_event
        # Pull-through replica of the coordinator's published traces,
        # rooted on the same shard the pool workers read: a prefetched
        # container means no worker in this node pays generation.
        self.traces = TraceStore(self.store.root / "traces",
                                 fetch=self._fetch_envelope)
        #: pool job id -> cluster job dict (id/key/spec/...).
        self._inflight: Dict[int, dict] = {}
        #: cluster job id -> buffered span events for the completion.
        self._span_buf: Dict[str, List[dict]] = {}
        #: undeliverable completion payloads, retried every step.
        self._outbox: List[dict] = []
        self._registered = False
        self._draining = False
        self._last_hb = 0.0
        self._stop = threading.Event()
        self.stats = {"leased": 0, "replica_served": 0, "reported": 0,
                      "report_retries": 0, "reregistrations": 0,
                      "traces_prefetched": 0}

    # -- replica fetch ---------------------------------------------------------

    def _fetch_envelope(self, key: str) -> Optional[dict]:
        """``GET /results/<key>`` from the coordinator; any failure is a
        miss (the job just simulates locally)."""
        try:
            return self.client.result(key)
        except (ServiceError, OSError):
            return None

    # -- pool span plumbing ----------------------------------------------------

    def _pool_event(self, pool_id: int, event: str, **attrs) -> None:
        job = self._inflight.get(pool_id)
        if job is None:
            return
        record = {"ev": event, "ts": round(time.time(), 6),
                  "node": self.node_id}
        record.update(attrs)
        self._span_buf.setdefault(job["id"], []).append(record)

    # -- protocol --------------------------------------------------------------

    def _snapshot(self) -> dict:
        return merge_snapshots([self.telemetry.snapshot()]
                               + self.pool.telemetry_snapshots())

    def register(self) -> None:
        self.client._request("/cluster/register",
                             payload={"node": self.node_id,
                                      "capacity": self.capacity})
        self._registered = True
        self._last_hb = time.monotonic()
        log_event(_LOG, "node.registered", node=self.node_id,
                  capacity=self.capacity)

    def _heartbeat(self) -> None:
        response = self.client._request(
            "/cluster/heartbeat",
            payload={"node": self.node_id,
                     "telemetry": self._snapshot(),
                     "inflight": len(self._inflight)})
        self._last_hb = time.monotonic()
        self._draining = bool(response.get("draining"))

    def _lease(self) -> None:
        idle = self.capacity - len(self._inflight)
        if idle <= 0 or self._draining:
            return
        response = self.client._request(
            "/cluster/lease",
            payload={"node": self.node_id, "max_jobs": idle,
                     "wait_s": self.lease_wait_s})
        self._last_hb = time.monotonic()
        for job in response.get("jobs", ()):
            self.stats["leased"] += 1
            self._m_leased.inc()
            spec = JobSpec(**job["spec"])
            record = self.replica.get(job["key"])
            if record is not None:
                # Pull-through replication hit: no simulation at all.
                self.stats["replica_served"] += 1
                self._m_replica.inc()
                self._span_buf.setdefault(job["id"], []).append(
                    {"ev": "store_hit", "ts": round(time.time(), 6),
                     "node": self.node_id, "replica": True})
                self._queue_completion(job, record)
                continue
            self._prefetch_trace(spec)
            pool_id = self.pool.submit(spec)
            self._inflight[pool_id] = job
            if self.pool.done(pool_id):
                # Synchronous resolution (local store hit inside the
                # pool, or serial fallback) — report right away.
                self._finish(pool_id)

    def _prefetch_trace(self, spec: JobSpec) -> None:
        """Best-effort pull of the job's input trace from the
        coordinator into the shared on-disk cache (verified container
        bytes, never materialized here).  A miss means the first pool
        worker generates locally, exactly as before."""
        try:
            before = self.traces.stats["fetched"]
            self.traces.prefetch(spec.workload_profile(), spec.n_instrs)
            if self.traces.stats["fetched"] > before:
                self.stats["traces_prefetched"] += 1
        except Exception:
            pass  # malformed spec profile etc.: the worker will report

    def _queue_completion(self, job: dict, record: dict) -> None:
        self._outbox.append({
            "node": self.node_id, "job": job["id"], "key": job["key"],
            "record": record,
            "spans": self._span_buf.pop(job["id"], []),
        })

    def _finish(self, pool_id: int) -> None:
        job = self._inflight.pop(pool_id)
        record = self.pool.record(pool_id)
        if record is None:  # cancelled mid-drain; coordinator redelivers
            return
        self._queue_completion(job, record)

    def _flush_outbox(self) -> None:
        while self._outbox:
            payload = dict(self._outbox[0])
            payload["telemetry"] = self._snapshot()
            try:
                self.client._request("/cluster/complete", payload=payload)
            except OSError:
                self.stats["report_retries"] += 1
                return  # coordinator unreachable; retry next step
            self._outbox.pop(0)
            self._last_hb = time.monotonic()
            self.stats["reported"] += 1
            self._m_completed.inc()

    # -- main loop -------------------------------------------------------------

    def step(self, block_s: float = 0.05) -> None:
        """One scheduling beat: heartbeat if due, lease up to idle
        capacity, pump the pool, report completions."""
        try:
            if not self._registered:
                self.register()
                self.stats["reregistrations"] += 1
            if time.monotonic() - self._last_hb >= self.heartbeat_s:
                self._heartbeat()
            self._lease()
        except ServiceError as exc:
            if exc.status in (404, 409, 410):
                # Coordinator restarted or declared us dead: start over.
                self._registered = False
                log_event(_LOG, "node.reregister", node=self.node_id,
                          status=exc.status)
            else:
                raise
        except OSError:
            time.sleep(min(self.heartbeat_s, 0.5))  # coordinator down
        self.pool.tick(block_s=block_s)
        for pool_id in [p for p in list(self._inflight)
                        if self.pool.done(p)]:
            self._finish(pool_id)
        self._flush_outbox()

    def run(self) -> None:
        self.pool.start()
        try:
            while not self._stop.is_set():
                self.step()
                if self._draining and not self._inflight \
                        and not self._outbox:
                    break
        finally:
            self.close()

    def stop(self) -> None:
        self._stop.set()

    def close(self) -> None:
        try:
            self.pool.close()
        finally:
            self.client.close()


def run_node(coordinator_url: str, store_dir,
             node_id: Optional[str] = None, workers: int = 1,
             heartbeat_s: float = 1.0,
             job_timeout_s: Optional[float] = None) -> ClusterNode:
    """Blocking CLI entry for ``repro serve --role node``.

    SIGTERM/SIGINT stop leasing, finish in-flight work, deliver the
    outbox and exit — the cluster analogue of the coordinator's drain.
    """
    node = ClusterNode(coordinator_url, store_dir, node_id=node_id,
                       workers=workers, heartbeat_s=heartbeat_s,
                       job_timeout_s=job_timeout_s)

    def _stop(signum, frame):
        node.stop()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _stop)
        except ValueError:  # not the main thread (tests)
            pass
    print(f"[node {node.node_id}] coordinator={coordinator_url} "
          f"workers={workers}", flush=True)
    node.run()
    print(f"[node {node.node_id}] stopped "
          f"(reported={node.stats['reported']})", flush=True)
    return node
