"""Coordinator state machine for the distributed simulation fabric.

:class:`ClusterService` is the cluster-mode sibling of
:class:`~repro.service.server.SimulationService`: the same job registry,
bounded priority queue, write-ahead journal and telemetry plane — but
instead of feeding a local multiprocessing pool, jobs are **leased to
registered worker nodes** that pull work over HTTP (the transport lives
in :mod:`~repro.service.cluster.frontdoor`; this module is pure state
behind one lock, directly drivable by tests).

Design points:

* **Node roster + heartbeats** — nodes register with a capacity and
  heartbeat periodically; any authenticated-by-id message (heartbeat,
  lease, completion) renews liveness.  A silent node is marked
  ``suspect`` after ``suspect_after_s`` (visible in ``/healthz`` and
  ``/stats`` before anything is reclaimed), then ``dead`` after
  ``dead_after_s``, at which point its leases are reclaimed and the
  jobs redelivered to surviving nodes — within the same bounded
  redelivery budget the pool uses, so a poison job dead-letters instead
  of hopping the fleet forever.
* **Journal-backed redelivery** — every state transition is journaled
  before it is acknowledged (``leased`` records carry the node id), so
  a coordinator crash recovers exactly like the single-process service:
  terminal jobs keep their state, store-hit jobs complete with zero
  re-simulation, everything else re-enters the queue.  Node leases do
  not survive a restart — but a node that finishes an orphaned job
  still reports it, and the first completion wins (late duplicates are
  idempotent no-ops; the store write is byte-identical either way).
* **Cross-sweep dedup** — the content-addressed store is the dedup
  authority: a submission whose key is stored completes instantly,
  whichever node computed it for whomever.  Submissions racing *ahead*
  of a result coalesce in flight: the second client's job attaches to
  the primary job with the same key and resolves with it, so
  overlapping sweeps from different clients cost one simulation.
* **Telemetry across the wire** — nodes attach span events (started /
  simulated / stored, stamped with the node id) and cumulative metric
  snapshots to their messages; the coordinator folds them into its
  SpanLog and ``/metrics``, so cluster-mode observability is as
  complete as single-process mode.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.obs.telemetry import (MetricsRegistry, SpanLog, fold_spans,
                                 get_logger, log_event, merge_snapshots,
                                 new_trace_id, render_prometheus)
from repro.service.journal import TERMINAL_STATES, Journal, fold_jobs
from repro.service.jobs import JobSpec
from repro.service.server import (DEFAULT_PRIORITY, STATS_SCHEMA,
                                  DrainingError, QueueFullError)
from repro.service.store import (ResultStore, trace_key,
                                 trace_wire_record)

_LOG = get_logger("service.cluster")

#: Node liveness states, in escalation order.
NODE_STATES = ("alive", "suspect", "dead")


class UnknownNodeError(Exception):
    """Message from a node the coordinator does not (or no longer)
    trusts — it must re-register before leasing again."""


class ClusterService:
    """Job registry + node roster behind one lock (no sockets here)."""

    def __init__(self, store: ResultStore,
                 max_queue: int = 64,
                 journal: Optional[Journal] = None,
                 telemetry: bool = True,
                 suspect_after_s: float = 5.0,
                 dead_after_s: float = 15.0,
                 max_redeliveries: int = 2) -> None:
        self.store = store
        self.max_queue = max_queue
        self.journal = journal
        self.suspect_after_s = suspect_after_s
        self.dead_after_s = max(dead_after_s, suspect_after_s)
        self.max_redeliveries = max(0, max_redeliveries)
        self.telemetry: Optional[MetricsRegistry] = \
            MetricsRegistry() if telemetry else None
        self.spans: Optional[SpanLog] = SpanLog() if telemetry else None
        if telemetry:
            t = self.telemetry
            self._m_submitted = t.counter(
                "repro_jobs_submitted_total", "Jobs accepted at POST /jobs")
            self._m_cached = t.counter(
                "repro_jobs_cached_total",
                "Submissions served instantly from the result store")
            self._m_coalesced = t.counter(
                "repro_jobs_coalesced_total",
                "Submissions attached to an identical in-flight job")
            self._m_queue_wait = t.histogram(
                "repro_queue_wait_seconds",
                "Seconds between submit ack and node lease")
            self._m_run = t.histogram(
                "repro_job_run_seconds",
                "Seconds between node lease and terminal state")
        self._lock = threading.RLock()
        self._jobs: Dict[str, dict] = {}
        self._seq = 0
        #: (priority, seq, job_id) min-heap; resolved entries are skipped
        #: lazily at lease time (cheap tombstoning, no heap surgery).
        self._queue: List[tuple] = []
        self._queued = 0  # live (non-tombstone) heap entries
        #: key -> primary in-flight job id (in-flight coalescing).
        self._inflight_keys: Dict[str, str] = {}
        #: primary job id -> job ids riding on its outcome.
        self._attached: Dict[str, List[str]] = {}
        #: node id -> roster entry (state, liveness, lease set, telemetry).
        self._nodes: Dict[str, dict] = {}
        self._draining = False
        self.counters: Dict[str, int] = {
            "submitted": 0, "cached": 0, "coalesced": 0, "dispatched": 0,
            "completed": 0, "failed": 0, "dead_lettered": 0,
            "redeliveries": 0, "duplicate_completions": 0,
            "nodes_registered": 0, "node_deaths": 0, "heartbeats": 0,
        }
        self.recovery: Dict[str, int] = {
            "replayed": 0, "recovered_done": 0, "recovered_terminal": 0,
            "requeued": 0, "lost": 0,
        }
        self.scrub_report: Optional[dict] = None
        #: Front-door hooks (fired OUTSIDE the lock): a job turned
        #: terminal (wake its long-pollers) / work became leasable
        #: (wake parked lease requests) / a node changed state
        #: (roster line on stdout).  All optional, all non-throwing.
        self.on_terminal: Optional[Callable[[str], None]] = None
        self.on_enqueued: Optional[Callable[[], None]] = None
        self.on_node_event: Optional[Callable[[str, str], None]] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self.journal is not None:
            self.recover()

    def stop(self) -> None:
        if self.journal is not None:
            self.journal.close()

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        self._journal_append("drain")

    def drain(self, timeout_s: Optional[float] = 30.0) -> bool:
        """Wait until no job is leased to a node (queued work stays
        journaled for the next start)."""
        self.begin_drain()
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        while True:
            with self._lock:
                leased = any(e["status"] == "running"
                             for e in self._jobs.values())
            if not leased:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.05)

    # -- journal + spans -------------------------------------------------------

    def _journal_append(self, type_: str, **fields) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(type_, **fields)
        except OSError:  # journalling must never take down the service
            pass

    def _span(self, job_id: str, event: str, trace: Optional[str] = None,
              ts: Optional[float] = None, durable: bool = False,
              **attrs) -> Optional[dict]:
        if self.spans is None:
            return None
        rec = self.spans.append(job_id, event, trace=trace, ts=ts, **attrs)
        if rec is not None and durable:
            self._journal_append("span", job=job_id, ev=event,
                                 ts=rec["ts"], trace=trace, **attrs)
        return rec

    def _terminal_metric(self, status: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_jobs_terminal_total",
                "Jobs reaching a terminal state, by status",
                status=status).inc()

    # -- recovery --------------------------------------------------------------

    def recover(self) -> None:
        """Replay the journal (same contract as the single-process
        service): terminal jobs keep their state, store-hit jobs
        complete with zero re-simulation, the rest re-enter the queue.
        Node leases never survive a restart — a ``leased`` job whose
        node is gone is simply non-terminal and requeues; if its old
        node still finishes it, the first completion wins."""
        assert self.journal is not None
        records = list(self.journal.records())
        folded = fold_jobs(records)
        if self.spans is not None:
            fold_spans(records, self.spans)
        live: list = []
        for job_id, state in folded.items():
            self.recovery["replayed"] += 1
            if job_id.startswith("job-"):
                try:
                    self._seq = max(self._seq, int(job_id[4:]))
                except ValueError:
                    pass
            entry = {"id": job_id, "key": state["key"],
                     "priority": state["priority"], "recovered": True}
            spec_dict = state.get("spec")
            spec = None
            if isinstance(spec_dict, dict):
                try:
                    spec = JobSpec(**spec_dict)
                except TypeError:
                    spec = None
            if spec is not None:
                entry["core"] = spec.core.get("name")
                entry["app"] = spec.profile.get("name")
            if state["status"] in TERMINAL_STATES:
                entry["status"] = state["status"]
                if state["status"] == "done":
                    entry["cached"] = state["cached"]
                    self.recovery["recovered_done"] += 1
                else:
                    entry["error"] = state.get("error")
                    self.recovery["recovered_terminal"] += 1
                self._jobs[job_id] = entry
                continue
            key = state["key"]
            if key is not None and self.store.get(key) is not None:
                entry["status"] = "done"
                entry["cached"] = True
                self._jobs[job_id] = entry
                self.recovery["recovered_done"] += 1
                self._span(job_id, "completed", trace=state.get("trace"),
                           cached=True, recovered=True)
                continue
            if spec is None:
                entry["status"] = "failed"
                entry["error"] = "lost on recovery: spec unrecoverable"
                self._jobs[job_id] = entry
                self.recovery["lost"] += 1
                continue
            entry["status"] = "queued"
            entry["spec"] = spec
            entry["attempts"] = 0
            self._jobs[job_id] = entry
            self._push_queue(state["priority"], job_id)
            if key is not None:
                self._inflight_keys.setdefault(key, job_id)
            self.recovery["requeued"] += 1
            self._span(job_id, "recovered", trace=state.get("trace"))
            live.append({"t": "submitted", "job": job_id, "key": key,
                         "spec": spec_dict, "priority": state["priority"],
                         "ts": state.get("ts"), "trace": state.get("trace")})
        if self.spans is not None:
            requeued = {s["job"] for s in live}
            for job_id, span in self.spans.spans().items():
                if job_id in requeued:
                    continue
                for event in span["events"]:
                    attrs = {k: v for k, v in event.items()
                             if k not in ("ev", "ts")}
                    live.append({"t": "span", "job": job_id,
                                 "ev": event["ev"], "ts": event["ts"],
                                 "trace": span.get("trace"), **attrs})
        self.journal.compact(live)
        log_event(_LOG, "cluster.recovered", **self.recovery)

    # -- queue helpers (call with the lock held) -------------------------------

    def _push_queue(self, priority: int, job_id: str) -> None:
        self._seq_tiebreak = getattr(self, "_seq_tiebreak", 0) + 1
        heapq.heappush(self._queue, (priority, self._seq_tiebreak, job_id))
        self._queued += 1

    def _pop_queued(self) -> Optional[dict]:
        """Next genuinely-queued entry, skipping tombstones."""
        while self._queue:
            _, _, job_id = heapq.heappop(self._queue)
            entry = self._jobs.get(job_id)
            if entry is not None and entry["status"] == "queued":
                self._queued -= 1
                return entry
        self._queued = 0
        return None

    # -- client side: submission -----------------------------------------------

    def publish_trace(self, profile, n_instrs: int, trace) -> str:
        """Publish one generated input trace for pull-through replication.

        The trace rides the ordinary result namespace: a binary codec
        container wrapped in a JSON wire record, stored under its
        content-address key, served raw by ``GET /results/<key>``.
        Nodes prefetch it through the same verify-then-cache path as
        result records, so every worker in the fleet skips generation.
        ``trace`` is the instruction stream or pre-encoded container
        bytes; returns the trace key.
        """
        key = trace_key(profile, n_instrs)
        self.store.put(key, trace_wire_record(key, trace))
        return key

    def submit(self, spec: JobSpec,
               priority: int = DEFAULT_PRIORITY) -> dict:
        if self._draining:
            raise DrainingError("service is draining; retry against the "
                                "next instance")
        key = spec.key()
        traced = self.spans is not None
        trace = new_trace_id() if traced else None
        now = round(time.time(), 6)
        if traced:
            spec.trace_id = trace
        notify_enqueued = False
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq}"
            entry = {"id": job_id, "status": "queued", "key": key,
                     "core": spec.core.get("name"),
                     "app": spec.profile.get("name"),
                     "priority": priority, "spec": spec,
                     "attempts": 0, "_ts_submitted": now}
            if traced:
                entry["trace"] = trace
            if self.telemetry is not None:
                self._m_submitted.inc()
            self.counters["submitted"] += 1
            if key in self.store and self.store.get(key) is not None:
                # Cross-sweep dedup, completed flavour: whichever node
                # computed this key for whichever client, it is done.
                entry["status"] = "done"
                entry["cached"] = True
                self._jobs[job_id] = entry
                self.counters["cached"] += 1
                self._journal_append("submitted", job=job_id, key=key,
                                     priority=priority, cached=True,
                                     ts=now, trace=trace)
                self._span(job_id, "submitted", trace=trace, ts=now,
                           priority=priority)
                self._span(job_id, "journaled", ts=now)
                self._span(job_id, "store_hit", ts=now)
                self._span(job_id, "completed", ts=now, cached=True)
                if self.telemetry is not None:
                    self._m_cached.inc()
                self._terminal_metric("done")
                return self._public(entry)
            primary = self._inflight_keys.get(key)
            if primary is not None and primary in self._jobs \
                    and self._jobs[primary]["status"] in ("queued",
                                                          "running"):
                # Cross-sweep dedup, racing flavour: attach to the
                # identical in-flight job instead of simulating twice.
                entry["status"] = self._jobs[primary]["status"]
                entry["coalesced_into"] = primary
                self._jobs[job_id] = entry
                self._attached.setdefault(primary, []).append(job_id)
                self.counters["coalesced"] += 1
                self._journal_append("submitted", job=job_id, key=key,
                                     spec=dataclasses.asdict(spec),
                                     priority=priority, ts=now, trace=trace)
                self._span(job_id, "submitted", trace=trace, ts=now,
                           priority=priority)
                self._span(job_id, "journaled", ts=now)
                self._span(job_id, "coalesced", ts=now, into=primary,
                           durable=True)
                if self.telemetry is not None:
                    self._m_coalesced.inc()
                return self._public(entry)
            if self._queued >= self.max_queue:
                self._terminal_metric("failed")
                raise QueueFullError(
                    f"queue full ({self.max_queue} jobs); retry later")
            self._jobs[job_id] = entry
            self._inflight_keys[key] = job_id
            # Journal *before* acknowledging: a crash after the 202 can
            # never lose this job.
            self._journal_append("submitted", job=job_id, key=key,
                                 spec=dataclasses.asdict(spec),
                                 priority=priority, ts=now, trace=trace)
            self._span(job_id, "submitted", trace=trace, ts=now,
                       priority=priority)
            self._span(job_id, "journaled")
            self._push_queue(priority, job_id)
            notify_enqueued = True
            public = self._public(entry)
        if notify_enqueued and self.on_enqueued is not None:
            try:
                self.on_enqueued()
            except Exception:
                pass
        return public

    # -- node side: registration, heartbeats, leases, completions --------------

    def register_node(self, node_id: str, capacity: int = 1,
                      meta: Optional[dict] = None) -> dict:
        """(Re-)register a worker node.  Idempotent; a returning node
        (after a coordinator restart or its own) starts with a clean
        lease set — any jobs its previous incarnation held were either
        reclaimed or will resolve via first-completion-wins."""
        now = time.monotonic()
        with self._lock:
            fresh = node_id not in self._nodes \
                or self._nodes[node_id]["state"] == "dead"
            self._nodes[node_id] = {
                "id": node_id, "state": "alive",
                "capacity": max(1, int(capacity)),
                "registered_at": round(time.time(), 6),
                "last_hb": now,
                "leased": set(), "completed": 0, "telemetry": None,
                "meta": dict(meta or {}),
            }
            if fresh:
                self.counters["nodes_registered"] += 1
        self._journal_append("node", node=node_id, event="registered",
                             capacity=capacity, ts=round(time.time(), 6))
        log_event(_LOG, "cluster.node_registered", node=node_id,
                  capacity=capacity)
        self._fire_node_event(node_id, "registered")
        return {"node": node_id, "suspect_after_s": self.suspect_after_s,
                "dead_after_s": self.dead_after_s}

    def _touch_node(self, node_id: str,
                    telemetry: Optional[dict] = None) -> dict:
        """Renew liveness for any authenticated node message (lock held).
        Raises :class:`UnknownNodeError` for unregistered/dead nodes."""
        node = self._nodes.get(node_id)
        if node is None or node["state"] == "dead":
            raise UnknownNodeError(f"unknown node {node_id!r}; re-register")
        node["last_hb"] = time.monotonic()
        if node["state"] == "suspect":
            node["state"] = "alive"
            self._fire_node_event(node_id, "recovered")
        if telemetry is not None:
            node["telemetry"] = telemetry
        return node

    def heartbeat(self, node_id: str,
                  telemetry: Optional[dict] = None) -> dict:
        with self._lock:
            node = self._touch_node(node_id, telemetry)
            self.counters["heartbeats"] += 1
            return {"node": node_id, "state": node["state"],
                    "draining": self._draining}

    def try_lease(self, node_id: str, max_jobs: int = 1) -> List[dict]:
        """Hand up to ``max_jobs`` queued jobs to ``node_id``.

        Returns wire-ready job dicts (id, key, spec, priority, attempt).
        Leasing renews the node's liveness; every lease is journaled
        with the node id before the jobs leave the building."""
        leases: List[dict] = []
        with self._lock:
            node = self._touch_node(node_id)
            if self._draining:
                return []
            while len(leases) < max(1, int(max_jobs)):
                entry = self._pop_queued()
                if entry is None:
                    break
                now = round(time.time(), 6)
                entry["status"] = "running"
                entry["node"] = node_id
                entry["attempts"] = entry.get("attempts", 0) + 1
                entry["_ts_leased"] = now
                node["leased"].add(entry["id"])
                self.counters["dispatched"] += 1
                self._journal_append("leased", job=entry["id"], ts=now,
                                     attempt=entry["attempts"],
                                     node=node_id)
                self._span(entry["id"], "leased", ts=now,
                           attempt=entry["attempts"], node=node_id)
                if self.telemetry is not None:
                    submitted = entry.get("_ts_submitted")
                    if submitted is not None:
                        self._m_queue_wait.observe(max(0.0, now - submitted))
                spec = entry["spec"]
                leases.append({"id": entry["id"], "key": entry["key"],
                               "spec": dataclasses.asdict(spec),
                               "priority": entry["priority"],
                               "attempt": entry["attempts"],
                               "trace": entry.get("trace")})
        return leases

    def complete(self, node_id: str, job_id: str, record: dict,
                 span_events: Optional[List[dict]] = None,
                 telemetry: Optional[dict] = None,
                 key: Optional[str] = None) -> dict:
        """A node reports one finished job (result record + span events
        + its cumulative telemetry snapshot).

        First completion wins: if the job is already terminal (a slower
        duplicate after redelivery, or a recovered orphan) the call is
        an idempotent no-op — except that a valid ``done`` record is
        still written to the store, which is byte-identical anyway.
        Unknown nodes may complete: work is work, and refusing it would
        waste a finished simulation."""
        terminal_jobs: List[str] = []
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None and node["state"] != "dead":
                self._touch_node(node_id, telemetry)
            elif node is not None and telemetry is not None:
                node["telemetry"] = telemetry
            entry = self._jobs.get(job_id)
            status = self._record_status(record)
            if entry is not None:
                key = entry.get("key") or key
            if status == "done" and key is not None:
                # Store write first (and always): the content-addressed
                # store is the dedup authority for every later sweep.
                self.store.put(key, record)
            if entry is None or entry["status"] in TERMINAL_STATES:
                self.counters["duplicate_completions"] += 1
                if node is not None:
                    node["leased"].discard(job_id)
                return {"accepted": False, "duplicate": True}
            now = round(time.time(), 6)
            node_stored = False
            for ev in span_events or ():
                if isinstance(ev, dict) and ev.get("ev"):
                    node_stored |= ev["ev"] == "stored"
                    attrs = {k: v for k, v in ev.items()
                             if k not in ("ev", "ts")}
                    attrs.setdefault("node", node_id)
                    self._span(job_id, ev["ev"], ts=ev.get("ts"),
                               durable=True, **attrs)
            self._resolve(entry, status, record, now, node_id,
                          node_stored=node_stored)
            terminal_jobs.append(job_id)
            if node is not None:
                node["leased"].discard(job_id)
                node["completed"] += 1
            # Jobs coalesced onto this one resolve with it.
            for attached_id in self._attached.pop(job_id, ()):  # noqa: B020
                attached = self._jobs.get(attached_id)
                if attached is None \
                        or attached["status"] in TERMINAL_STATES:
                    continue
                self._resolve(attached, status, record, now, node_id,
                              coalesced=True)
                terminal_jobs.append(attached_id)
        self._fire_terminal(terminal_jobs)
        return {"accepted": True, "status": status}

    @staticmethod
    def _record_status(record: dict) -> str:
        if not isinstance(record, dict):
            return "failed"
        if record.get("status") == "dead_letter":
            return "dead_letter"
        return "failed" if record.get("failed") else "done"

    def _resolve(self, entry: dict, status: str, record: dict, ts: float,
                 node_id: str, coalesced: bool = False,
                 node_stored: bool = False) -> None:
        """Move one registry entry to a terminal state (lock held)."""
        job_id = entry["id"]
        entry["status"] = status
        entry.pop("node", None)
        key = entry.get("key")
        if key is not None and self._inflight_keys.get(key) == job_id:
            del self._inflight_keys[key]
        if status == "done":
            self.counters["completed"] += 1
            self._journal_append("done", job=job_id, ts=ts)
            if not coalesced and not node_stored:
                self._span(job_id, "stored", ts=ts, node=node_id,
                           durable=True)
            self._span(job_id, "completed", ts=ts,
                       **({"coalesced": True} if coalesced else {}))
        elif status == "dead_letter":
            entry["error"] = record.get("error")
            self.counters["dead_lettered"] += 1
            self._journal_append("dead_letter", job=job_id, ts=ts,
                                 error=entry["error"])
            self._span(job_id, "dead_lettered", ts=ts, error=entry["error"])
        else:
            entry["error"] = record.get("error")
            self.counters["failed"] += 1
            self._journal_append("failed", job=job_id, ts=ts,
                                 error=entry["error"])
            self._span(job_id, "failed", ts=ts, error=entry["error"])
        self._terminal_metric(status)
        if self.telemetry is not None and not coalesced:
            leased = entry.get("_ts_leased")
            if leased is not None:
                self._m_run.observe(max(0.0, ts - leased))
        log_event(_LOG, "cluster.terminal", job=job_id,
                  trace=entry.get("trace"), status=status, node=node_id,
                  error=entry.get("error"))

    # -- liveness sweep --------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """One liveness sweep: escalate silent nodes alive -> suspect ->
        dead, reclaiming a dead node's leases into the queue (bounded
        redelivery budget; beyond it the job dead-letters)."""
        now = time.monotonic() if now is None else now
        terminal_jobs: List[str] = []
        notify_enqueued = False
        events: List[tuple] = []
        with self._lock:
            for node_id, node in self._nodes.items():
                if node["state"] == "dead":
                    continue
                age = now - node["last_hb"]
                if age > self.dead_after_s:
                    node["state"] = "dead"
                    self.counters["node_deaths"] += 1
                    self._journal_append("node", node=node_id, event="dead",
                                         ts=round(time.time(), 6))
                    log_event(_LOG, "cluster.node_died", node=node_id,
                              silent_s=round(age, 3),
                              leases=len(node["leased"]))
                    events.append((node_id, "dead"))
                    requeued, newly_terminal = \
                        self._reclaim_leases(node, node_id)
                    notify_enqueued |= requeued
                    terminal_jobs.extend(newly_terminal)
                elif age > self.suspect_after_s \
                        and node["state"] == "alive":
                    node["state"] = "suspect"
                    self._journal_append("node", node=node_id,
                                         event="suspect",
                                         ts=round(time.time(), 6))
                    log_event(_LOG, "cluster.node_suspect", node=node_id,
                              silent_s=round(age, 3))
                    events.append((node_id, "suspect"))
        for node_id, event in events:
            self._fire_node_event(node_id, event)
        if notify_enqueued and self.on_enqueued is not None:
            try:
                self.on_enqueued()
            except Exception:
                pass
        self._fire_terminal(terminal_jobs)

    def _reclaim_leases(self, node: dict, node_id: str):
        """Redeliver or dead-letter every job a dead node held (lock
        held).  Returns (any_requeued, [jobs turned terminal])."""
        requeued = False
        terminal: List[str] = []
        for job_id in sorted(node["leased"]):
            entry = self._jobs.get(job_id)
            if entry is None or entry["status"] != "running" \
                    or entry.get("node") != node_id:
                continue
            now = round(time.time(), 6)
            if entry.get("attempts", 0) > self.max_redeliveries:
                error = (f"dead-lettered after {entry['attempts']} "
                         f"deliveries (last: node {node_id} died)")
                self._resolve(entry, "dead_letter", {"error": error},
                              now, node_id)
                terminal.append(job_id)
                continue
            entry["status"] = "queued"
            entry.pop("node", None)
            self.counters["redeliveries"] += 1
            self._span(job_id, "redelivered", ts=now, durable=True,
                       cause=f"node {node_id} died",
                       attempt=entry.get("attempts", 0))
            self._push_queue(entry["priority"], job_id)
            requeued = True
        node["leased"].clear()
        return requeued, terminal

    # -- hook plumbing ---------------------------------------------------------

    def _fire_terminal(self, job_ids: List[str]) -> None:
        if not job_ids or self.on_terminal is None:
            return
        for job_id in job_ids:
            try:
                self.on_terminal(job_id)
            except Exception:
                pass

    def _fire_node_event(self, node_id: str, event: str) -> None:
        if self.on_node_event is None:
            return
        try:
            self.on_node_event(node_id, event)
        except Exception:
            pass

    # -- views -----------------------------------------------------------------

    def job(self, job_id: str) -> Optional[dict]:
        with self._lock:
            entry = self._jobs.get(job_id)
            return self._public(entry) if entry else None

    def jobs_snapshot(self, status: Optional[str] = None) -> list:
        with self._lock:
            return [self._public(entry) for entry in self._jobs.values()
                    if status is None or entry["status"] == status]

    @staticmethod
    def _public(entry: dict) -> dict:
        public = {k: v for k, v in entry.items()
                  if k != "spec" and not k.startswith("_")}
        if public.get("coalesced_into"):
            public["coalesced"] = True
        if entry["status"] in ("done", "failed") and entry.get("key"):
            public["result_url"] = f"/results/{entry['key']}"
        return public

    def roster(self) -> List[dict]:
        """Public node roster with last-heartbeat ages (for ``/healthz``
        and the coordinator's stdout)."""
        now = time.monotonic()
        with self._lock:
            return [{"node": node["id"], "state": node["state"],
                     "capacity": node["capacity"],
                     "last_heartbeat_age_s": round(now - node["last_hb"], 3),
                     "leased": len(node["leased"]),
                     "completed": node["completed"]}
                    for node in self._nodes.values()]

    def job_trace(self, job_id: str) -> Optional[dict]:
        if self.spans is None:
            return None
        return self.spans.trace(job_id)

    def scrub(self, repair: bool = False) -> dict:
        """Integrity-walk the authoritative store; with ``repair``,
        reconstructable quarantined entries re-enter the normal
        submission path (nodes recompute them)."""
        report = self.store.scrub()
        if repair:
            from repro.service.scrub import quarantined_specs
            repairable, unrepairable = quarantined_specs(self.store)
            requeued = []
            for _, spec in repairable:
                try:
                    requeued.append(self.submit(spec)["id"])
                except (QueueFullError, DrainingError):
                    break
            report["repair"] = {"requeued": requeued,
                                "unrepairable": unrepairable}
        self.scrub_report = report
        return report

    def stats(self) -> dict:
        with self._lock:
            by_status: Dict[str, int] = {}
            for entry in self._jobs.values():
                by_status[entry["status"]] = \
                    by_status.get(entry["status"], 0) + 1
            counters = dict(self.counters)
            queued = self._queued
        roster = self.roster()
        stats = {
            "schema": STATS_SCHEMA,
            "role": "coordinator",
            "store": self.store.stats_snapshot(),
            "cluster": {"counters": counters, "nodes": roster},
            "queue": {"depth": queued, "max": self.max_queue},
            "jobs": by_status,
            "service": {"draining": self._draining,
                        "recovery": dict(self.recovery)},
            "telemetry": {"enabled": self.telemetry is not None},
        }
        if self.telemetry is not None:
            stats["telemetry"].update(
                spans=len(self.spans),
                nodes_reporting=sum(
                    1 for n in self._node_snapshots() if n))
        if self.journal is not None:
            stats["journal"] = self.journal.stats_snapshot()
        if self.scrub_report is not None:
            stats["scrub"] = self.scrub_report
        return stats

    def _node_snapshots(self) -> List[Optional[dict]]:
        """Latest cumulative telemetry snapshot per node (dead nodes
        included — their final counts are never lost)."""
        with self._lock:
            return [node.get("telemetry") for node in self._nodes.values()]

    def metrics_text(self) -> Optional[str]:
        """Prometheus text for the whole cluster: coordinator registry +
        the latest cumulative snapshot from every node (which itself
        merges that node's pool workers), or None when telemetry is
        off."""
        if self.telemetry is None:
            return None
        t = self.telemetry
        with self._lock:
            queued = self._queued
            running = sum(1 for e in self._jobs.values()
                          if e["status"] == "running")
            by_state: Dict[str, int] = {s: 0 for s in NODE_STATES}
            for node in self._nodes.values():
                by_state[node["state"]] += 1
        t.gauge("repro_queue_depth",
                "Jobs waiting in the submission queue").set(queued)
        t.gauge("repro_jobs_inflight",
                "Jobs leased to nodes, not yet terminal").set(running)
        for state, count in by_state.items():
            t.gauge("repro_cluster_nodes",
                    "Registered worker nodes by liveness state",
                    state=state).set(count)
        t.gauge("repro_service_draining",
                "1 while draining, else 0").set(
            1.0 if self._draining else 0.0)
        t.gauge("repro_spans_tracked",
                "Jobs with an in-memory span").set(len(self.spans))
        mirrors = [("store", self.store.stats_snapshot())]
        if self.journal is not None:
            mirrors.append(("journal", self.journal.stats_snapshot()))
        for prefix, snapshot in mirrors:
            for name, value in sorted(snapshot.items()):
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                t.gauge(f"repro_{prefix}_{name}",
                        f"Gauge mirror of the {prefix} counter "
                        f"{name!r}").set(value)
        for name, value in sorted(self.counters.items()):
            t.gauge(f"repro_cluster_{name}",
                    f"Gauge mirror of the cluster counter {name!r}"
                    ).set(value)
        merged = merge_snapshots([t.snapshot()] + self._node_snapshots())
        return render_prometheus(merged)
