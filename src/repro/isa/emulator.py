"""Functional emulator: executes an assembled program and emits a trace.

The emulator is architecturally simple — a flat register file and a sparse
byte-addressable memory — but it resolves everything the timing models need:
effective addresses, branch directions and targets.  It yields
:class:`~repro.isa.instruction.DynInst` records in program order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.params import NUM_ARCH_REGS
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_BYTES, Program, StaticInst

_MASK64 = (1 << 64) - 1


class EmulationError(RuntimeError):
    """Raised when a program misbehaves (runs off the end, divides by 0...)."""


class Emulator:
    """Executes a :class:`Program` functionally.

    Parameters
    ----------
    program:
        The assembled program.
    memory:
        Optional initial memory image mapping byte address -> 64-bit value
        (values are stored at 8-byte granularity internally).
    max_insts:
        Safety bound on the number of dynamic instructions.
    """

    def __init__(self, program: Program,
                 memory: Optional[Dict[int, int]] = None,
                 max_insts: int = 2_000_000) -> None:
        self.program = program
        self.regs = [0] * NUM_ARCH_REGS
        self.fregs_view = None  # fp regs live in the same flat file as ints
        self.memory: Dict[int, int] = dict(memory or {})
        self.max_insts = max_insts
        self.pc = program.entry_pc
        self.halted = False
        self.dyn_count = 0

    # -- memory helpers ----------------------------------------------------

    def load64(self, addr: int) -> int:
        """Read 8 bytes; untouched memory reads as a deterministic hash of
        its address so pointer-chasing kernels see stable, non-zero data."""
        if addr in self.memory:
            return self.memory[addr]
        return (addr * 0x9E3779B97F4A7C15) & _MASK64

    def store64(self, addr: int, value: int) -> None:
        self.memory[addr] = value & _MASK64

    # -- execution ---------------------------------------------------------

    def run(self) -> Iterator[DynInst]:
        """Yield the dynamic instruction stream until HALT."""
        while not self.halted:
            if self.dyn_count >= self.max_insts:
                raise EmulationError(
                    f"exceeded {self.max_insts} instructions without HALT")
            inst = self.program.at_pc(self.pc)
            yield self._step(inst)

    def _step(self, inst: StaticInst) -> DynInst:
        regs = self.regs
        op = inst.op
        next_pc = self.pc + INST_BYTES
        dyn = DynInst(pc=self.pc, op=op, srcs=inst.srcs, dst=inst.dst)
        if op is OpClass.INT_ALU or op is OpClass.INT_MUL or op is OpClass.INT_DIV:
            regs[inst.dst] = self._alu(inst) & _MASK64
        elif op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
            regs[inst.dst] = self._fpu(inst) & _MASK64
        elif op.is_load:
            addr = (regs[inst.srcs[0]] + inst.imm) & _MASK64
            regs[inst.dst] = self.load64(addr)
            dyn.mem_addr, dyn.mem_size = addr, 8
        elif op.is_store:
            addr = (regs[inst.srcs[0]] + inst.imm) & _MASK64
            self.store64(addr, regs[inst.srcs[1]])
            dyn.mem_addr, dyn.mem_size = addr, 8
        elif op is OpClass.BRANCH:
            taken = self._branch_taken(inst)
            dyn.taken = taken
            dyn.target = inst.imm
            if taken:
                next_pc = inst.imm
        elif op is OpClass.JUMP:
            dyn.taken = True
            dyn.target = inst.imm
            next_pc = inst.imm
        elif op is OpClass.HALT:
            self.halted = True
        elif op is OpClass.NOP:
            pass
        else:  # pragma: no cover - all classes handled above
            raise EmulationError(f"unhandled op {op}")
        self.pc = next_pc
        self.dyn_count += 1
        return dyn

    def _alu(self, inst: StaticInst) -> int:
        m, regs = inst.mnemonic, self.regs
        if m == "li":
            return inst.imm
        a = regs[inst.srcs[0]]
        if m == "mv":
            return a
        if m == "ftoi":
            return a  # bit move between files
        b = regs[inst.srcs[1]] if len(inst.srcs) > 1 else inst.imm
        if m in ("add", "addi"):
            return a + b
        if m in ("sub", "subi"):
            return a - b
        if m in ("and", "andi"):
            return a & b
        if m == "or":
            return a | b
        if m == "xor":
            return a ^ b
        if m in ("sll", "slli"):
            return a << (b & 63)
        if m in ("srl", "srli"):
            return a >> (b & 63)
        if m in ("slt", "slti"):
            return 1 if _signed(a) < _signed(b) else 0
        if m == "mul":
            return a * b
        if m == "div":
            if b == 0:
                raise EmulationError(f"division by zero at pc {inst.pc:#x}")
            return a // b
        raise EmulationError(f"unhandled ALU mnemonic {m!r}")

    def _fpu(self, inst: StaticInst) -> int:
        # FP values are modelled as integers too: the timing models never
        # look at values, and integer semantics keep traces exactly
        # reproducible across platforms.
        m, regs = inst.mnemonic, self.regs
        if m == "fli":
            return inst.imm
        a = regs[inst.srcs[0]]
        if m in ("fmv", "itof"):
            return a
        b = regs[inst.srcs[1]] if len(inst.srcs) > 1 else inst.imm
        if m == "fadd":
            return a + b
        if m == "fsub":
            return a - b
        if m == "fmul":
            return a * b
        if m == "fdiv":
            return a // b if b else 0
        raise EmulationError(f"unhandled FP mnemonic {m!r}")

    def _branch_taken(self, inst: StaticInst) -> bool:
        a = _signed(self.regs[inst.srcs[0]])
        b = _signed(self.regs[inst.srcs[1]])
        m = inst.mnemonic
        if m == "beq":
            return a == b
        if m == "bne":
            return a != b
        if m == "blt":
            return a < b
        if m == "bge":
            return a >= b
        raise EmulationError(f"unhandled branch mnemonic {m!r}")


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def trace_program(program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  max_insts: int = 2_000_000) -> list:
    """Run ``program`` to completion and return the full trace as a list."""
    return list(Emulator(program, memory=memory, max_insts=max_insts).run())
