"""A tiny two-pass assembler for the micro-op ISA.

Grammar (one instruction per line, ``;`` or ``#`` starts a comment)::

    label:
        li    r1, 100          ; load immediate
        mv    r2, r1
        add   r3, r1, r2       ; also sub/and/or/xor/sll/srl/slt
        addi  r3, r1, 4        ; immediate forms of the above + subi
        mul   r4, r3, r1
        div   r5, r4, r1
        fadd  f1, f2, f3       ; also fsub/fmul/fdiv
        fli   f1, 2            ; fp load-immediate
        itof  f2, r1           ; int -> fp move/convert
        ftoi  r1, f2
        ld    r1, 8(r2)        ; fld/fst for fp data
        st    r1, 8(r2)
        beq   r1, r2, label    ; also bne/blt/bge
        jmp   label
        nop
        halt

Register operands use ``r0..r15`` and ``f0..f7``.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.isa.opcodes import OpClass
from repro.isa.program import INST_BYTES, Program, StaticInst
from repro.isa.registers import parse_reg


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line information."""


_MEM_RE = re.compile(r"^(-?\d+)\((\w+)\)$")

#: mnemonic -> (OpClass, operand shape)
#: shapes: rrr (dst,src,src), rri (dst,src,imm), rr (dst,src), ri (dst,imm),
#: mem (reg, off(base)), brr (src,src,label), j (label), none
_FORMATS = {
    "add": (OpClass.INT_ALU, "rrr"), "sub": (OpClass.INT_ALU, "rrr"),
    "and": (OpClass.INT_ALU, "rrr"), "or": (OpClass.INT_ALU, "rrr"),
    "xor": (OpClass.INT_ALU, "rrr"), "sll": (OpClass.INT_ALU, "rrr"),
    "srl": (OpClass.INT_ALU, "rrr"), "slt": (OpClass.INT_ALU, "rrr"),
    "addi": (OpClass.INT_ALU, "rri"), "subi": (OpClass.INT_ALU, "rri"),
    "andi": (OpClass.INT_ALU, "rri"), "slli": (OpClass.INT_ALU, "rri"),
    "srli": (OpClass.INT_ALU, "rri"), "slti": (OpClass.INT_ALU, "rri"),
    "mul": (OpClass.INT_MUL, "rrr"), "div": (OpClass.INT_DIV, "rrr"),
    "mv": (OpClass.INT_ALU, "rr"), "li": (OpClass.INT_ALU, "ri"),
    "fadd": (OpClass.FP_ADD, "rrr"), "fsub": (OpClass.FP_ADD, "rrr"),
    "fmul": (OpClass.FP_MUL, "rrr"), "fdiv": (OpClass.FP_DIV, "rrr"),
    "fli": (OpClass.FP_ADD, "ri"), "fmv": (OpClass.FP_ADD, "rr"),
    "itof": (OpClass.FP_ADD, "rr"), "ftoi": (OpClass.INT_ALU, "rr"),
    "ld": (OpClass.LOAD, "mem"), "st": (OpClass.STORE, "mem"),
    "fld": (OpClass.LOAD_FP, "mem"), "fst": (OpClass.STORE_FP, "mem"),
    "beq": (OpClass.BRANCH, "brr"), "bne": (OpClass.BRANCH, "brr"),
    "blt": (OpClass.BRANCH, "brr"), "bge": (OpClass.BRANCH, "brr"),
    "jmp": (OpClass.JUMP, "j"),
    "nop": (OpClass.NOP, "none"), "halt": (OpClass.HALT, "none"),
}


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def assemble(source: str, base_pc: int = 0x1000) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises :class:`AssemblerError` with a line number on malformed input or
    undefined labels.
    """
    lines = source.splitlines()
    # Pass 1: strip comments, collect labels and raw instructions.
    raw: List[Tuple[int, str, str]] = []  # (line_no, mnemonic, operand text)
    labels = {}
    for line_no, line in enumerate(lines, start=1):
        text = re.split(r"[;#]", line, maxsplit=1)[0].strip()
        if not text:
            continue
        while ":" in text:
            label, text = text.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = base_pc + len(raw) * INST_BYTES
            text = text.strip()
        if not text:
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        raw.append((line_no, mnemonic, parts[1] if len(parts) > 1 else ""))

    # Pass 2: encode.
    insts: List[StaticInst] = []
    for index, (line_no, mnemonic, rest) in enumerate(raw):
        if mnemonic not in _FORMATS:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        op, shape = _FORMATS[mnemonic]
        pc = base_pc + index * INST_BYTES
        ops = _split_operands(rest)
        try:
            inst = _encode(mnemonic, op, shape, ops, labels, pc)
        except (ValueError, KeyError) as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from exc
        insts.append(inst)
    return Program(insts=insts, labels=labels, base_pc=base_pc)


def _encode(mnemonic: str, op: OpClass, shape: str, ops: List[str],
            labels: dict, pc: int) -> StaticInst:
    def need(n: int) -> None:
        if len(ops) != n:
            raise ValueError(f"{mnemonic} expects {n} operands, got {len(ops)}")

    def label_pc(token: str) -> int:
        if token in labels:
            return labels[token]
        raise ValueError(f"undefined label {token!r}")

    if shape == "rrr":
        need(3)
        return StaticInst(mnemonic, op, dst=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]), parse_reg(ops[2])), pc=pc)
    if shape == "rri":
        need(3)
        return StaticInst(mnemonic, op, dst=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]),), imm=int(ops[2], 0), pc=pc)
    if shape == "rr":
        need(2)
        return StaticInst(mnemonic, op, dst=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]),), pc=pc)
    if shape == "ri":
        need(2)
        return StaticInst(mnemonic, op, dst=parse_reg(ops[0]),
                          imm=int(ops[1], 0), pc=pc)
    if shape == "mem":
        need(2)
        match = _MEM_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise ValueError(f"bad memory operand {ops[1]!r}")
        offset, base = int(match.group(1)), parse_reg(match.group(2))
        data_reg = parse_reg(ops[0])
        if op.is_store:
            return StaticInst(mnemonic, op, srcs=(base, data_reg),
                              imm=offset, pc=pc)
        return StaticInst(mnemonic, op, dst=data_reg, srcs=(base,),
                          imm=offset, pc=pc)
    if shape == "brr":
        need(3)
        return StaticInst(mnemonic, op,
                          srcs=(parse_reg(ops[0]), parse_reg(ops[1])),
                          imm=label_pc(ops[2]), pc=pc)
    if shape == "j":
        need(1)
        return StaticInst(mnemonic, op, imm=label_pc(ops[0]), pc=pc)
    if shape == "none":
        need(0)
        return StaticInst(mnemonic, op, pc=pc)
    raise ValueError(f"unhandled shape {shape!r}")  # pragma: no cover
