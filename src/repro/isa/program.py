"""Static program representation produced by the assembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import OpClass

#: Byte size of one encoded instruction (PCs advance by this much).
INST_BYTES = 4


@dataclass
class StaticInst:
    """One assembled instruction before execution.

    ``srcs``/``dst`` are flat architectural register ids; ``imm`` is the
    immediate operand (offset for memory ops, constant for ``*i`` ALU forms,
    branch target PC for control flow).
    """

    mnemonic: str
    op: OpClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    pc: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.pc:#06x} {self.mnemonic} dst={self.dst} srcs={self.srcs} imm={self.imm}>"


@dataclass
class Program:
    """An assembled program: instructions plus label and entry metadata."""

    insts: List[StaticInst] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    base_pc: int = 0x1000

    def __len__(self) -> int:
        return len(self.insts)

    def at_pc(self, pc: int) -> StaticInst:
        """The static instruction at byte address ``pc``."""
        index = (pc - self.base_pc) // INST_BYTES
        if index < 0 or index >= len(self.insts):
            raise IndexError(f"pc {pc:#x} outside program")
        return self.insts[index]

    @property
    def entry_pc(self) -> int:
        return self.base_pc
