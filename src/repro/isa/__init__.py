"""A small RISC-like micro-op ISA used by every core model.

The timing simulators never interpret values; they consume
:class:`~repro.isa.instruction.DynInst` records that carry everything the
schedulers react to: register dependences, memory addresses, branch outcomes
and latency classes.  Records come either from the functional emulator
(:mod:`repro.isa.emulator`) running assembled kernels, or directly from the
synthetic workload generator (:mod:`repro.workloads.generator`).
"""

from repro.isa.opcodes import OpClass, FuType, LATENCY, FU_FOR_OP
from repro.isa.instruction import DynInst
from repro.isa.registers import (
    INT_REGS,
    FP_REGS,
    is_fp_reg,
    reg_name,
    parse_reg,
)

__all__ = [
    "OpClass",
    "FuType",
    "LATENCY",
    "FU_FOR_OP",
    "DynInst",
    "INT_REGS",
    "FP_REGS",
    "is_fp_reg",
    "reg_name",
    "parse_reg",
]
