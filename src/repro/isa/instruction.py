"""Dynamic instruction records consumed by the timing models.

A :class:`DynInst` is one *executed* micro-op with its dataflow and control
outcomes fully resolved: which architectural registers it reads/writes, the
effective address it touches (for memory ops), whether a branch was taken and
where it went.  Timing cores schedule these records; they never re-execute
semantics, which keeps every core model focused on what the paper is about —
*when* instructions issue, not *what* they compute.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import LATENCY, OpClass


class DynInst:
    """One dynamic micro-op in a trace.

    Attributes
    ----------
    seq:
        Global dynamic sequence number (program order), assigned by the
        stream.  Re-fetched instances after a squash keep their number.
    pc:
        Static instruction address (used by predictors and slice tables).
    op:
        The :class:`~repro.isa.opcodes.OpClass`.
    srcs:
        Flat ids of architectural source registers.
    dst:
        Flat id of the architectural destination register, or ``None``.
    mem_addr / mem_size:
        Effective address and access width for loads/stores.
    taken / target:
        Control outcome for branches; ``target`` is the next fetch PC when
        taken.
    """

    __slots__ = ("seq", "_pc", "op", "srcs", "dst", "mem_addr", "mem_size",
                 "taken", "target", "latency", "line", "op_name",
                 "is_load", "is_store", "is_mem", "is_branch")

    def __init__(self,
                 pc: int,
                 op: OpClass,
                 srcs: Tuple[int, ...] = (),
                 dst: Optional[int] = None,
                 mem_addr: Optional[int] = None,
                 mem_size: int = 8,
                 taken: bool = False,
                 target: Optional[int] = None,
                 seq: int = -1) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.srcs = srcs
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.taken = taken
        self.target = target
        self.latency = LATENCY[op]
        # Derived fields interned at decode: the op-class label (tracer
        # events) and the class-membership flags, which the schedulers
        # test many times per instruction and which never change once the
        # op is fixed.  Plain attributes beat properties on these paths.
        self.op_name = op.name
        self.is_load = op is OpClass.LOAD or op is OpClass.LOAD_FP
        self.is_store = op is OpClass.STORE or op is OpClass.STORE_FP
        self.is_mem = OpClass.LOAD <= op <= OpClass.STORE_FP
        self.is_branch = op is OpClass.BRANCH or op is OpClass.JUMP

    @property
    def pc(self) -> int:
        return self._pc

    @pc.setter
    def pc(self, value: int) -> None:
        # ``line`` (the 64-byte I-cache line) is interned alongside the pc
        # so the fetch hot path avoids the shift; the setter keeps it in
        # sync for callers that re-assign PCs after construction.
        self._pc = value
        self.line = value >> 6

    def overlaps(self, other: "DynInst") -> bool:
        """True when the two memory accesses touch overlapping bytes."""
        if self.mem_addr is None or other.mem_addr is None:
            return False
        return (self.mem_addr < other.mem_addr + other.mem_size
                and other.mem_addr < self.mem_addr + self.mem_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mem = f" @0x{self.mem_addr:x}" if self.mem_addr is not None else ""
        br = f" taken->{self.target}" if self.is_branch and self.taken else ""
        return (f"DynInst(#{self.seq} pc=0x{self.pc:x} {self.op.name}"
                f" srcs={self.srcs} dst={self.dst}{mem}{br})")
