"""Micro-op classes, latency classes and functional-unit mapping.

Latencies follow the usual textbook/Multi2Sim defaults: single-cycle integer
ALU, 3-cycle multiply, long division, 3-4 cycle pipelined FP, and AGU-issued
memory operations whose final latency the cache hierarchy decides.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Classes of micro-ops distinguished by the schedulers."""

    INT_ALU = 0     # add/sub/logic/shift/compare/move
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    LOAD_FP = 7
    STORE = 8
    STORE_FP = 9
    BRANCH = 10     # conditional direct branch
    JUMP = 11       # unconditional direct jump
    NOP = 12
    HALT = 13

    @property
    def is_load(self) -> bool:
        return self in (OpClass.LOAD, OpClass.LOAD_FP)

    @property
    def is_store(self) -> bool:
        return self in (OpClass.STORE, OpClass.STORE_FP)

    @property
    def is_mem(self) -> bool:
        return OpClass.LOAD <= self <= OpClass.STORE_FP

    @property
    def is_branch(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
                        OpClass.LOAD_FP, OpClass.STORE_FP)


class FuType(enum.IntEnum):
    """Functional-unit pools (Table I: 2 integer ALUs, 2 FP units, 2 AGUs)."""

    ALU = 0
    FPU = 1
    AGU = 2


#: Execution latency in cycles for non-memory ops.  Memory ops take 1 AGU
#: cycle; the cache hierarchy adds the access latency on top.
LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,
    OpClass.LOAD_FP: 1,
    OpClass.STORE: 1,
    OpClass.STORE_FP: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
    OpClass.HALT: 1,
}

#: Which functional-unit pool executes each op class.
FU_FOR_OP = {
    OpClass.INT_ALU: FuType.ALU,
    OpClass.INT_MUL: FuType.ALU,
    OpClass.INT_DIV: FuType.ALU,
    OpClass.FP_ADD: FuType.FPU,
    OpClass.FP_MUL: FuType.FPU,
    OpClass.FP_DIV: FuType.FPU,
    OpClass.LOAD: FuType.AGU,
    OpClass.LOAD_FP: FuType.AGU,
    OpClass.STORE: FuType.AGU,
    OpClass.STORE_FP: FuType.AGU,
    OpClass.BRANCH: FuType.ALU,
    OpClass.JUMP: FuType.ALU,
    OpClass.NOP: FuType.ALU,
    OpClass.HALT: FuType.ALU,
}
