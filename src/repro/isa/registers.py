"""Architectural register namespace.

Integer registers ``r0..r15`` occupy ids ``0..15`` and floating-point
registers ``f0..f7`` occupy ids ``16..23``.  A single flat id space keeps
rename tables and scoreboards simple while still letting the renamer maintain
separate INT/FP free lists (Table I sizes them separately).
"""

from __future__ import annotations

from repro.common.params import NUM_FP_ARCH, NUM_INT_ARCH

#: Ids of the integer architectural registers.
INT_REGS = tuple(range(NUM_INT_ARCH))
#: Ids of the floating-point architectural registers.
FP_REGS = tuple(range(NUM_INT_ARCH, NUM_INT_ARCH + NUM_FP_ARCH))


def is_fp_reg(reg: int) -> bool:
    """True when the flat register id names a floating-point register."""
    return reg >= NUM_INT_ARCH


def reg_name(reg: int) -> str:
    """Human-readable name (``r3``, ``f1``) for a flat register id."""
    if reg < 0 or reg >= NUM_INT_ARCH + NUM_FP_ARCH:
        raise ValueError(f"register id out of range: {reg}")
    if reg < NUM_INT_ARCH:
        return f"r{reg}"
    return f"f{reg - NUM_INT_ARCH}"


def parse_reg(token: str) -> int:
    """Parse ``r<N>``/``f<N>`` into a flat register id."""
    token = token.strip().lower()
    if len(token) < 2 or token[0] not in "rf" or not token[1:].isdigit():
        raise ValueError(f"not a register: {token!r}")
    index = int(token[1:])
    if token[0] == "r":
        if index >= NUM_INT_ARCH:
            raise ValueError(f"integer register out of range: {token!r}")
        return index
    if index >= NUM_FP_ARCH:
        raise ValueError(f"fp register out of range: {token!r}")
    return NUM_INT_ARCH + index
