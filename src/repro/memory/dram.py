"""A compact DDR4-like DRAM timing model (Ramulator stand-in).

Banks keep an open row; accesses pay CAS on a row hit, RCD+CAS on an empty
row, and RP+RCD+CAS on a row conflict, serialised per bank, plus a burst
transfer and a fixed controller overhead.  Cache lines interleave across
banks so streaming workloads exploit bank parallelism while pointer chasing
pays full random-access latency — exactly the contrast the paper's MLP
arguments rely on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import DramConfig
from repro.common.stats import Stats


class _Bank:
    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until = 0


class Dram:
    """Single-channel, bank-parallel DRAM with open-row policy."""

    def __init__(self, cfg: DramConfig, stats: Optional[Stats] = None) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.banks: List[_Bank] = [_Bank() for _ in range(cfg.n_banks)]

    def access(self, addr: int, cycle: int) -> int:
        """Access the line containing ``addr`` at ``cycle``; return latency."""
        cfg = self.cfg
        line = addr >> 6
        # XOR-folded bank hash so distinct memory regions interleave across
        # banks instead of ping-ponging rows within one bank.
        bank_idx = (line ^ (line >> 4) ^ (line >> 8)) % cfg.n_banks
        row = line // cfg.n_banks // (cfg.row_bytes >> 6)
        bank = self.banks[bank_idx]
        counters = self.stats.counters
        start = max(cycle + cfg.frontend_overhead, bank.busy_until)
        if bank.open_row == row:
            service = cfg.t_cas
            counters["dram_row_hits"] += 1.0
        elif bank.open_row is None:
            service = cfg.t_rcd + cfg.t_cas
            counters["dram_row_empty"] += 1.0
        else:
            service = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            counters["dram_row_conflicts"] += 1.0
        bank.open_row = row
        finish = start + service + cfg.t_burst
        bank.busy_until = finish
        counters["dram_accesses"] += 1.0
        return finish - cycle

    def reset(self) -> None:
        """Forget all bank state (used between independent runs)."""
        for bank in self.banks:
            bank.open_row = None
            bank.busy_until = 0
