"""Composition of the Table I memory hierarchy for one simulated core."""

from __future__ import annotations

from typing import Optional

from repro.common.params import MemoryConfig
from repro.common.stats import Stats
from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.prefetcher import StridePrefetcher


class MemoryHierarchy:
    """L1I + L1D over a unified prefetching L2 over DDR4 DRAM.

    The interface is latency-based: each access method returns the number
    of cycles until data is available, updating cache/DRAM state.
    """

    def __init__(self, cfg: Optional[MemoryConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.cfg = cfg if cfg is not None else MemoryConfig()
        self.stats = stats if stats is not None else Stats()
        self.dram = Dram(self.cfg.dram, self.stats)
        self.l2 = Cache("l2", self.cfg.l2, self.dram.access, self.stats)
        # L1 dirty evictions update the L2 without training its prefetcher.
        def _wb_to_l2(addr: int, cycle: int) -> int:
            return self.l2.access(addr, cycle, is_write=True, prefetch=True)
        self.l1d = Cache("l1d", self.cfg.l1d, self.l2.access, self.stats,
                         writeback_sink=_wb_to_l2)
        self.l1i = Cache("l1i", self.cfg.l1i, self.l2.access, self.stats)
        self.prefetcher = None
        if self.cfg.prefetch_enabled:
            self.prefetcher = StridePrefetcher(
                self.l2, self.dram, self.cfg.prefetcher_streams,
                self.cfg.prefetcher_degree, self.stats)
            self.l2.access_hook = self.prefetcher.train

        # Load-load ordering (TSO) support, Section III-C4: cache lines read
        # by speculatively-issued loads carry a sentinel; an invalidation
        # from a remote store is not acknowledged until the sentinel clears.
        self.line_sentinels: dict = {}

    # -- TSO line sentinels -----------------------------------------------------

    def add_line_sentinel(self, addr: int) -> None:
        """A speculatively-issued load pins its cache line."""
        line = addr >> 6
        self.line_sentinels[line] = self.line_sentinels.get(line, 0) + 1

    def remove_line_sentinel(self, addr: int) -> None:
        """The speculative load committed (or was squashed): unpin."""
        line = addr >> 6
        count = self.line_sentinels.get(line, 0)
        if count <= 1:
            self.line_sentinels.pop(line, None)
        else:
            self.line_sentinels[line] = count - 1

    def invalidate(self, addr: int, cycle: int) -> bool:
        """A remote store wants this line.  Returns True when the
        invalidation is acknowledged (line evicted); False when a sentinel
        withholds the acknowledgement (the remote store must retry) —
        enforcing load->load ordering without LQ searches."""
        line = addr >> 6
        if self.line_sentinels.get(line, 0) > 0:
            self.stats.add("invalidation_nacks")
            return False
        for cache in (self.l1d, self.l1i, self.l2):
            tags = cache.sets.get(line % cache.n_sets)
            if tags is not None and line in tags:
                del tags[line]
        self.stats.add("invalidations")
        return True

    def ifetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch of the line containing ``pc``."""
        return self.l1i.access(pc, cycle)

    def load(self, addr: int, cycle: int) -> int:
        """Data load; returns load-to-use latency in cycles."""
        self.stats.counters["mem_loads"] += 1.0
        return self.l1d.access(addr, cycle)

    def store(self, addr: int, cycle: int) -> int:
        """Retiring store writing the L1D (write-allocate)."""
        self.stats.counters["mem_stores"] += 1.0
        return self.l1d.access(addr, cycle, is_write=True)
