"""Stride-based L2 prefetcher (Table I: "stride-based prefetcher").

Trains on L2 demand accesses (i.e. L1 misses).  Accesses are grouped into
4 KiB regions; each region tracks the furthest line touched and a direction.
Once a region shows two accesses in a consistent direction, the prefetcher
runs ``degree`` lines ahead of the furthest point.  Tracking the *frontier*
rather than the last address makes the detector robust to the out-of-order
arrival of requests from cores that overlap their misses — exactly the
traffic an OoO or CASINO core generates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import Stats


class _RegionState:
    __slots__ = ("last_line", "frontier", "direction", "confidence")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.frontier = line
        self.direction = 0
        self.confidence = 0


class StridePrefetcher:
    """Region-based streaming/stride detector issuing frontier prefetches."""

    def __init__(self, cache, dram, n_streams: int = 16, degree: int = 2,
                 stats: Optional[Stats] = None) -> None:
        self.cache = cache        # the L2 to fill
        self.dram = dram          # where prefetches are fetched from
        self.n_streams = n_streams
        self.degree = degree
        self.stats = stats if stats is not None else Stats()
        self.table: Dict[int, _RegionState] = {}

    def train(self, addr: int, cycle: int) -> None:
        """Observe an L2 demand access; possibly issue prefetches."""
        line = addr >> 6
        region = addr >> 12
        state = self.table.get(region)
        if state is None:
            if len(self.table) >= self.n_streams:
                self.table.pop(next(iter(self.table)))
            self.table[region] = _RegionState(line)
            return
        delta = line - state.last_line
        state.last_line = line
        if delta == 0:
            return
        direction = 1 if delta > 0 else -1
        if direction == state.direction:
            state.confidence = min(state.confidence + 1, 4)
        else:
            state.direction = direction
            state.confidence = 1
        if direction > 0:
            state.frontier = max(state.frontier, line)
        else:
            state.frontier = min(state.frontier, line)
        if state.confidence >= 2:
            for i in range(1, self.degree + 1):
                target = (state.frontier + direction * i) << 6
                if self.cache.contains(target) or (target >> 6) in self.cache.mshrs:
                    continue
                latency = self.dram.access(target, cycle)
                self.cache.install_prefetch(target, cycle + latency)
                self.stats.add("prefetches_issued")
            state.frontier += direction * self.degree
