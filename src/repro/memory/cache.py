"""Set-associative write-back cache with LRU replacement, dirty-line
writebacks and MSHR merging.

The timing contract is latency-based: ``access()`` returns the number of
cycles until data is available.  Outstanding misses are tracked per line in
a small MSHR file so that a second access to an in-flight line merges with
it (paying only the residual latency), and a full MSHR file back-pressures
new misses.  Stores mark lines dirty; evicting a dirty line emits a
writeback to the next level (counted, and occupying next-level bandwidth,
but not charged to the access that triggered the eviction — the usual
victim-buffer assumption).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.common.params import CacheConfig
from repro.common.stats import Stats

#: Type of the next-level access function: (addr, cycle) -> latency.
NextLevel = Callable[[int, int], int]


class Cache:
    """One cache level.

    Parameters
    ----------
    name:
        Stats prefix (``l1d``, ``l1i``, ``l2``).
    cfg:
        Geometry and latency.
    next_level:
        Called on a miss to fetch the line from below.
    stats:
        Shared counter bag.
    writeback_sink:
        Called with (addr, cycle) when a dirty line is evicted; defaults to
        ``next_level`` (return value ignored).  Hierarchies can use it to
        update lower-level state without training prefetchers.
    """

    def __init__(self, name: str, cfg: CacheConfig,
                 next_level: NextLevel,
                 stats: Optional[Stats] = None,
                 writeback_sink: Optional[NextLevel] = None) -> None:
        self.name = name
        self.cfg = cfg
        self.next_level = next_level
        self.writeback_sink = writeback_sink
        self.stats = stats if stats is not None else Stats()
        self.n_sets = cfg.n_sets
        self._line_shift = cfg.line_bytes.bit_length() - 1
        # sets[s] maps tag -> last-use stamp (LRU by smallest stamp).
        self.sets: Dict[int, Dict[int, int]] = {}
        self.dirty: Set[int] = set()
        # Outstanding fills: line address -> fill-completion cycle.
        self.mshrs: Dict[int, int] = {}
        self._use_stamp = 0
        #: Optional hook invoked with (addr, cycle) on every *demand* access
        #: (the prefetcher trains here; for the L2, every demand access is an
        #: L1 miss, so training here keeps following a prefetched stream).
        self.access_hook: Optional[Callable[[int, int], None]] = None
        # Stat keys interned once: access() runs per memory reference, and
        # rebuilding f"{name}_..." strings there shows up in profiles.
        self._k_accesses = f"{name}_accesses"
        self._k_hits = f"{name}_hits"
        self._k_misses = f"{name}_misses"
        self._k_mshr_merges = f"{name}_mshr_merges"
        self._k_mshr_stalls = f"{name}_mshr_stalls"
        self._k_evictions = f"{name}_evictions"
        self._k_writebacks = f"{name}_writebacks"
        self._k_prefetch_fills = f"{name}_prefetch_fills"

    # -- internals -----------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def _lookup(self, line: int) -> bool:
        set_idx = line % self.n_sets
        tags = self.sets.get(set_idx)
        if tags is not None and line in tags:
            self._use_stamp += 1
            tags[line] = self._use_stamp
            return True
        return False

    def _install(self, line: int, cycle: int) -> None:
        set_idx = line % self.n_sets
        tags = self.sets.setdefault(set_idx, {})
        self._use_stamp += 1
        if line in tags:
            tags[line] = self._use_stamp
            return
        if len(tags) >= self.cfg.assoc:
            victim = min(tags, key=tags.get)
            del tags[victim]
            self.stats.add(self._k_evictions)
            if victim in self.dirty:
                self.dirty.discard(victim)
                self.stats.add(self._k_writebacks)
                sink = self.writeback_sink or self.next_level
                sink(victim << self._line_shift, cycle)
        tags[line] = self._use_stamp

    def _reap_mshrs(self, cycle: int) -> None:
        if len(self.mshrs) > 2 * self.cfg.mshrs:
            done = [l for l, t in self.mshrs.items() if t <= cycle]
            for l in done:
                del self.mshrs[l]

    # -- public interface ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no LRU update)."""
        line = self._line(addr)
        tags = self.sets.get(line % self.n_sets)
        return tags is not None and line in tags

    def access(self, addr: int, cycle: int, is_write: bool = False,
               prefetch: bool = False) -> int:
        """Access ``addr``; returns cycles until the data is available."""
        line = addr >> self._line_shift
        counters = self.stats.counters
        hit_latency = self.cfg.latency
        if not prefetch:
            counters[self._k_accesses] += 1.0
            if self.access_hook is not None:
                self.access_hook(addr, cycle)
        if is_write:
            self.dirty.add(line)
        # In-flight fill for the same line: merge (checked before the tag
        # lookup because fills are installed eagerly at miss time).
        mshrs = self.mshrs
        fill_at = mshrs.get(line)
        if fill_at is not None and fill_at > cycle:
            if not prefetch:
                counters[self._k_mshr_merges] += 1.0
            self._install(line, cycle)
            return (fill_at - cycle) + hit_latency
        # Inlined _lookup: the hit path is the hottest branch in the model.
        tags = self.sets.get(line % self.n_sets)
        if tags is not None and line in tags:
            self._use_stamp += 1
            tags[line] = self._use_stamp
            if not prefetch:
                counters[self._k_hits] += 1.0
            return hit_latency
        if not prefetch:
            counters[self._k_misses] += 1.0
        # MSHR back-pressure: wait for the earliest outstanding fill.  The
        # dict holds completed entries until lazily reaped, so its length
        # alone can't prove pressure — but it does bound the live count,
        # which skips the filtering scan on the common uncontended miss.
        delay = 0
        if len(mshrs) >= self.cfg.mshrs:
            outstanding = [t for t in mshrs.values() if t > cycle]
            if len(outstanding) >= self.cfg.mshrs:
                delay = min(outstanding) - cycle
                counters[self._k_mshr_stalls] += 1.0
        below = self.next_level(addr, cycle + delay + hit_latency)
        latency = hit_latency + delay + below
        mshrs[line] = cycle + latency
        self._reap_mshrs(cycle)
        self._install(line, cycle)
        return latency

    def install_prefetch(self, addr: int, fill_at: int) -> None:
        """Install a prefetched line that completes at ``fill_at``."""
        line = self._line(addr)
        if self._lookup(line):
            return
        self.mshrs[line] = fill_at
        self._install(line, fill_at)
        self.stats.add(self._k_prefetch_fills)
