"""Memory subsystem: caches with MSHRs, a stride prefetcher and DDR4 DRAM.

Composition follows Table I: 32 KiB 8-way L1I and L1D at 4 cycles, a unified
1 MiB 16-way 11-cycle L2 with a stride-based prefetcher, and a single-channel
DDR4 main memory.
"""

from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher

__all__ = ["Cache", "Dram", "MemoryHierarchy", "StridePrefetcher"]
