"""Core-level energy and area accounting (Figure 9 machinery).

For each core kind we build an inventory of structures sized from the
:class:`~repro.common.params.CoreConfig`.  Every structure contributes
area (for the Figure 9a stack and for leakage) and a set of
``(event counter, energy-per-event)`` bindings (for dynamic energy).
Counters are exactly the ones the timing cores emit, so the accounting is
driven by what actually happened cycle by cycle — the McPAT methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.params import (
    NUM_ARCH_REGS,
    CoreConfig,
)
from repro.common.stats import Stats
from repro.power.structures import (
    CORE_CLOCK_HZ,
    FU_AREA_MM2,
    FU_ENERGY_PJ,
    L1_ACCESS_PJ,
    L1_AREA_MM2,
    LEAKAGE_W_PER_MM2,
    WAKEUP_PJ_PER_ENTRY,
    cam_search_pj,
    ram_access_pj,
    sram_area_mm2,
)

_PJ = 1e-12


@dataclass
class EnergyReport:
    """Energy split of one simulated run."""

    dynamic_j: float
    leakage_j: float
    by_group: Dict[str, float]
    cycles: float
    committed: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.leakage_j

    @property
    def epi_nj(self) -> float:
        """Energy per committed instruction in nanojoules."""
        return (self.total_j / self.committed) * 1e9 if self.committed else 0.0

    def efficiency(self) -> float:
        """Performance per energy (IPS per watt ~ committed^2/(cycles*J))."""
        if self.cycles == 0 or self.total_j == 0:
            return 0.0
        seconds = self.cycles / CORE_CLOCK_HZ
        ips = self.committed / seconds
        watts = self.total_j / seconds
        return ips / watts


@dataclass
class CorePowerModel:
    """Inventory of structures for one core configuration."""

    cfg: CoreConfig
    #: (group, counter name, picojoules per counted event)
    dynamic_items: List[Tuple[str, str, float]] = field(default_factory=list)
    #: (group, structure name, mm^2)
    area_items: List[Tuple[str, str, float]] = field(default_factory=list)

    def add_dyn(self, group: str, counter: str, pj: float) -> None:
        self.dynamic_items.append((group, counter, pj))

    def add_area(self, group: str, name: str, mm2: float) -> None:
        self.area_items.append((group, name, mm2))

    # -- outputs -------------------------------------------------------------

    def area_mm2(self) -> float:
        return sum(a for _, _, a in self.area_items)

    def area_by_group(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for group, _, mm2 in self.area_items:
            out[group] = out.get(group, 0.0) + mm2
        return out

    def energy(self, stats: Stats) -> EnergyReport:
        by_group: Dict[str, float] = {}
        dynamic = 0.0
        for group, counter, pj in self.dynamic_items:
            joules = stats.get(counter) * pj * _PJ
            dynamic += joules
            by_group[group] = by_group.get(group, 0.0) + joules
        seconds = stats.cycles / CORE_CLOCK_HZ
        leakage = self.area_mm2() * LEAKAGE_W_PER_MM2 * seconds
        by_group["leakage"] = leakage
        return EnergyReport(dynamic_j=dynamic, leakage_j=leakage,
                            by_group=by_group, cycles=stats.cycles,
                            committed=stats.committed)


def build_power_model(cfg: CoreConfig) -> CorePowerModel:
    """Construct the structure inventory for ``cfg.kind``."""
    model = CorePowerModel(cfg)
    _common_inventory(model)
    builder = {
        "ino": _ino_inventory,
        "ooo": _ooo_inventory,
        "casino": _casino_inventory,
        "lsc": _slice_inventory,
        "freeway": _slice_inventory,
        "specino": _ino_inventory,
    }[cfg.kind]
    builder(model)
    return model


# -- shared front end, caches, functional units --------------------------------


def _common_inventory(model: CorePowerModel) -> None:
    cfg = model.cfg
    # Branch prediction: 32 KiB TAGE + BTB.
    model.add_area("frontend", "tage", 0.30)
    model.add_area("frontend", "btb", 0.12)
    model.add_dyn("frontend", "bp_lookups", 9.0)
    model.add_dyn("frontend", "btb_lookups", 4.0)
    # Fetch/decode pipeline energy per fetched instruction.
    model.add_dyn("frontend", "fetched", 3.0)
    model.add_dyn("frontend", "l1i_accesses", L1_ACCESS_PJ)
    model.add_area("frontend", "l1i", L1_AREA_MM2)
    # L1D (core-side; L2 and DRAM are excluded, as in the paper).
    model.add_dyn("lsu", "l1d_accesses", L1_ACCESS_PJ)
    model.add_dyn("lsu", "l1d_writebacks", L1_ACCESS_PJ)
    model.add_area("lsu", "l1d", L1_AREA_MM2)
    # Functional units: energy by issue mix, area by pool size.
    model.add_dyn("fu", "issued", FU_ENERGY_PJ["alu"])
    model.add_dyn("fu", "mem_loads", FU_ENERGY_PJ["agu"])
    model.add_dyn("fu", "mem_stores", FU_ENERGY_PJ["agu"])
    model.add_area("fu", "alus", cfg.n_alu * FU_AREA_MM2["alu"])
    model.add_area("fu", "fpus", cfg.n_fpu * FU_AREA_MM2["fpu"])
    model.add_area("fu", "agus", cfg.n_agu * FU_AREA_MM2["agu"])
    # Result/bypass network scales with width.
    model.add_dyn("fu", "issued", 2.0 * cfg.width)
    model.add_area("fu", "bypass", 0.02 * cfg.width)


def _arf_area(ports: int) -> float:
    return sram_area_mm2(NUM_ARCH_REGS, 64, ports)


# -- in-order baseline ------------------------------------------------------------


def _ino_inventory(model: CorePowerModel) -> None:
    cfg = model.cfg
    ports = 2 * cfg.width
    # Architectural register file.
    model.add_area("rf", "arf", _arf_area(ports))
    model.add_dyn("rf", "issued", 2 * ram_access_pj(NUM_ARCH_REGS, 64, ports))
    # 16-entry in-order IQ (payload RAM, FIFO).
    model.add_area("scheduler", "iq", sram_area_mm2(cfg.iq_size, 96))
    model.add_dyn("scheduler", "dispatched", ram_access_pj(cfg.iq_size, 96))
    model.add_dyn("scheduler", "issued", ram_access_pj(cfg.iq_size, 96))
    # Scoreboard.
    model.add_area("scheduler", "scb", sram_area_mm2(cfg.scb_size, 80))
    model.add_dyn("scheduler", "scb_access", ram_access_pj(cfg.scb_size, 80))
    # Store buffer (small CAM).
    model.add_area("lsu", "sb", sram_area_mm2(cfg.sq_sb_size, 108, cam=True))
    model.add_dyn("lsu", "sb_search", cam_search_pj(cfg.sq_sb_size, 44))
    model.add_dyn("lsu", "sb_writes", ram_access_pj(cfg.sq_sb_size, 108))
    model.add_dyn("lsu", "sb_retires", ram_access_pj(cfg.sq_sb_size, 108))


# -- conventional out-of-order ------------------------------------------------------


def _ooo_inventory(model: CorePowerModel) -> None:
    cfg = model.cfg
    prf_entries = cfg.prf_int + cfg.prf_fp
    prf_ports = 3 * cfg.width
    # Rename: RAT + free list.
    model.add_area("rename", "rat", sram_area_mm2(NUM_ARCH_REGS, 8, 3 * cfg.width))
    model.add_area("rename", "rat_checkpoints", 0.08 * cfg.width / 2)
    model.add_dyn("rename", "rat_reads", ram_access_pj(NUM_ARCH_REGS, 8, 3 * cfg.width))
    model.add_dyn("rename", "rat_writes", ram_access_pj(NUM_ARCH_REGS, 8, 3 * cfg.width))
    model.add_dyn("rename", "freelist_ops", 1.2)
    model.add_area("rename", "freelist", sram_area_mm2(prf_entries, 8))
    # PRF.
    model.add_area("rf", "prf", sram_area_mm2(prf_entries, 64, prf_ports))
    model.add_dyn("rf", "prf_reads", ram_access_pj(prf_entries, 64, prf_ports))
    model.add_dyn("rf", "prf_writes", ram_access_pj(prf_entries, 64, prf_ports))
    # Issue queue: wakeup CAM + select (prefix-sum + age matrix) + payload.
    model.add_area("scheduler", "iq_cam",
                   sram_area_mm2(cfg.iq_size, 2 * 8, 2 * cfg.width, cam=True))
    model.add_area("scheduler", "iq_select", 0.10 * cfg.width)
    model.add_area("scheduler", "age_matrix",
                   sram_area_mm2(cfg.iq_size, cfg.iq_size, 2))
    model.add_area("scheduler", "window_control", 0.06 * cfg.width)
    model.add_area("scheduler", "iq_payload", sram_area_mm2(cfg.iq_size, 96))
    # iq_wakeup_cam counts entry-broadcasts (sum of occupancy over issues):
    # each broadcast compares two source tags per entry.
    model.add_dyn("scheduler", "iq_wakeup_cam", 5 * WAKEUP_PJ_PER_ENTRY)
    # Prefix-sum select across the whole window, once per select port.
    model.add_dyn("scheduler", "iq_select", 0.875 * cfg.iq_size * cfg.width)
    model.add_dyn("scheduler", "iq_writes", ram_access_pj(cfg.iq_size, 96))
    model.add_dyn("scheduler", "issued", ram_access_pj(cfg.iq_size, 96))
    # ROB.
    model.add_area("rob", "rob", sram_area_mm2(cfg.rob_size, 128, cfg.width))
    model.add_dyn("rob", "rob_writes", ram_access_pj(cfg.rob_size, 128, cfg.width))
    model.add_dyn("rob", "rob_reads", ram_access_pj(cfg.rob_size, 128, cfg.width))
    # LSU: LQ + unified SQ/SB, both CAMs (the OoO+NoLQ variant of Figure 9
    # drops the load queue entirely).
    if cfg.disambiguation not in ("nolq", "nolq_osca"):
        model.add_area("lsu", "lq", sram_area_mm2(cfg.lq_size, 52, 2, cam=True))
        model.add_dyn("lsu", "lq_searches", 8 * cam_search_pj(cfg.lq_size, 44))
        model.add_dyn("lsu", "lq_writes", 2 * ram_access_pj(cfg.lq_size, 52))
        model.add_dyn("lsu", "lq_reads", ram_access_pj(cfg.lq_size, 52))
    model.add_area("lsu", "sq", sram_area_mm2(cfg.sq_sb_size, 108, 2, cam=True))
    model.add_dyn("lsu", "sq_searches", 4 * cam_search_pj(cfg.sq_sb_size, 44))
    model.add_dyn("lsu", "sq_writes", ram_access_pj(cfg.sq_sb_size, 108))
    model.add_dyn("lsu", "sq_reads", ram_access_pj(cfg.sq_sb_size, 108))
    model.add_dyn("lsu", "sb_retires", ram_access_pj(cfg.sq_sb_size, 108))


# -- CASINO -----------------------------------------------------------------------


def _casino_inventory(model: CorePowerModel) -> None:
    cfg = model.cfg
    prf_entries = cfg.prf_int + cfg.prf_fp
    prf_ports = 3 * cfg.width
    # Rename: smaller RAT (conditional allocation), recovery log.
    model.add_area("rename", "rat", sram_area_mm2(NUM_ARCH_REGS, 8, 2 * cfg.width))
    model.add_dyn("rename", "rat_reads", ram_access_pj(NUM_ARCH_REGS, 8, 2 * cfg.width))
    model.add_dyn("rename", "rat_writes", ram_access_pj(NUM_ARCH_REGS, 8, 2 * cfg.width))
    model.add_dyn("rename", "freelist_ops", 1.2)
    model.add_dyn("rename", "reg_allocs", 1.2)
    model.add_area("rename", "recovery_log", sram_area_mm2(16, 16))
    model.add_dyn("rename", "producer_count_incs", 0.8)
    # PRF (smaller than OoO) + PRF scoreboard.
    model.add_area("rf", "prf", sram_area_mm2(prf_entries, 64, prf_ports))
    model.add_dyn("rf", "prf_reads", ram_access_pj(prf_entries, 64, prf_ports))
    model.add_dyn("rf", "prf_writes", ram_access_pj(prf_entries, 64, prf_ports))
    model.add_area("rf", "prf_scb", sram_area_mm2(prf_entries, 10))
    model.add_dyn("rf", "siq_examined", 2 * ram_access_pj(prf_entries, 10))
    # Each SpecInO examination reads the RAT for the window's sources.
    model.add_dyn("rename", "siq_examined", 4.0)
    # Cascaded FIFOs: S-IQ(s) + IQ (no wakeup CAM, no select logic).
    siq_total = cfg.siq_size + cfg.n_intermediate_siqs * cfg.intermediate_siq_size
    model.add_area("scheduler", "siq", sram_area_mm2(siq_total, 96))
    model.add_area("scheduler", "iq", sram_area_mm2(cfg.iq_size, 96))
    model.add_dyn("scheduler", "dispatched", ram_access_pj(siq_total, 96))
    model.add_dyn("scheduler", "siq_passes", ram_access_pj(cfg.iq_size, 96))
    model.add_dyn("scheduler", "issued", ram_access_pj(cfg.iq_size, 96))
    # Data buffer.
    model.add_area("scheduler", "data_buffer",
                   sram_area_mm2(cfg.data_buffer_size, 64))
    model.add_dyn("scheduler", "dbuf_access",
                  ram_access_pj(cfg.data_buffer_size, 64))
    # ROB.
    model.add_area("rob", "rob", sram_area_mm2(cfg.rob_size, 128, cfg.width))
    model.add_dyn("rob", "rob_writes", ram_access_pj(cfg.rob_size, 128, cfg.width))
    model.add_dyn("rob", "rob_reads", ram_access_pj(cfg.rob_size, 128, cfg.width))
    # LSU: unified SQ/SB CAM + OSCA, no LQ.
    model.add_area("lsu", "sq_sb", sram_area_mm2(cfg.sq_sb_size, 108, 2, cam=True))
    model.add_dyn("lsu", "sq_searches", 4 * cam_search_pj(cfg.sq_sb_size, 44))
    model.add_dyn("lsu", "sq_writes", ram_access_pj(cfg.sq_sb_size, 108))
    model.add_dyn("lsu", "sb_retires", ram_access_pj(cfg.sq_sb_size, 108))
    if cfg.disambiguation == "fully_ooo":
        model.add_area("lsu", "lq", sram_area_mm2(cfg.lq_size, 52, cam=True))
        model.add_dyn("lsu", "lq_searches", cam_search_pj(cfg.lq_size, 44))
        model.add_dyn("lsu", "lq_writes", 2 * ram_access_pj(cfg.lq_size, 52))
        model.add_dyn("lsu", "lq_reads", ram_access_pj(cfg.lq_size, 52))
    if cfg.disambiguation == "nolq_osca":
        model.add_area("lsu", "osca", sram_area_mm2(cfg.osca_entries, 4))
        model.add_dyn("lsu", "osca_access", ram_access_pj(cfg.osca_entries, 4))


# -- slice cores (LSC / Freeway) ------------------------------------------------------


def _slice_inventory(model: CorePowerModel) -> None:
    cfg = model.cfg
    ports = 2 * cfg.width
    model.add_area("rf", "arf", _arf_area(ports))
    model.add_dyn("rf", "issued", 2 * ram_access_pj(NUM_ARCH_REGS, 64, ports))
    queues = cfg.biq_size + cfg.aiq_size + (cfg.yiq_size if cfg.kind == "freeway" else 0)
    model.add_area("scheduler", "iqs", sram_area_mm2(queues, 96))
    model.add_dyn("scheduler", "dispatched", ram_access_pj(cfg.biq_size, 96))
    model.add_dyn("scheduler", "issued", ram_access_pj(cfg.biq_size, 96))
    model.add_area("scheduler", "ist", sram_area_mm2(cfg.ist_entries, 10))
    model.add_dyn("scheduler", "dispatched", ram_access_pj(cfg.ist_entries, 10))
    model.add_area("rob", "rob", sram_area_mm2(cfg.rob_size, 64, cfg.width))
    model.add_dyn("rob", "dispatched", ram_access_pj(cfg.rob_size, 64))
    model.add_dyn("rob", "committed", ram_access_pj(cfg.rob_size, 64))
    model.add_area("lsu", "sb", sram_area_mm2(cfg.sq_sb_size, 108, cam=True))
    model.add_dyn("lsu", "mem_loads", cam_search_pj(cfg.sq_sb_size, 44))
    model.add_dyn("lsu", "sb_retires", ram_access_pj(cfg.sq_sb_size, 108))
