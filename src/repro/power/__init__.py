"""McPAT/CACTI-like analytical power and area model (22 nm class).

The paper estimates energy with modified McPAT + CACTI 6.5, "considering
only core components excluding L2 cache, main memory, and interconnection
networks".  This package reproduces that accounting structure: each core
kind gets an inventory of SRAM/CAM structures sized from its
:class:`~repro.common.params.CoreConfig`; per-access energies follow
CACTI-style scaling laws; dynamic energy is event counts x per-access
energy, and leakage is proportional to area x runtime.
"""

from repro.power.accounting import CorePowerModel, EnergyReport, build_power_model
from repro.power.structures import cam_search_pj, ram_access_pj, sram_area_mm2

__all__ = [
    "CorePowerModel",
    "EnergyReport",
    "build_power_model",
    "cam_search_pj",
    "ram_access_pj",
    "sram_area_mm2",
]
