"""CACTI-style scaling laws for small core structures at a 22 nm-class node.

These are analytical fits, not a circuit simulator: the paper's conclusions
rest on *relative* energies (a CAM search across N entries costs ~N tag
comparisons; a RAM access scales ~sqrt(entries); ports multiply both), and
those relations are what the formulas preserve.  The absolute constants are
calibrated (see the module docstring of :mod:`repro.power.accounting`) so
the InO / CASINO / OoO totals reproduce the relative areas and energies the
paper obtained from its modified McPAT + CACTI 6.5 flow.
"""

from __future__ import annotations

import math

# Energy anchors (picojoules).
_RAM_PJ_PER_BIT = 0.030      # per bit at 64-entry scale
_CAM_PJ_PER_ENTRY_BIT = 0.020
_WORDLINE_BASE_PJ = 0.5

#: Per-entry-broadcast wakeup energy (pJ) for a 2-source-tag IQ CAM entry.
WAKEUP_PJ_PER_ENTRY = 2 * 8 * _CAM_PJ_PER_ENTRY_BIT

# Area anchors (mm^2 per bit) including decoder/sense overhead.
_MM2_PER_BIT = 2.0e-6
_CAM_AREA_FACTOR = 3.0       # CAM cells ~2x SRAM plus match/priority logic
_PORT_AREA_EXP = 1.5

# Functional-unit energies (pJ/op) and areas (mm^2), 22 nm class.
FU_ENERGY_PJ = {"alu": 5.0, "fpu": 18.0, "agu": 3.5, "mul": 12.0}
FU_AREA_MM2 = {"alu": 0.012, "fpu": 0.045, "agu": 0.008}

# L1 cache access energy (pJ) — core-side; L2/DRAM excluded per the paper.
L1_ACCESS_PJ = 22.0
L1_AREA_MM2 = 0.50           # 32 KiB 8-way incl. tags at 22 nm

#: Leakage density: watts per mm^2 at 22 nm (low-leakage cells).
LEAKAGE_W_PER_MM2 = 0.015

#: Core clock (Table I: 2 GHz) used to convert cycles to seconds.
CORE_CLOCK_HZ = 2.0e9


def ram_access_pj(entries: int, width_bits: int, ports: int = 1) -> float:
    """Energy of one RAM read/write.

    Wordline/bitline energy grows ~sqrt(entries) (square array), linear in
    width, and each extra port lengthens wires (~30% per port).
    """
    entries = max(entries, 1)
    scale = math.sqrt(entries / 64.0)
    port_factor = 1.0 + 0.3 * (ports - 1)
    return (_WORDLINE_BASE_PJ
            + _RAM_PJ_PER_BIT * width_bits * max(scale, 0.25)) * port_factor


def cam_search_pj(entries: int, tag_bits: int, ports: int = 1) -> float:
    """Energy of one associative search: every entry compares its tag."""
    port_factor = 1.0 + 0.3 * (ports - 1)
    return (_WORDLINE_BASE_PJ
            + _CAM_PJ_PER_ENTRY_BIT * max(entries, 1) * tag_bits) * port_factor


def sram_area_mm2(entries: int, width_bits: int, ports: int = 1,
                  cam: bool = False) -> float:
    """Area of an SRAM/CAM array including port overhead."""
    bits = max(entries, 1) * width_bits
    area = bits * _MM2_PER_BIT * (ports ** _PORT_AREA_EXP)
    if cam:
        area *= _CAM_AREA_FACTOR
    return area
