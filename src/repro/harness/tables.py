"""Plain-text table/series formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Union[str, Number]]],
                 float_fmt: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned ASCII table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    text_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def format_series(name: str, series: Mapping[str, Number],
                  float_fmt: str = "{:.3f}") -> str:
    """One-line ``name: key=value`` rendering for sweep output."""
    parts = ", ".join(
        f"{k}={float_fmt.format(v) if isinstance(v, float) else v}"
        for k, v in series.items())
    return f"{name}: {parts}"


def format_bars(values: Mapping[str, Number], width: int = 40,
                float_fmt: str = "{:.2f}") -> str:
    """Horizontal ASCII bar chart — the terminal rendering of the paper's
    bar figures.  Bars scale to the largest value."""
    if not values:
        return "(no data)"
    peak = max(float(v) for v in values.values())
    label_w = max(len(str(k)) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * max(1, round(width * float(value) / peak)) if peak else ""
        lines.append(f"{str(key).ljust(label_w)}  "
                     f"{float_fmt.format(float(value)).rjust(6)} |{bar}")
    return "\n".join(lines)
