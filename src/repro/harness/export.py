"""Export experiment results to JSON (plot-ready, stable key order).

Experiment ``run()`` functions return plain dicts, sometimes keyed by
tuples (e.g. Figure 11's ``(core, width)``); this module normalises those
into JSON-safe structures so downstream notebooks can regenerate the
paper's plots without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union


def jsonable(value: Any) -> Any:
    """Recursively convert an experiment result into JSON-safe data.

    Tuple dict-keys become ``"a/b"`` strings; numpy scalars and other
    numerics are coerced via float when needed.
    """
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "/".join(str(part) for part in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def write_json(results: Any, path: Union[str, Path]) -> None:
    """Write normalised ``results`` to ``path`` as pretty JSON."""
    with open(path, "w") as fh:
        json.dump(jsonable(results), fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_json(path: Union[str, Path]) -> Any:
    with open(path) as fh:
        return json.load(fh)
