"""Experiment harness: memoised runs, comparisons, tables, timelines,
JSON export, failure containment and checkpointing."""

from repro.harness.export import jsonable, read_json, write_json
from repro.harness.resilience import (
    FailureRecord,
    ResilientRunner,
    SweepCheckpoint,
    failure_report,
)
from repro.harness.runner import RunResult, Runner
from repro.harness.tables import format_bars, format_series, format_table
from repro.harness.timeline import issue_order, render_timeline

__all__ = [
    "Runner",
    "RunResult",
    "ResilientRunner",
    "FailureRecord",
    "SweepCheckpoint",
    "failure_report",
    "format_table",
    "format_series",
    "format_bars",
    "render_timeline",
    "issue_order",
    "jsonable",
    "read_json",
    "write_json",
]
