"""Memoised simulation runner.

Running 25 applications across half a dozen core models is the unit of work
behind every figure; the :class:`Runner` caches traces per profile and
statistics per (core-config, workload) pair so the figure drivers and the
pytest benchmarks can share work within a process.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.params import CoreConfig, MemoryConfig
from repro.common.stats import Stats, geomean
from repro.cores import build_core
from repro.power.accounting import EnergyReport, build_power_model
from repro.workloads.generator import SyntheticWorkload, WorkloadProfile


@dataclass
class RunResult:
    """One (core, application) simulation with derived metrics.

    ``failed`` marks a placeholder produced by the resilience layer for a
    run that raised ``SimulationError`` (its stats are empty, IPC is 0).
    """

    core: CoreConfig
    app: str
    stats: Stats
    energy: EnergyReport
    failed: bool = False
    error: Optional[str] = None
    #: CPI-stack report (``CycleAccounting.report()``) when the runner was
    #: built with ``accounting=True``; ``None`` otherwise.
    accounting: Optional[dict] = None
    #: Per-reason stall counters (``MetricsSampler.stall_breakdown()``)
    #: when the runner samples; ``None`` otherwise.
    stalls: Optional[Dict[str, float]] = None
    #: Fast-forward telemetry from the event-driven quiescence skipper:
    #: spans jumped and cycles elided.  Observability only — the timed
    #: counters are bit-identical with skipping on or off.
    ff_spans: int = 0
    ff_skipped_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _cfg_key(cfg: CoreConfig) -> str:
    return repr(sorted(dataclasses.asdict(cfg).items()))


def _mem_key(mem_cfg: Optional[MemoryConfig]) -> str:
    # Snapshot the *current* field values: a mutated (or swapped) memory
    # config must never serve results cached under the old hierarchy.
    mem = mem_cfg if mem_cfg is not None else MemoryConfig()
    return repr(sorted(dataclasses.asdict(mem).items()))


class Runner:
    """Caches traces and per-(core, memory, app) results."""

    #: Default trace-cache bound.  Traces dominate a runner's footprint
    #: (tens of MB per 24k-instruction trace set), so long-lived service
    #: workers need the cache bounded; 64 entries comfortably covers the
    #: 25-app suite plus seed variants within one figure.
    DEFAULT_TRACE_CACHE_ENTRIES = 64

    def __init__(self, n_instrs: int = 24_000, warmup: int = 6_000,
                 mem_cfg: Optional[MemoryConfig] = None,
                 sanitize: Optional[bool] = None,
                 accounting: bool = False,
                 sample_interval: Optional[int] = None,
                 trace_cache_entries: Optional[int] = None,
                 trace_store=None) -> None:
        self.n_instrs = n_instrs
        self.warmup = warmup
        self.mem_cfg = mem_cfg
        self.sanitize = sanitize
        #: Attach a CycleAccounting observer to every simulation and carry
        #: its CPI-stack report on the RunResult.  Observers are read-only,
        #: so cached results stay valid either way.
        self.accounting = accounting
        #: When set, attach a MetricsSampler with this interval and carry
        #: its stall breakdown on the RunResult.
        self.sample_interval = sample_interval
        #: LRU bound on the per-profile trace cache (None/0 = unbounded).
        self.trace_cache_entries = (self.DEFAULT_TRACE_CACHE_ENTRIES
                                    if trace_cache_entries is None
                                    else trace_cache_entries)
        #: Traces evicted over this runner's lifetime (reported by the
        #: service ``/stats`` endpoint for long-lived worker processes).
        self.trace_evictions = 0
        #: In-process trace-cache hits/misses (a miss that the shared
        #: TraceStore satisfies still counts as a miss here — the store
        #: keeps its own hit/miss counters).
        self.trace_hits = 0
        self.trace_misses = 0
        #: Optional cross-process trace cache (service.store.TraceStore):
        #: consulted on an in-process LRU miss, published to on generate,
        #: so pool workers share one generation of each (app, seed, n).
        self.trace_store = trace_store
        self._traces: "OrderedDict[str, list]" = OrderedDict()
        self._results: Dict[tuple, RunResult] = {}

    def _observers(self):
        """Fresh (accounting, sampler) observers per the runner config."""
        from repro.obs.accounting import CycleAccounting
        from repro.obs.metrics import MetricsSampler
        acct = CycleAccounting() if self.accounting else None
        sampler = (MetricsSampler(self.sample_interval)
                   if self.sample_interval else None)
        return acct, sampler

    def trace(self, profile: WorkloadProfile) -> list:
        """The (LRU-cached) dynamic trace for a workload profile."""
        key = f"{profile.name}:{profile.seed}:{self.n_instrs}"
        if key in self._traces:
            self.trace_hits += 1
            self._traces.move_to_end(key)
            return self._traces[key]
        self.trace_misses += 1
        trace = (self.trace_store.get(profile, self.n_instrs)
                 if self.trace_store is not None else None)
        if trace is None:
            trace = SyntheticWorkload(profile).generate(self.n_instrs)
            if self.trace_store is not None:
                self.trace_store.put(profile, self.n_instrs, trace)
        self._traces[key] = trace
        if self.trace_cache_entries and len(self._traces) > self.trace_cache_entries:
            self._traces.popitem(last=False)
            self.trace_evictions += 1
        return trace

    def trace_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters for the in-process trace LRU."""
        return {"hits": self.trace_hits, "misses": self.trace_misses,
                "evictions": self.trace_evictions,
                "entries": len(self._traces)}

    def _result_key(self, cfg: CoreConfig, profile: WorkloadProfile) -> tuple:
        return (_cfg_key(cfg), _mem_key(self.mem_cfg), profile.name,
                profile.seed, self.n_instrs, self.warmup)

    def _simulate(self, cfg: CoreConfig, profile: WorkloadProfile) -> RunResult:
        """Uncached single simulation (the seam the resilience layer and
        tests override to inject faults)."""
        core = build_core(cfg, self.mem_cfg)
        acct, sampler = self._observers()
        stats = core.run(self.trace(profile), warmup=self.warmup,
                         sanitize=self.sanitize, accounting=acct,
                         sampler=sampler)
        report = build_power_model(cfg).energy(stats)
        return RunResult(core=cfg, app=profile.name, stats=stats,
                         energy=report,
                         accounting=acct.report() if acct else None,
                         stalls=(sampler.stall_breakdown()
                                 if sampler else None),
                         ff_spans=core.ff_spans,
                         ff_skipped_cycles=core.ff_skipped_cycles)

    def run(self, cfg: CoreConfig, profile: WorkloadProfile) -> RunResult:
        """Simulate ``profile`` on ``cfg`` (cached)."""
        key = self._result_key(cfg, profile)
        if key in self._results:
            return self._results[key]
        result = self._simulate(cfg, profile)
        self._results[key] = result
        return result

    def run_suite(self, cfg: CoreConfig,
                  profiles: Sequence[WorkloadProfile]) -> Dict[str, RunResult]:
        """Simulate every profile on ``cfg``."""
        return {p.name: self.run(cfg, p) for p in profiles}

    def run_seeds(self, cfg: CoreConfig, profile: WorkloadProfile,
                  n_seeds: int = 3) -> Dict[int, RunResult]:
        """Simulate ``n_seeds`` seed-variants of one profile (statistical
        robustness checks): seed k uses ``profile.seed + 1000 * k``."""
        out: Dict[int, RunResult] = {}
        for k in range(n_seeds):
            variant = dataclasses.replace(
                profile, name=f"{profile.name}#s{k}",
                seed=profile.seed + 1000 * k)
            out[k] = self.run(cfg, variant)
        return out

    # -- comparisons -----------------------------------------------------------

    def speedups(self, cfgs: Sequence[CoreConfig],
                 profiles: Sequence[WorkloadProfile],
                 baseline: CoreConfig) -> Dict[str, Dict[str, float]]:
        """Per-app IPC of each config normalised to ``baseline``.

        Returns ``{config name: {app: speedup}}``.
        """
        base = {p.name: self.run(baseline, p).ipc for p in profiles}
        out: Dict[str, Dict[str, float]] = {}
        for cfg in cfgs:
            out[cfg.name] = {
                p.name: self.run(cfg, p).ipc / base[p.name] for p in profiles
            }
        return out

    @staticmethod
    def geomean_speedup(per_app: Dict[str, float]) -> float:
        return geomean(per_app.values())
