"""ASCII pipeline timelines from a recorded schedule.

Feed it the ``core.schedule`` produced by
``core.run(trace, record_schedule=True)`` and it renders one row per
instruction with issue (``i``), execution (``=``), completion (``D``) and
commit (``C``) marked per cycle — the visual language of the paper's
Figure 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst

#: One recorded instruction: (seq, inst, issue_at, done_at, commit_at,
#: from_siq, dispatch_at); pre-dispatch_at 6-field rows still render.
ScheduleEntry = Tuple[int, DynInst, Optional[int], Optional[int], int, bool]


def _label(inst: DynInst, from_siq: bool, tag_spec: bool) -> str:
    name = inst.op.name.lower()
    srcs = ",".join(f"r{s}" for s in inst.srcs)
    dst = f"r{inst.dst}" if inst.dst is not None else "-"
    spec = "*" if (tag_spec and from_siq) else " "
    return f"i{inst.seq:<3}{spec}{name:<8} {dst:<4}<- {srcs:<8}"


def render_timeline(schedule: Sequence[ScheduleEntry],
                    first: int = 0, count: int = 24,
                    width: int = 64, tag_spec: bool = False) -> str:
    """Render ``count`` instructions of a schedule starting at index
    ``first``.  ``tag_spec`` marks speculatively-issued instructions
    (CASINO's S-IQ) with ``*``."""
    window = list(schedule[first:first + count])
    if not window:
        return "(empty schedule)"
    # Span every mark we will draw: issue/done where present, commit always.
    # A window where nothing ever issued is still renderable (wait-only
    # rows show just their commit).
    marks = [t for e in window for t in (e[2], e[3], e[4]) if t is not None]
    start = min(marks)
    end = max(marks)
    span = max(1, end - start + 1)
    scale = max(1, (span + width - 1) // width)

    def col(cycle: int) -> int:
        return (cycle - start) // scale

    n_cols = col(end) + 1
    lines: List[str] = [
        f"cycles {start}..{end}"
        + (f" ({scale} cycles/char)" if scale > 1 else "")
    ]
    for row in window:
        seq, inst, issue_at, done_at, commit_at, from_siq = row[:6]
        cells = [" "] * n_cols
        if issue_at is not None:
            if done_at is not None:
                for cycle in range(issue_at, done_at + 1):
                    cells[col(cycle)] = "="
            cells[col(issue_at)] = "i"
            if done_at is not None:
                cells[col(done_at)] = "D"
        cells[col(commit_at)] = "C"
        lines.append(_label(inst, from_siq, tag_spec) + "|"
                     + "".join(cells) + "|")
    return "\n".join(lines)


def issue_order(schedule: Sequence[ScheduleEntry]) -> List[int]:
    """Sequence numbers sorted by issue time — the *dynamic* schedule the
    core actually produced (ties in program order)."""
    issued = [(e[2], e[0]) for e in schedule if e[2] is not None]
    return [seq for _, seq in sorted(issued)]
