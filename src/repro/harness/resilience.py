"""Failure containment for experiment sweeps.

Every figure funnels through :class:`~repro.harness.runner.Runner`; before
this module a single ``SimulationError`` (deadlock watchdog, cycle-budget
overrun, sanitizer violation) aborted a whole multi-minute sweep with no
partial results.  The resilience layer adds three pieces:

* :class:`ResilientRunner` — a drop-in ``Runner`` that captures structured
  :class:`FailureRecord` diagnostics instead of propagating, optionally
  retries failed synthetic-trace runs with a fresh generator seed, and
  degrades gracefully: a permanently-failing app is *excluded* from
  speedup aggregation (so figures report a partial geomean with an
  explicit exclusion list) rather than killing the sweep.
* :class:`SweepCheckpoint` — atomic per-figure JSON checkpointing so
  ``scripts/run_all_experiments.py`` resumes after a crash or ^C instead
  of recomputing completed figures.
* :func:`failure_report` — render the captured diagnostics for humans.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.common.params import CoreConfig, MemoryConfig
from repro.common.stats import Stats
from repro.engine.core_base import SimulationError
from repro.harness.export import jsonable
from repro.harness.runner import Runner, RunResult
from repro.power.accounting import build_power_model
from repro.workloads.generator import WorkloadProfile

#: Seed stride between retry attempts (a prime, so reseeded variants never
#: collide with the ``run_seeds`` +1000k statistical variants).
RESEED_STRIDE = 7919


@dataclass
class FailureRecord:
    """One captured simulation failure with its structured diagnostics."""

    core: str
    app: str
    seed: int
    error: str
    check: str = ""          # which detector fired (watchdog/sanitizer/...)
    cycle: Optional[int] = None
    debug: str = ""          # the core's _debug_state() snapshot
    attempt: int = 0         # 0 = first run, k = k-th reseeded retry
    details: dict = field(default_factory=dict)
    #: Provenance (config hash, trace seed, git rev, ...) so the failure
    #: is attributable after the fact — see repro.obs.provenance.
    manifest: dict = field(default_factory=dict)

    @classmethod
    def from_error(cls, cfg: CoreConfig, profile: WorkloadProfile,
                   exc: SimulationError, attempt: int = 0) -> "FailureRecord":
        from repro.obs.provenance import run_manifest
        details = dict(getattr(exc, "details", {}) or {})
        return cls(core=cfg.name, app=profile.name, seed=profile.seed,
                   error=str(exc), check=str(details.get("check", "")),
                   cycle=details.get("cycle"),
                   debug=str(details.get("debug", "")),
                   attempt=attempt, details=details,
                   manifest=run_manifest(cfg, profile))

    def summary(self) -> str:
        where = f" at cycle {self.cycle}" if self.cycle is not None else ""
        retry = f" (retry #{self.attempt})" if self.attempt else ""
        return (f"{self.core}/{self.app} seed={self.seed}{retry}: "
                f"[{self.check or 'error'}]{where} {self.error}")


def failure_report(failures: Sequence[FailureRecord],
                   excluded: Sequence[str]) -> str:
    """Human-readable digest of a sweep's captured failures."""
    lines = [f"{len(failures)} failed run(s), "
             f"{len(excluded)} app(s) excluded"]
    for record in failures:
        lines.append(f"  - {record.summary()}")
    if excluded:
        lines.append(f"  excluded apps: {sorted(excluded)}")
    return "\n".join(lines)


class ResilientRunner(Runner):
    """A Runner that contains failures instead of propagating them.

    ``retries`` reseeded attempts are made for a failed run (the synthetic
    trace is regenerated with ``seed + 7919 * k`` under the same app name,
    so a pathological random trace does not kill a figure).  When every
    attempt fails, the app is added to :attr:`excluded`, a placeholder
    ``RunResult(failed=True)`` is cached, and aggregation via
    :meth:`speedups` silently drops the app — callers read
    :attr:`failures` / :attr:`excluded` (or :meth:`drain`) to report it.
    """

    def __init__(self, n_instrs: int = 24_000, warmup: int = 6_000,
                 mem_cfg: Optional[MemoryConfig] = None,
                 sanitize: Optional[bool] = None, retries: int = 1,
                 fault_hook=None, accounting: bool = False,
                 sample_interval: Optional[int] = None,
                 trace_cache_entries: Optional[int] = None,
                 trace_store=None) -> None:
        super().__init__(n_instrs=n_instrs, warmup=warmup, mem_cfg=mem_cfg,
                         sanitize=sanitize, accounting=accounting,
                         sample_interval=sample_interval,
                         trace_cache_entries=trace_cache_entries,
                         trace_store=trace_store)
        self.retries = retries
        #: ``fault_hook(cfg, profile) -> Optional[FaultInjector]`` lets
        #: tests (and chaos runs) perturb specific (core, app) pairs.
        self.fault_hook = fault_hook
        self.failures: List[FailureRecord] = []
        self.excluded: Set[str] = set()

    # -- simulation with capture -------------------------------------------------

    def _simulate(self, cfg: CoreConfig,
                  profile: WorkloadProfile) -> RunResult:
        from repro.cores import build_core
        core = build_core(cfg, self.mem_cfg)
        faults = self.fault_hook(cfg, profile) if self.fault_hook else None
        acct, sampler = self._observers()
        stats = core.run(self.trace(profile), warmup=self.warmup,
                         sanitize=self.sanitize, faults=faults,
                         accounting=acct, sampler=sampler)
        report = build_power_model(cfg).energy(stats)
        return RunResult(core=cfg, app=profile.name, stats=stats,
                         energy=report,
                         accounting=acct.report() if acct else None,
                         stalls=(sampler.stall_breakdown()
                                 if sampler else None))

    def run(self, cfg: CoreConfig, profile: WorkloadProfile) -> RunResult:
        key = self._result_key(cfg, profile)
        if key in self._results:
            return self._results[key]
        try:
            return super().run(cfg, profile)
        except SimulationError as exc:
            self.failures.append(FailureRecord.from_error(cfg, profile, exc))
        for attempt in range(1, self.retries + 1):
            variant = dataclasses.replace(
                profile, seed=profile.seed + RESEED_STRIDE * attempt)
            try:
                retried = super().run(cfg, variant)
            except SimulationError as exc:
                self.failures.append(
                    FailureRecord.from_error(cfg, variant, exc, attempt))
                continue
            # Re-badge under the original app name so figure aggregation
            # keys stay stable, and memoise under the original profile.
            result = RunResult(core=cfg, app=profile.name,
                               stats=retried.stats, energy=retried.energy,
                               accounting=retried.accounting,
                               stalls=retried.stalls)
            self._results[key] = result
            return result
        self.excluded.add(profile.name)
        failed = RunResult(core=cfg, app=profile.name, stats=Stats(),
                           energy=build_power_model(cfg).energy(Stats()),
                           failed=True, error=self.failures[-1].error)
        self._results[key] = failed
        return failed

    # -- degraded aggregation -----------------------------------------------------

    def speedups(self, cfgs: Sequence[CoreConfig],
                 profiles: Sequence[WorkloadProfile],
                 baseline: CoreConfig) -> Dict[str, Dict[str, float]]:
        """Like ``Runner.speedups`` but failed apps are excluded from every
        config's dict (recorded in :attr:`excluded`) instead of raising."""
        base: Dict[str, float] = {}
        usable: List[WorkloadProfile] = []
        for profile in profiles:
            result = self.run(baseline, profile)
            if result.failed or result.ipc <= 0.0:
                self.excluded.add(profile.name)
                continue
            base[profile.name] = result.ipc
            usable.append(profile)
        out: Dict[str, Dict[str, float]] = {}
        for cfg in cfgs:
            per_app: Dict[str, float] = {}
            for profile in usable:
                result = self.run(cfg, profile)
                if result.failed or result.ipc <= 0.0:
                    self.excluded.add(profile.name)
                    continue
                per_app[profile.name] = result.ipc / base[profile.name]
            out[cfg.name] = per_app
        # An app that failed on *any* config is dropped everywhere so each
        # figure aggregates the same partial app set.
        for name in out:
            out[name] = {app: value for app, value in out[name].items()
                         if app not in self.excluded}
        return out

    # -- reporting ----------------------------------------------------------------

    def drain(self):
        """Return and clear ``(failures, excluded)`` — call between figures
        so each reports only its own casualties."""
        failures, excluded = self.failures, self.excluded
        self.failures, self.excluded = [], set()
        return failures, sorted(excluded)


class SweepCheckpoint:
    """Per-figure JSON checkpoint for a long experiment sweep.

    The file maps figure name to its (JSON-normalised) result plus any
    exclusions; writes are atomic (tmp file + ``os.replace``) so a kill at
    any instant leaves a loadable checkpoint.  A corrupt or missing file
    simply restarts the sweep from scratch.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.data: Dict[str, dict] = {}
        if self.path.exists():
            try:
                with open(self.path) as fh:
                    loaded = json.load(fh)
                if isinstance(loaded, dict):
                    self.data = loaded
            except (json.JSONDecodeError, OSError):
                self.data = {}

    def __contains__(self, figure: str) -> bool:
        return figure in self.data

    def get(self, figure: str) -> dict:
        return self.data[figure]

    def put(self, figure: str, result,
            exclusions: Sequence[str] = (),
            failures: Sequence[str] = (),
            manifest: Optional[dict] = None) -> None:
        entry = {"result": jsonable(result),
                 "exclusions": list(exclusions),
                 "failures": list(failures)}
        if manifest:
            entry["manifest"] = jsonable(manifest)
        self.data[figure] = entry
        self._flush()

    def completed(self) -> List[str]:
        return list(self.data)

    def clear(self) -> None:
        self.data = {}
        if self.path.exists():
            self.path.unlink()

    def _flush(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w") as fh:
            json.dump(self.data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)
