"""Configuration dataclasses reproducing Table I of the CASINO paper.

Every simulated model (InO, CASINO, OoO, LSC, Freeway, SpecInO) is described
by a :class:`CoreConfig`; the shared cache/DRAM subsystem by a
:class:`MemoryConfig`; a full experiment run by a :class:`SimConfig`.

The ``make_*_config`` factories encode Table I exactly:

=====================  ===========  ==============  ============
Parameter              InO          CASINO          OoO
=====================  ===========  ==============  ============
Core                   2-wide superscalar @ 2 GHz
Pipeline depth         7 stages     9 stages        9 stages
Issue queue            16 entries   4 (S-IQ) / 12   16 entries
Load queue             --           --              16 entries
Store queue/buffer     4 entries    8 entries       8 entries
Physical registers     --           32 INT, 14 FP   48 INT, 24 FP
Instruction window     4-entry SCB  32-entry ROB    32-entry ROB
Functional units       2 ALU, 2 FP, 2 AGU
=====================  ===========  ==============  ============
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Number of architectural integer registers (r0..r15).
NUM_INT_ARCH = 16
#: Number of architectural floating-point registers (f0..f7).
NUM_FP_ARCH = 8
#: Total architectural register namespace size.
NUM_ARCH_REGS = NUM_INT_ARCH + NUM_FP_ARCH

#: Memory-disambiguation schemes evaluated in Figure 8.
DISAMBIG_FULLY_OOO = "fully_ooo"       # conventional LQ-based scheme
DISAMBIG_AGI_ORDERING = "agi_ordering" # AGIs forced in order at the S-IQ head
DISAMBIG_NOLQ = "nolq"                 # on-commit value-check, no OSCA filter
DISAMBIG_NOLQ_OSCA = "nolq_osca"       # on-commit value-check + OSCA filter

RENAME_CONDITIONAL = "conditional"     # CASINO's scheme (Section III-B2)
RENAME_CONVENTIONAL = "conventional"   # allocate a register to every dest


@dataclass
class CoreConfig:
    """Microarchitectural parameters for one core model.

    Only the fields relevant to a given ``kind`` are consulted by that core;
    the rest are ignored (e.g. ``lq_size`` only matters to the OoO model).
    """

    name: str = "casino"
    kind: str = "casino"  # ino | ooo | casino | lsc | freeway | specino
    width: int = 2        # issue = fetch = commit width
    frontend_latency: int = 5   # fetch -> dispatch cycles (pipeline depth proxy)
    mispredict_penalty: int = 7 # extra cycles to redirect + refill the front end

    # Scheduling windows.
    iq_size: int = 12       # the (normal) in-order IQ for CASINO; full IQ for InO/OoO
    siq_size: int = 4       # CASINO speculative IQ
    n_intermediate_siqs: int = 0    # wider designs insert 8-entry S-IQs (Section VI-F)
    intermediate_siq_size: int = 8
    specino_ws: int = 2     # SpecInO window size
    specino_so: int = 1     # SpecInO sliding offset
    specino_mem: bool = True  # SpecInO issues memory ops speculatively ("All Types")

    # Run-loop guards.
    deadlock_cycles: int = 100_000  # watchdog: max cycles between commits

    # Instruction window / in-order write-back resources.
    rob_size: int = 32
    scb_size: int = 4          # InO scoreboard (in-flight completion window)
    data_buffer_size: int = 4  # CASINO data buffer for IQ-issued results

    # Register file / renaming.
    prf_int: int = 32
    prf_fp: int = 14
    rename_scheme: str = RENAME_CONDITIONAL
    producer_count_max: int = 3  # 2-bit ProducerCount field

    # Load/store unit.
    lq_size: int = 16       # OoO only
    sq_sb_size: int = 8     # unified SQ/SB for CASINO & OoO; plain SB for InO
    disambiguation: str = DISAMBIG_NOLQ_OSCA
    osca_entries: int = 64
    osca_granule: int = 4   # bytes covered per OSCA counter
    store_sets: bool = True # OoO memory dependence predictor

    # Functional units.
    n_alu: int = 2
    n_fpu: int = 2
    n_agu: int = 2

    # LSC / Freeway slice machinery.
    ist_entries: int = 128
    biq_size: int = 32
    aiq_size: int = 32
    yiq_size: int = 32

    def scaled(self, width: int) -> "CoreConfig":
        """Return a copy scaled to a wider issue design (Section VI-F).

        The ROB, IQ, LSQ and PRF double at 3-way and quadruple at 4-way,
        following the paper's wider-superscalar methodology; CASINO inserts
        one (3-way) or two (4-way) intermediate 8-entry S-IQs.
        """
        factor = {2: 1, 3: 2, 4: 4}[width]
        cfg = dataclasses.replace(
            self,
            name=f"{self.name}-{width}w",
            width=width,
            rob_size=self.rob_size * factor,
            iq_size=self.iq_size * factor,
            lq_size=self.lq_size * factor,
            sq_sb_size=self.sq_sb_size * factor,
            scb_size=self.scb_size * factor,
            data_buffer_size=self.data_buffer_size * factor,
            prf_int=NUM_INT_ARCH + (self.prf_int - NUM_INT_ARCH) * factor,
            prf_fp=NUM_FP_ARCH + (self.prf_fp - NUM_FP_ARCH) * factor,
            # Table I's functional units (2 ALU / 2 FP / 2 AGU) are NOT
            # scaled by the wider-issue methodology — only the ROB, IQ,
            # LSQ and PRF grow (Section VI-F).
            n_alu=max(self.n_alu, width),
            n_fpu=self.n_fpu,
            n_agu=self.n_agu,
            n_intermediate_siqs=max(0, width - 2) if self.kind == "casino" else 0,
            # Conditional renaming is disabled for cascaded wider designs
            # (instructions are renamed once, at the head of the first S-IQ).
            rename_scheme=(RENAME_CONVENTIONAL
                           if self.kind == "casino" and width > 2
                           else self.rename_scheme),
        )
        return cfg


@dataclass
class CacheConfig:
    """One cache level."""

    size_kib: int = 32
    assoc: int = 8
    line_bytes: int = 64
    latency: int = 4
    mshrs: int = 8

    @property
    def n_sets(self) -> int:
        """Number of sets implied by size, associativity and line size."""
        return (self.size_kib * 1024) // (self.assoc * self.line_bytes)


@dataclass
class DramConfig:
    """DDR4-like main-memory timing, expressed in core cycles @ 2 GHz.

    DDR4-2400 timings (tRCD = tRP = CAS ~= 13.75 ns) are roughly 28 core
    cycles each at 2 GHz; the bus transfer of a 64 B line at 2400 MT/s over
    a 64-bit channel adds ~4 memory-clock edges.
    """

    n_banks: int = 16
    row_bytes: int = 2048
    t_rcd: int = 28
    t_rp: int = 28
    t_cas: int = 28
    t_burst: int = 8
    frontend_overhead: int = 20  # controller queueing/decode overhead


@dataclass
class MemoryConfig:
    """The full cache + DRAM hierarchy of Table I."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32, 8, 64, 4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32, 8, 64, 4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024, 16, 64, 11, mshrs=16))
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher_streams: int = 16
    prefetcher_degree: int = 2
    prefetch_enabled: bool = True


@dataclass
class BranchPredictorConfig:
    """TAGE predictor of Table I: 17-bit GHR, bimodal + four tagged tables."""

    ghr_bits: int = 17
    n_tagged: int = 4
    bimodal_bits: int = 13          # 8 K-entry bimodal
    tagged_bits: int = 10           # 1 K entries per tagged table
    tag_bits: int = 9
    history_lengths: tuple = (4, 8, 16, 17)
    btb_sets: int = 512
    btb_ways: int = 4


@dataclass
class SimConfig:
    """Everything needed to run one (core, memory, workload) simulation."""

    core: CoreConfig = field(default_factory=lambda: make_casino_config())
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    max_cycles: int = 10_000_000


def make_ino_config(width: int = 2) -> CoreConfig:
    """Table I in-order baseline: stall-on-use, 16-entry IQ, 4-entry SCB/SB."""
    cfg = CoreConfig(
        name="ino",
        kind="ino",
        frontend_latency=3,
        mispredict_penalty=5,
        iq_size=16,
        scb_size=4,
        sq_sb_size=4,
        rob_size=4,   # unused; commit window is the SCB
    )
    return cfg if width == 2 else cfg.scaled(width)


def make_ooo_config(width: int = 2) -> CoreConfig:
    """Table I out-of-order baseline: 16-entry IQ, 16 LQ, 8 SQ/SB, 48/24 PRF."""
    cfg = CoreConfig(
        name="ooo",
        kind="ooo",
        frontend_latency=5,
        mispredict_penalty=7,
        iq_size=16,
        lq_size=16,
        sq_sb_size=8,
        prf_int=48,
        prf_fp=24,
        rob_size=32,
        rename_scheme=RENAME_CONVENTIONAL,
        disambiguation=DISAMBIG_FULLY_OOO,
    )
    return cfg if width == 2 else cfg.scaled(width)


def make_casino_config(width: int = 2) -> CoreConfig:
    """Table I CASINO core: 4-entry S-IQ + 12-entry IQ, 32/14 PRF, 8 SQ/SB."""
    cfg = CoreConfig(
        name="casino",
        kind="casino",
        frontend_latency=5,
        mispredict_penalty=7,
        iq_size=12,
        siq_size=4,
        sq_sb_size=8,
        prf_int=32,
        prf_fp=14,
        rob_size=32,
        rename_scheme=RENAME_CONDITIONAL,
        disambiguation=DISAMBIG_NOLQ_OSCA,
    )
    return cfg if width == 2 else cfg.scaled(width)


def make_lsc_config() -> CoreConfig:
    """Load Slice Core with 32-entry IQs and generous other resources
    (Section VI-A2 evaluates sOoO cores with 32-entry IQs)."""
    return CoreConfig(
        name="lsc",
        kind="lsc",
        frontend_latency=4,
        mispredict_penalty=6,
        biq_size=32,
        aiq_size=32,
        sq_sb_size=8,
        rob_size=64,
        scb_size=8,
    )


def make_freeway_config() -> CoreConfig:
    """Freeway: LSC plus a dependence-aware yielding queue (Y-IQ)."""
    cfg = make_lsc_config()
    return dataclasses.replace(cfg, name="freeway", kind="freeway", yiq_size=32)


def make_specino_config(ws: int = 2, so: int = 1, mem: bool = True) -> CoreConfig:
    """Idealised SpecInO limit model of Section II-C (Figure 2)."""
    return CoreConfig(
        name=f"specino[{ws},{so}]{'' if mem else '-nonmem'}",
        kind="specino",
        frontend_latency=3,
        mispredict_penalty=5,
        iq_size=16,
        scb_size=8,
        sq_sb_size=8,
        rob_size=32,
        specino_ws=ws,
        specino_so=so,
        specino_mem=mem,
    )
