"""Shared infrastructure: configuration dataclasses and statistics counters."""

from repro.common.params import (
    CoreConfig,
    MemoryConfig,
    SimConfig,
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.common.stats import Stats

__all__ = [
    "CoreConfig",
    "MemoryConfig",
    "SimConfig",
    "Stats",
    "make_casino_config",
    "make_ino_config",
    "make_ooo_config",
]
