"""Configuration (de)serialisation: JSON round-trips for reproducible
experiment definitions.

A config file is a JSON object with a ``base`` factory name plus field
overrides — the same vocabulary as the Python API::

    {"base": "casino", "width": 4, "osca_entries": 128}

``load_core_config`` builds the :class:`~repro.common.params.CoreConfig`;
``dump_core_config`` writes one back out (only non-default fields).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.common.params import (
    CoreConfig,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)

_FACTORIES = {
    "ino": make_ino_config,
    "casino": make_casino_config,
    "ooo": make_ooo_config,
    "lsc": make_lsc_config,
    "freeway": make_freeway_config,
    "specino": make_specino_config,
}


class ConfigError(ValueError):
    """Malformed configuration file or unknown field."""


def core_config_from_dict(data: dict) -> CoreConfig:
    """Build a CoreConfig from a ``{"base": ..., **overrides}`` mapping."""
    data = dict(data)
    base_name = data.pop("base", None)
    width = data.pop("width", 2)
    if base_name is None:
        raise ConfigError('config needs a "base" (ino/casino/ooo/...)')
    factory = _FACTORIES.get(base_name)
    if factory is None:
        raise ConfigError(f"unknown base {base_name!r}; "
                          f"known: {sorted(_FACTORIES)}")
    cfg = factory(width) if base_name in ("ino", "casino", "ooo") \
        else factory()
    valid = {f.name for f in dataclasses.fields(CoreConfig)}
    unknown = set(data) - valid
    if unknown:
        raise ConfigError(f"unknown CoreConfig fields: {sorted(unknown)}")
    return dataclasses.replace(cfg, **data)


def core_config_to_dict(cfg: CoreConfig) -> dict:
    """Dump a CoreConfig as ``{"base": kind, **non-default overrides}``."""
    factory = _FACTORIES[cfg.kind]
    base = factory(cfg.width) if cfg.kind in ("ino", "casino", "ooo") \
        else factory()
    out = {"base": cfg.kind, "width": cfg.width}
    for field in dataclasses.fields(CoreConfig):
        value = getattr(cfg, field.name)
        if value != getattr(base, field.name):
            out[field.name] = value
    return out


def load_core_config(path: Union[str, Path]) -> CoreConfig:
    """Read a JSON config file into a CoreConfig."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected a JSON object")
    return core_config_from_dict(data)


def dump_core_config(cfg: CoreConfig, path: Union[str, Path]) -> None:
    """Write a CoreConfig to a JSON config file."""
    with open(path, "w") as fh:
        json.dump(core_config_to_dict(cfg), fh, indent=2, sort_keys=True)
        fh.write("\n")
