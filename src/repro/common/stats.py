"""Event-count statistics shared by all simulated cores.

A :class:`Stats` object is a thin counter namespace.  Counters are created on
first use so cores only pay for events they generate, and the power model can
iterate over whatever was recorded.  A few derived metrics (IPC, rates) are
computed on demand.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple


class Stats:
    """A bag of named event counters plus derived-metric helpers."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Return counter ``name`` (``default`` if never touched)."""
        return self.counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self.counters

    def merge(self, other: "Stats") -> "Stats":
        """Accumulate ``other``'s counters into this object and return self."""
        for key, value in other.counters.items():
            self.counters[key] += value
        return self

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict snapshot of every counter."""
        return dict(self.counters)

    # -- derived metrics ---------------------------------------------------

    @property
    def cycles(self) -> float:
        return self.counters.get("cycles", 0.0)

    @property
    def committed(self) -> float:
        return self.counters.get("committed", 0.0)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (0 when nothing ran)."""
        cycles = self.cycles
        return self.committed / cycles if cycles else 0.0

    def rate(self, name: str, per: str = "cycles") -> float:
        """Counter ``name`` divided by counter ``per`` (0 when denom is 0)."""
        denom = self.counters.get(per, 0.0)
        return self.counters.get(name, 0.0) / denom if denom else 0.0

    def subset(self, prefixes: Iterable[str]) -> Dict[str, float]:
        """All counters whose name starts with one of ``prefixes``."""
        prefixes = tuple(prefixes)
        return {k: v for k, v in self.counters.items() if k.startswith(prefixes)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        core = {k: self.counters[k] for k in sorted(self.counters)[:8]}
        return f"Stats(ipc={self.ipc:.3f}, {core}...)"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (0 if the iterable is
    empty).

    A zero or negative input raises ``ValueError`` — a degraded run (IPC 0
    from a failed simulation) must be handled *explicitly* at the call
    site, either by excluding the app before aggregating (what
    :class:`~repro.harness.resilience.ResilientRunner` does) or by using
    :func:`partial_geomean`, which reports how much it dropped.
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            raise ValueError("geomean requires positive values")
        total += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(total / count)


def partial_geomean(values: Iterable[float]) -> Tuple[float, int]:
    """Geometric mean of the positive entries of ``values``.

    Returns ``(geomean, n_excluded)`` where ``n_excluded`` counts the
    zero/negative entries (failed or degraded runs) that were dropped.
    Use this where a partial aggregate with an explicit exclusion count is
    better than aborting the sweep; use :func:`geomean` where a
    nonpositive value is a genuine error.
    """
    kept = []
    excluded = 0
    for value in values:
        if value > 0.0:
            kept.append(value)
        else:
            excluded += 1
    return geomean(kept), excluded


def normalize(results: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Normalise a {name: value} mapping to ``results[baseline]``."""
    base = results[baseline]
    if base == 0.0:
        raise ValueError(f"baseline {baseline!r} is zero")
    return {name: value / base for name, value in results.items()}
