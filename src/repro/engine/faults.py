"""Deterministic fault injection (resilience self-test machinery).

The point of the deadlock watchdog and the invariant sanitizer is that a
scheduling bug aborts a simulation with an actionable diagnostic instead of
hanging or silently producing garbage.  This module *proves* those
detectors work by perturbing a run on purpose: a :class:`FaultInjector`
installed via ``core.run(..., faults=...)`` flips exactly one piece of
microarchitectural state per configured :class:`Fault`, deterministically,
keyed on the dynamic sequence number of a trace instruction.

Fault classes and the detector expected to fire:

===============  ==================================================  =============
kind             perturbation                                        detector
===============  ==================================================  =============
``drop_wakeup``  clear ``done_at`` after completion was scheduled     watchdog
``stuck_fill``   completion pushed out to the end of time             watchdog
``corrupt_ready``mark an unissued instruction complete "now"          sanitizer
``skip_commit``  the commit stream skips this sequence number         program-order
===============  ==================================================  =============

Injection happens from the run loop (after ``_step``) and at entry
creation, so no core model carries fault-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

#: Completion time that never arrives within any sane cycle budget.
NEVER = 1 << 60

FAULT_KINDS = ("drop_wakeup", "stuck_fill", "corrupt_ready", "skip_commit")


@dataclass
class Fault:
    """One perturbation, armed on the instruction with trace seq ``seq``."""

    kind: str
    seq: int
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")


class FaultInjector:
    """Applies a fixed list of faults to one simulation run."""

    def __init__(self, faults: Iterable[Fault]) -> None:
        self.faults: List[Fault] = list(faults)
        self._entries: Dict[int, object] = {}

    def on_entry(self, entry) -> None:
        """Called by ``CoreModel.make_entry`` for every dispatched entry."""
        # Key on the trace's seq so a corrupted entry.seq stays findable.
        self._entries[entry.inst.seq] = entry
        for fault in self.faults:
            if fault.fired or fault.seq != entry.inst.seq:
                continue
            if fault.kind == "skip_commit":
                # The entry claims the next sequence number, so the commit
                # stream appears to skip ``seq`` — the program-order check
                # in note_commit must catch it.
                entry.seq += 1
                fault.fired = True

    def on_cycle(self, core, cycle: int) -> None:
        """Called once per simulated cycle, after ``_step``."""
        for fault in self.faults:
            if fault.fired:
                continue
            entry = self._entries.get(fault.seq)
            if entry is None or entry.committed:
                continue
            if fault.kind == "drop_wakeup":
                if entry.done_at is not None:
                    entry.done_at = None
                    fault.fired = True
            elif fault.kind == "stuck_fill":
                if entry.issue_at is not None:
                    entry.done_at = NEVER
                    fault.fired = True
            elif fault.kind == "corrupt_ready":
                if entry.issue_at is None:
                    entry.done_at = cycle
                    fault.fired = True

    @property
    def all_fired(self) -> bool:
        return all(fault.fired for fault in self.faults)
