"""Cycle-level simulation engine shared by all core models."""

from repro.engine.stream import InstStream
from repro.engine.core_base import CoreModel, InflightInst
from repro.engine.funits import FuPool

__all__ = ["InstStream", "CoreModel", "InflightInst", "FuPool"]
