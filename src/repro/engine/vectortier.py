"""Vector-tier selection: which cores get a kernelized run loop, and when.

The vectorized engine tier replaces :meth:`CoreModel.run`'s interpreted
cycle loop with a per-core *kernel* — one flat function with hoisted
structure state and bulk counter accumulation (see
:mod:`repro.engine.fastino` / :mod:`repro.engine.fastcasino`).  Kernels are
bit-identical to the interpreted path; selection is therefore purely a
host-performance decision and follows three rules:

1. **Exact type match.**  A kernel registered for ``InOrderCore`` never
   runs for a subclass: subclasses override stage methods (tests and the
   TSO example both do) and the kernel would silently bypass them.
2. **Observers force the pure tier.**  Faults mutate state on arbitrary
   cycles; the sanitizer, sampler and accounting observe every cycle; the
   tracer hooks dispatch/issue/commit; the profiler wraps the very methods
   the kernel inlines away.  Any of them attached selects the interpreted
   path — exactly like quiescence skipping disables itself today.
   ``record_schedule`` and fast-forward (on or off) are supported inside
   kernels.
3. **`REPRO_PURE_PY=1` disables the tier globally** (the CI fallback leg),
   and ``run(engine_tier=...)`` overrides per call: ``"pure"`` forces the
   interpreted loop, ``"vector"`` demands a kernel and raises
   ``SimulationError`` when rule 1 or 2 makes that impossible (the bench
   harness uses this so a silently-disengaged tier can never pass for a
   speedup), ``None`` auto-selects.

After every :meth:`run`, ``core.engine_tier_used`` records the tier that
actually executed (``"vector"`` or ``"pure"``).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Optional, Type

from repro.engine.core_base import SimulationError
from repro.engine.soatrace import TraceArrays

#: Exact core type -> kernel(core, arrays, max_cycles, watchdog, warmup,
#: skip_ok) returning (final_cycle, warm_snapshot, warm_cycle).
_KERNELS: Dict[Type, Callable] = {}

#: id(trace) -> (trace, TraceArrays): the once-per-trace SoA conversion.
#: Holds a strong reference to the trace list so the id stays valid; the
#: harness already keeps hot traces alive in its own LRU, so the extra
#: retention is bounded and shared.
_SOA_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_SOA_CACHE_MAX = 16


def arrays_for(trace) -> TraceArrays:
    """The SoA twin of ``trace``, converted once and LRU-cached by object
    identity (traces are reused across runs by the harness/bench)."""
    key = id(trace)
    hit = _SOA_CACHE.get(key)
    if hit is not None and hit[0] is trace:
        _SOA_CACHE.move_to_end(key)
        return hit[1]
    arrays = TraceArrays.from_instructions(trace)
    _SOA_CACHE[key] = (trace, arrays)
    if len(_SOA_CACHE) > _SOA_CACHE_MAX:
        _SOA_CACHE.popitem(last=False)
    return arrays


def register_kernel(core_type: Type, kernel: Callable) -> None:
    """Register ``kernel`` as ``core_type``'s vector-tier run loop."""
    _KERNELS[core_type] = kernel


def kernel_for(core_type: Type) -> Optional[Callable]:
    """The registered kernel for exactly ``core_type`` (never subclasses)."""
    _ensure_registered()
    return _KERNELS.get(core_type)


def _ensure_registered() -> None:
    # Kernels live next to the cores they accelerate; import them lazily so
    # `engine` stays import-cycle-free (cores import core_base).
    if _KERNELS:
        return
    from repro.cores.inorder import InOrderCore
    from repro.engine import fastino
    _KERNELS[InOrderCore] = fastino.run_inorder
    try:
        from repro.cores.casino.core import CasinoCore
        from repro.engine import fastcasino
        _KERNELS[CasinoCore] = fastcasino.run_casino
    except ImportError:  # pragma: no cover - partial checkouts only
        pass


def select_kernel(core, engine_tier: Optional[str],
                  observers_attached: bool) -> Optional[Callable]:
    """Resolve the kernel to run ``core`` with, or ``None`` for pure.

    ``engine_tier`` is the ``run()`` argument (``None`` auto, ``"pure"``,
    ``"vector"``); ``observers_attached`` is true when any observer that
    forces the fallback is armed for this run.
    """
    if engine_tier not in (None, "pure", "vector"):
        raise ValueError(f"unknown engine_tier {engine_tier!r}")
    if engine_tier == "pure":
        return None
    forced = engine_tier == "vector"
    if not forced and os.environ.get("REPRO_PURE_PY", "0") == "1":
        return None
    kernel = kernel_for(type(core))
    if kernel is None or observers_attached:
        if forced:
            reason = ("an attached observer forces the pure tier"
                      if kernel is not None else
                      f"no kernel registered for {type(core).__name__}")
            raise SimulationError(
                f"{core.cfg.name}: engine_tier='vector' but {reason}",
                core=core.cfg.name, check="engine_tier")
        return None
    return kernel
