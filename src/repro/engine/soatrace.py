"""Structure-of-arrays trace representation and binary codec.

The interpreted engine consumes traces as lists of
:class:`~repro.isa.instruction.DynInst` objects.  That shape is friendly to
the timing models but expensive to ship: pickling object graphs costs both
time and space, and every pool worker / cluster node pays the object churn
again on load.

:class:`TraceArrays` holds the same dynamic trace as parallel typed columns
(``array`` module arrays — one Python object per *column*, not per
instruction):

========  ========  ===============================================
column    typecode  meaning
========  ========  ===============================================
pc        q         static instruction address
op        B         :class:`~repro.isa.opcodes.OpClass` value
dst       h         destination arch register, ``-1`` for none
nsrc      B         number of source registers (0..2 inline)
src0      h         first source register, ``-1`` when absent
src1      h         second source register, ``-1`` when absent
mem_addr  q         effective address, ``-1`` for non-memory ops
mem_size  h         access width in bytes (0 for non-memory ops)
taken     B         branch outcome (0/1)
target    q         taken-branch target, ``-1`` for none
========  ========  ===============================================

Instructions with more than two sources (none are emitted by the synthetic
generator today, but the codec must not silently corrupt them) spill into a
ragged ``extra_srcs`` side table keyed by trace index.

The binary codec (`encode` / `decode`) wraps the columns in a versioned
container::

    magic "RTRC" | u16 version | u32 header_len | header JSON | payload

where the header records the column layout, byte order, instruction count
and the sha256 of the payload, and the payload is the raw little-endian
column bytes back to back.  ``decode`` verifies length, layout, and digest
before returning, so a truncated or bit-flipped entry is always rejected
with :class:`TraceCodecError` rather than yielding a wrong trace.

Materialisation back to ``DynInst`` objects happens once, lazily, via
:meth:`TraceArrays.materialize`; runs share the resulting list exactly as
they share generator-produced traces today.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst
from repro.isa.opcodes import LATENCY, OpClass

#: Derived per-op classification used by the vector-tier kernels:
#: 0 = non-memory non-branch, 1 = load, 2 = store, 3 = branch/jump.
KIND_OTHER, KIND_LOAD, KIND_STORE, KIND_BRANCH = 0, 1, 2, 3
KIND_OF = tuple(
    KIND_LOAD if OpClass(v).is_load else
    KIND_STORE if OpClass(v).is_store else
    KIND_BRANCH if OpClass(v).is_branch else KIND_OTHER
    for v in range(len(OpClass)))
LAT_OF = tuple(LATENCY[OpClass(v)] for v in range(len(OpClass)))

#: Container magic + format version.  Bump the version whenever the column
#: set or header schema changes; ``decode`` rejects unknown versions.
MAGIC = b"RTRC"
CODEC_VERSION = 1

#: Column layout, in payload order.  (name, array typecode)
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pc", "q"),
    ("op", "B"),
    ("dst", "h"),
    ("nsrc", "B"),
    ("src0", "h"),
    ("src1", "h"),
    ("mem_addr", "q"),
    ("mem_size", "h"),
    ("taken", "B"),
    ("target", "q"),
)

_NONE = -1


class TraceCodecError(ValueError):
    """Raised when a binary trace container fails validation."""


class TraceArrays:
    """One dynamic trace as parallel typed columns."""

    __slots__ = tuple(name for name, _ in _COLUMNS) + (
        "extra_srcs", "_materialized", "_derived")

    def __init__(self) -> None:
        for name, typecode in _COLUMNS:
            setattr(self, name, array(typecode))
        # Ragged overflow for instructions with >2 sources: index -> tuple.
        self.extra_srcs: Dict[int, Tuple[int, ...]] = {}
        self._materialized: Optional[List[DynInst]] = None
        self._derived = None

    def __len__(self) -> int:
        return len(self.pc)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_instructions(cls, trace: Sequence[DynInst]) -> "TraceArrays":
        """Convert an object trace into columns (one pass, no mutation)."""
        self = cls()
        pc = self.pc
        op = self.op
        dst = self.dst
        nsrc = self.nsrc
        src0 = self.src0
        src1 = self.src1
        mem_addr = self.mem_addr
        mem_size = self.mem_size
        taken = self.taken
        target = self.target
        extra = self.extra_srcs
        for idx, inst in enumerate(trace):
            pc.append(inst.pc)
            op.append(int(inst.op))
            dst.append(_NONE if inst.dst is None else inst.dst)
            srcs = inst.srcs
            n = len(srcs)
            nsrc.append(min(n, 2))
            src0.append(srcs[0] if n > 0 else _NONE)
            src1.append(srcs[1] if n > 1 else _NONE)
            if n > 2:
                extra[idx] = tuple(srcs[2:])
            mem_addr.append(_NONE if inst.mem_addr is None else inst.mem_addr)
            mem_size.append(inst.mem_size if inst.mem_addr is not None else 0)
            taken.append(1 if inst.taken else 0)
            target.append(_NONE if inst.target is None else inst.target)
        return self

    def hot_columns(self) -> Tuple[array, array, array]:
        """Derived ``(kind, latency, line)`` columns for the kernel tier.

        Computed once per trace and never serialised — they are pure
        functions of the ``op`` and ``pc`` columns.
        """
        derived = self._derived
        if derived is None:
            kind_of = KIND_OF
            lat_of = LAT_OF
            derived = (array("B", bytes(kind_of[v] for v in self.op)),
                       array("B", bytes(lat_of[v] for v in self.op)),
                       array("q", [pc >> 6 for pc in self.pc]))
            self._derived = derived
        return derived

    # -- materialisation ----------------------------------------------------

    def materialize(self) -> List[DynInst]:
        """Expand back to ``DynInst`` objects (cached after the first call).

        The result is bit-identical to the object stream the columns were
        built from: ``None`` sentinels are restored, source tuples keep
        their original arity, and ``mem_size`` reverts to the constructor
        default for non-memory ops so round-trip equality holds field by
        field.
        """
        if self._materialized is not None:
            return self._materialized
        out: List[DynInst] = []
        extra = self.extra_srcs
        op_of = [OpClass(v) for v in range(len(OpClass))]
        for idx in range(len(self.pc)):
            n = self.nsrc[idx]
            if n == 0:
                srcs: Tuple[int, ...] = ()
            elif n == 1:
                srcs = (self.src0[idx],)
            else:
                srcs = (self.src0[idx], self.src1[idx])
                if idx in extra:
                    srcs += extra[idx]
            dst = self.dst[idx]
            mem_addr = self.mem_addr[idx]
            target = self.target[idx]
            inst = DynInst(
                pc=self.pc[idx],
                op=op_of[self.op[idx]],
                srcs=srcs,
                dst=None if dst == _NONE else dst,
                mem_addr=None if mem_addr == _NONE else mem_addr,
                mem_size=self.mem_size[idx] if mem_addr != _NONE else 8,
                taken=bool(self.taken[idx]),
                target=None if target == _NONE else target,
            )
            out.append(inst)
        self._materialized = out
        return out

    # -- binary codec --------------------------------------------------------

    def encode(self, key: str = "") -> bytes:
        """Serialise to the versioned binary container.

        ``key`` (the TraceStore content key) is embedded in the header so a
        store entry renamed onto the wrong key fails verification, matching
        the ``verify_envelope`` contract of the result store.
        """
        columns = []
        payload_parts = []
        for name, typecode in _COLUMNS:
            col: array = getattr(self, name)
            if sys.byteorder != "little":  # pragma: no cover - x86/arm LE
                col = array(typecode, col)
                col.byteswap()
            raw = col.tobytes()
            columns.append({"name": name, "typecode": typecode,
                            "count": len(col), "nbytes": len(raw)})
            payload_parts.append(raw)
        payload = b"".join(payload_parts)
        header = {
            "version": CODEC_VERSION,
            "key": key,
            "n": len(self),
            "byteorder": "little",
            "columns": columns,
            "extra_srcs": {str(i): list(v)
                           for i, v in sorted(self.extra_srcs.items())},
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        header_bytes = json.dumps(header, sort_keys=True,
                                  separators=(",", ":")).encode("utf-8")
        return b"".join((
            MAGIC,
            CODEC_VERSION.to_bytes(2, "little"),
            len(header_bytes).to_bytes(4, "little"),
            header_bytes,
            payload,
        ))

    @classmethod
    def decode(cls, raw: bytes, key: Optional[str] = None) -> "TraceArrays":
        """Parse and verify a binary container.

        Raises :class:`TraceCodecError` on any malformed input: bad magic,
        unknown version, truncated header or payload, digest mismatch, or a
        key that does not match ``key`` (when given).  Never raises anything
        else for hostile bytes.
        """
        if len(raw) < 10:
            raise TraceCodecError("container shorter than fixed header")
        if raw[:4] != MAGIC:
            raise TraceCodecError("bad magic (not a binary trace container)")
        version = int.from_bytes(raw[4:6], "little")
        if version != CODEC_VERSION:
            raise TraceCodecError(f"unsupported codec version {version}")
        header_len = int.from_bytes(raw[6:10], "little")
        if len(raw) < 10 + header_len:
            raise TraceCodecError("truncated header")
        try:
            header = json.loads(raw[10:10 + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceCodecError(f"unreadable header: {exc}") from exc
        if not isinstance(header, dict):
            raise TraceCodecError("header is not an object")
        payload = raw[10 + header_len:]
        expected = header.get("sha256")
        if not isinstance(expected, str):
            raise TraceCodecError("header missing payload digest")
        actual = hashlib.sha256(payload).hexdigest()
        if actual != expected:
            raise TraceCodecError(
                f"payload digest mismatch (have {actual[:12]}.., "
                f"header says {expected[:12]}..)")
        if key is not None and header.get("key") not in ("", key):
            raise TraceCodecError(
                f"container key {header.get('key')!r} does not match {key!r}")
        columns = header.get("columns")
        if (not isinstance(columns, list)
                or [(c.get("name"), c.get("typecode")) for c in columns
                    if isinstance(c, dict)] != list(_COLUMNS)):
            raise TraceCodecError("unexpected column layout")
        n = header.get("n")
        self = cls()
        offset = 0
        for spec in columns:
            name = spec["name"]
            typecode = spec["typecode"]
            nbytes = spec.get("nbytes")
            count = spec.get("count")
            if not isinstance(nbytes, int) or not isinstance(count, int):
                raise TraceCodecError(f"column {name}: malformed sizes")
            if count != n:
                raise TraceCodecError(
                    f"column {name}: count {count} != trace length {n}")
            chunk = payload[offset:offset + nbytes]
            if len(chunk) != nbytes:
                raise TraceCodecError(f"column {name}: truncated payload")
            col = array(typecode)
            try:
                col.frombytes(chunk)
            except ValueError as exc:
                raise TraceCodecError(f"column {name}: {exc}") from exc
            if sys.byteorder != "little":  # pragma: no cover - LE hosts
                col.byteswap()
            if len(col) != count:
                raise TraceCodecError(f"column {name}: item count mismatch")
            setattr(self, name, col)
            offset += nbytes
        if offset != len(payload):
            raise TraceCodecError(
                f"{len(payload) - offset} trailing payload bytes")
        extra = header.get("extra_srcs", {})
        if not isinstance(extra, dict):
            raise TraceCodecError("malformed extra_srcs table")
        try:
            self.extra_srcs = {int(i): tuple(int(r) for r in v)
                               for i, v in extra.items()}
        except (TypeError, ValueError) as exc:
            raise TraceCodecError(f"malformed extra_srcs table: {exc}") from exc
        ops = self.op
        n_ops = len(OpClass)
        for idx in range(len(ops)):
            if ops[idx] >= n_ops:
                raise TraceCodecError(
                    f"instruction {idx}: opcode {ops[idx]} out of range")
        return self


def encode_trace(trace: Sequence[DynInst], key: str = "") -> bytes:
    """One-shot: object stream -> binary container."""
    if isinstance(trace, TraceArrays):
        return trace.encode(key)
    return TraceArrays.from_instructions(trace).encode(key)


def decode_trace(raw: bytes, key: Optional[str] = None) -> List[DynInst]:
    """One-shot: binary container -> object stream (validated)."""
    return TraceArrays.decode(raw, key).materialize()
