"""Kernelized run loop for the CASINO core (vector tier).

This is :class:`~repro.cores.casino.core.CasinoCore`'s cycle loop with the
hot stages — fetch (I-cache line checks, fused TAGE/BTB prediction),
dispatch, the cascaded S-IQ window scan, in-order IQ issue, commit, SB
retirement, the wakeup calendar and the quiescence evaluator — inlined
into one flat function driven by the trace's
:class:`~repro.engine.soatrace.TraceArrays` columns.

Unlike :mod:`~repro.engine.fastino`, the in-flight state here stays
*object-shaped*: the renamer (RAT / ProducerCount / recovery log), the
LSU (SQ/SB CAM, sentinels, OSCA, LQ mode) and the squash walk all operate
on :class:`InflightInst` entries with entangled cross-references, so the
kernel allocates real entries at dispatch and calls
``ConditionalRenamer`` / ``CasinoLsu`` methods for rename actions, load
issue bookkeeping, load value-checks and squash recovery.  Everything
around those calls — queue scans, readiness polls, per-cycle counter
bumps, FU accounting, the fetch pipe (a packed int deque), branch
prediction and the L1D/L1I clean-hit paths — is inlined with hoisted
locals and bulk-flushed accumulators.

Bit-identity contract: identical to fastino's — every counter key and
value, commit order, recorded schedule, squash recovery effect,
``SimulationError`` message (``_debug_state()`` reads ``dbuf_used``,
which is hoisted, so it is written back before every raise) and the
post-run core/fetch/stream state match the interpreted path exactly.
``tests/test_vector_tier.py`` asserts this across apps, seeds and both
fast-forward settings.

Counter flushing rule: accumulators flush only when nonzero so the
counter *key set* matches the interpreted run; counters bumped by
non-inlined callees (renamer, LSU, caches, TAGE, BTB) are never
localised here.
"""

from __future__ import annotations

from collections import deque

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    NUM_INT_ARCH,
    RENAME_CONDITIONAL,
)
from repro.engine.core_base import InflightInst, SimulationError, _FAR_FUTURE
from repro.engine.fastino import _FQ_MASK, _FQ_SHIFT, _FU_TABLE, _OP_BRANCH
from repro.frontend.fetch import FetchedInst

_FAR = _FAR_FUTURE


def run_casino(core, arrays, max_cycles, watchdog, warmup, skip_ok):
    """Run the whole trace on a ``CasinoCore`` after ``reset()``.

    Returns ``(final_cycle, warm_snapshot, warm_cycle)`` exactly as the
    interpreted loop would leave them; raises the same
    :class:`SimulationError` family on watchdog/budget/ordering trips.
    """
    cfg = core.cfg
    width = cfg.width
    ws = cfg.specino_ws
    so = cfg.specino_so
    rob_size = cfg.rob_size
    sq_sb_size = cfg.sq_sb_size
    lq_size = cfg.lq_size
    dbuf_size = cfg.data_buffer_size
    frontend_latency = cfg.frontend_latency
    mispredict_penalty = cfg.mispredict_penalty
    name = cfg.name
    use_dbuf = cfg.rename_scheme == RENAME_CONDITIONAL
    agi_mode = cfg.disambiguation == DISAMBIG_AGI_ORDERING

    # SoA trace columns (indexable by dynamic sequence number).
    pc_col = arrays.pc
    op_col = arrays.op
    dst_col = arrays.dst
    nsrc_col = arrays.nsrc
    src0_col = arrays.src0
    src1_col = arrays.src1
    addr_col = arrays.mem_addr
    taken_col = arrays.taken
    target_col = arrays.target
    kind_col, lat_col, line_col = arrays.hot_columns()
    extra_srcs = arrays.extra_srcs
    n = len(pc_col)
    fu_col = bytes(op_col).translate(_FU_TABLE)

    counters = core.stats.counters
    queues = core.queues
    queue_sizes = core.queue_sizes
    n_queues = len(queues)
    q0 = queues[0]
    q0_cap = queue_sizes[0]
    iq = queues[-1]
    iq_popleft = iq.popleft
    rob = core.rob
    rob_append = rob.append
    rob_popleft = rob.popleft

    # Renamer hot paths (can_alloc / can_pass / rename_* / on_iq_issue /
    # commit) are inlined below against these hoisted bindings.  ``rat``
    # and ``pending_map`` are the renamer's own dicts mutated in place, so
    # the (rare, non-inlined) ``squash`` call sees them live; the free-list
    # ints and ``_next_phys`` are locals, written back before every raise
    # (``_debug_state`` prints the free counts), around each squash call
    # and in ``finally``.  ``is_fp_reg(dst)`` is just ``dst >= NUM_INT_ARCH``.
    renamer = core.renamer
    renamer_squash = renamer.squash
    rat = renamer.rat
    pending_map = renamer.pending
    pending_get = pending_map.get
    free_int = renamer.free_int
    free_fp = renamer.free_fp
    next_phys = renamer._next_phys
    num_int = NUM_INT_ARCH
    pc_max = cfg.producer_count_max
    new_inflight = InflightInst.__new__

    lsu = core.lsu
    lsu_sq = lsu.sq                     # never rebound (lsu.lq is; see below)
    lsu_sq_append = lsu_sq.append
    lsu_sq_popleft = lsu_sq.popleft
    sentinels = lsu.sentinels
    sentinels_get = sentinels.get
    lsu_load_issued = lsu.load_issued
    lsu_store_issued = lsu.store_issued
    lsu_commit_load = lsu.commit_load
    lsu_squash = lsu.squash
    osca = lsu.osca
    osca_dec = osca.dec if osca is not None else None
    fully_ooo = lsu.mode == DISAMBIG_FULLY_OOO
    # load_issued / commit_load are inlined below for the value-check
    # modes (everything except fully_ooo); a load with no address falls
    # back to the method call so the interpreted path's behaviour —
    # including its crashes — is preserved verbatim.
    line_pins = lsu._line_pins          # mutated in place, never rebound
    line_pins_append = line_pins.append
    line_pins_remove = line_pins.remove
    line_sentinels = lsu.hier.line_sentinels
    line_sent_get = line_sentinels.get
    line_sent_pop = line_sentinels.pop
    if osca is not None:
        osca_counters = osca.counters
        osca_granule = osca.granule
        osca_entries = osca.entries
    else:
        osca_counters = None
        osca_granule = osca_entries = 1

    dbuf_used = core.dbuf_used

    # Fetch state, fully hoisted: the queue becomes one packed int deque
    # (decode-ready cycle and trace index in a single value); predictor
    # and L1I calls bind direct.  Written back on every exit.
    fetch = core.fetch
    objs = core.stream.trace
    fetch_capacity = fetch.capacity
    tage_predict_update = fetch.tage.predict_update
    btb_lookup_update = fetch.btb.lookup_update
    fq = deque()
    fq_append = fq.append
    fq_popleft = fq.popleft
    fq_pop = fq.pop
    n_fq = 0
    cursor = 0
    blocked_seq = None
    stalled_until = 0
    cur_line = -1

    hier = core.hier
    hier_store = hier.store
    l1d = hier.l1d
    l1d_access = l1d.access
    l1d_hit = l1d.cfg.latency
    # L1D/L1I clean-hit fast path state (neither cache has an access hook
    # — only the L2 trains the prefetcher — so a resident, non-in-flight
    # line's access() reduces to counter bumps plus an LRU touch, inlined
    # at the call sites below; anything else falls through to access()).
    l1d_shift = l1d._line_shift
    l1d_nsets = l1d.n_sets
    l1d_sets_get = l1d.sets.get
    l1d_mshrs_get = l1d.mshrs.get
    l1d_dirty_add = l1d.dirty.add
    k_l1d_accesses = l1d._k_accesses
    k_l1d_hits = l1d._k_hits
    l1i = hier.l1i
    l1i_access = l1i.access
    l1i_hit = l1i.cfg.latency
    l1i_shift = l1i._line_shift
    l1i_nsets = l1i.n_sets
    l1i_sets_get = l1i.sets.get
    l1i_mshrs_get = l1i.mshrs.get
    k_l1i_accesses = l1i._k_accesses
    k_l1i_hits = l1i._k_hits

    capacity = core.fu.capacity
    n_alu, n_fpu, n_agu = capacity

    wakeup_cal = core._wakeup_cal
    wakeup_cal_get = wakeup_cal.get
    next_wakeup = min(wakeup_cal) if wakeup_cal else _FAR
    last_writer = core.last_writer
    last_writer_get = last_writer.get
    schedule = core.schedule

    cycle = 0
    expected_seq = core._expected_commit_seq
    committed_total = core._committed
    last_commit_cycle = core._last_commit_cycle
    ff_spans = 0
    ff_skipped = 0
    warm_snapshot = None
    warm_cycle = 0
    warm_trigger = warmup if warmup else _FAR
    next_trip = last_commit_cycle + watchdog
    if max_cycles < next_trip:
        next_trip = max_cycles

    # Local counter accumulators (bulk-flushed; see module docstring).
    c_committed = 0
    c_rob_reads = 0
    c_dbuf = 0
    c_com_s = 0
    c_com_iq = 0
    c_mem_stores = 0
    c_mem_loads = 0
    c_squashes = 0
    c_iq_src = 0
    c_iq_dbuf = 0
    c_iq_fu = 0
    c_issued_iq = 0
    c_issued_iq_mem = 0
    c_issued_iq_nonmem = 0
    c_issued_spec = 0
    c_issued_spec_mem = 0
    c_issued_spec_nonmem = 0
    c_issued = 0
    c_prf_reads = 0
    c_prf_writes = 0
    c_stl = 0
    c_siq_exam = 0
    c_siq_passes = 0
    c_prf_stall = 0
    c_agi = 0
    c_pass_rename = 0
    c_rob_writes = 0
    c_sq_writes = 0
    c_sb_retires = 0
    c_sb_sent = 0
    c_dispatched = 0
    c_fetched = 0
    c_gates = 0
    c_redirects = 0
    c_rat_reads = 0
    c_rat_writes = 0
    c_allocs = 0
    c_allocs_fp = 0
    c_allocs_int = 0
    c_pc_incs = 0
    c_freelist = 0
    c_osca = 0
    c_osca_skips = 0
    c_sq_searches = 0
    c_sentinels = 0
    c_sq_commit = 0
    c_mem_viol = 0

    try:
        while True:
            if not rob and cursor >= n and not n_fq and not lsu_sq:
                empty = True
                for queue in queues:
                    if queue:
                        empty = False
                        break
                if empty:
                    core.cycle = cycle - 1 if cycle else 0
                    break

            if skip_ok:
                # Inlined CasinoCore._next_event_cycle: scalar stall-rate
                # ints instead of a dict, min-tracking instead of a
                # candidate list.
                quiescent = True
                target = _FAR
                r_sb_sent = r_iq_src = r_iq_dbuf = r_iq_fu = 0
                r_siq_exam = r_prf = r_agi = r_pass = 0
                if rob:
                    done = rob[0].done_at
                    if done is not None and done <= cycle:
                        quiescent = False
                if quiescent and lsu_sq:
                    head = lsu_sq[0]
                    if head.committed:
                        if head in sentinels:
                            r_sb_sent = 1
                        else:
                            fill_at = head.fill_ready
                            if fill_at is None:
                                pass
                            elif cycle < fill_at:
                                if fill_at < target:
                                    target = fill_at
                            else:
                                quiescent = False
                if quiescent and iq:
                    entry = iq[0]
                    if entry.n_pending:
                        ready = True
                        for producer in entry.producers:
                            done = producer.done_at
                            if done is None or done > cycle:
                                ready = False
                                break
                    else:
                        ready = True
                    if not ready:
                        r_iq_src = 1
                    else:
                        seq = entry.seq
                        if (use_dbuf and dst_col[seq] >= 0
                                and dbuf_used >= dbuf_size):
                            r_iq_dbuf = 1
                        elif capacity[fu_col[seq]]:
                            quiescent = False
                        else:
                            r_iq_fu = 1
                if quiescent:
                    qi = n_queues - 2
                    while qi >= 0:
                        queue = queues[qi]
                        if not queue:
                            qi -= 1
                            continue
                        first = qi == 0
                        entry = queue[0]
                        if first:
                            r_siq_exam = 1
                        if entry.n_pending:
                            ready = True
                            for producer in entry.producers:
                                done = producer.done_at
                                if done is None or done > cycle:
                                    ready = False
                                    break
                        else:
                            ready = True
                        seq = entry.seq
                        kind = kind_col[seq]
                        if ready:
                            # read-only twin of _can_issue_spec
                            blocked = False
                            if first:
                                if len(rob) >= rob_size:
                                    blocked = True
                                elif ((d := dst_col[seq]) >= 0
                                      and (free_fp if d >= num_int
                                           else free_int) <= 0):
                                    r_prf += 1
                                    blocked = True
                                elif (kind == 2
                                        and len(lsu_sq) >= sq_sb_size):
                                    blocked = True
                                elif (kind == 1 and fully_ooo
                                        and len(lsu.lq) >= lq_size):
                                    blocked = True
                            if not blocked and agi_mode and 0 < kind < 3:
                                older = False
                                for other in rob:
                                    if other.seq >= seq:
                                        break
                                    if (0 < kind_col[other.seq] < 3
                                            and other.issue_at is None):
                                        older = True
                                        break
                                if older:
                                    r_agi += 1
                                    blocked = True
                            if not blocked and capacity[fu_col[seq]]:
                                quiescent = False
                                break
                        elif so >= 1 and (len(queues[qi + 1])
                                          < queue_sizes[qi + 1]):
                            if not first:
                                quiescent = False
                                break
                            # read-only twin of _can_pass_first
                            if len(rob) >= rob_size:
                                pass
                            elif ((d := dst_col[seq]) >= 0
                                  and (pending_get(rat[d], 0) >= pc_max
                                       if use_dbuf else
                                       (free_fp if d >= num_int
                                        else free_int) <= 0)):
                                r_pass += 1
                            elif kind == 2 and len(lsu_sq) >= sq_sb_size:
                                pass
                            else:
                                quiescent = False
                                break
                        qi -= 1
                if quiescent and n_fq:
                    ready_at = fq[0] >> _FQ_SHIFT
                    if ready_at > cycle:
                        if ready_at < target:
                            target = ready_at
                    elif q0_cap > len(q0):
                        quiescent = False
                if quiescent and blocked_seq is None:
                    if stalled_until > cycle:
                        if stalled_until < target:
                            target = stalled_until
                    elif cursor < n and n_fq < fetch_capacity:
                        quiescent = False
                if quiescent:
                    if next_wakeup < target:
                        target = next_wakeup
                    wd_fire = last_commit_cycle + watchdog + 1
                    mc_fire = max_cycles + 1
                    stop = target
                    if wd_fire < stop:
                        stop = wd_fire
                    if mc_fire < stop:
                        stop = mc_fire
                    if stop > cycle:
                        span = stop - cycle
                        if r_sb_sent:
                            c_sb_sent += span
                        if r_iq_src:
                            c_iq_src += span
                        if r_iq_dbuf:
                            c_iq_dbuf += span
                        if r_iq_fu:
                            c_iq_fu += span
                        if r_siq_exam:
                            c_siq_exam += span
                        if r_prf:
                            c_prf_stall += r_prf * span
                        if r_agi:
                            c_agi += r_agi * span
                        if r_pass:
                            c_pass_rename += r_pass * span
                        ff_spans += 1
                        ff_skipped += span
                        if next_wakeup <= stop:
                            while True:
                                due = [key for key in wakeup_cal
                                       if key <= stop]
                                if not due:
                                    break
                                for key in due:
                                    for producer in wakeup_cal.pop(key):
                                        done = producer.done_at
                                        if done is None:
                                            continue
                                        if done > key:
                                            bucket = wakeup_cal_get(done)
                                            if bucket is None:
                                                wakeup_cal[done] = [producer]
                                            else:
                                                bucket.append(producer)
                                            continue
                                        waiters = producer.waiters
                                        if waiters:
                                            for waiter in waiters:
                                                waiter.n_pending -= 1
                                            waiters.clear()
                            next_wakeup = (min(wakeup_cal) if wakeup_cal
                                           else _FAR)
                        cycle = stop
                        if stop == wd_fire:
                            core.cycle = stop - 1
                            core.dbuf_used = dbuf_used
                            renamer.free_int = free_int
                            renamer.free_fp = free_fp
                            raise SimulationError(
                                f"{name}: no commit for "
                                f"{watchdog} cycles at cycle {cycle} "
                                f"(deadlock?) - {core._debug_state()}",
                                core=name,
                                check="deadlock_watchdog", cycle=cycle,
                                last_commit_cycle=last_commit_cycle,
                                committed=committed_total,
                                debug=core._debug_state())
                        if stop == mc_fire:
                            core.cycle = stop - 1
                            core.dbuf_used = dbuf_used
                            renamer.free_int = free_int
                            renamer.free_fp = free_fp
                            raise SimulationError(
                                f"{name}: exceeded {max_cycles} "
                                f"cycles - {core._debug_state()}",
                                core=name, check="cycle_budget",
                                cycle=cycle, max_cycles=max_cycles,
                                committed=committed_total,
                                debug=core._debug_state())

            # -- wakeup calendar delivery --------------------------------
            if cycle >= next_wakeup:
                bucket = wakeup_cal.pop(cycle, None)
                if bucket is not None:
                    for producer in bucket:
                        done = producer.done_at
                        if done is None:
                            continue
                        if done > cycle:
                            requeue = wakeup_cal_get(done)
                            if requeue is None:
                                wakeup_cal[done] = [producer]
                            else:
                                requeue.append(producer)
                            continue
                        waiters = producer.waiters
                        if waiters:
                            for waiter in waiters:
                                waiter.n_pending -= 1
                            waiters.clear()
                next_wakeup = min(wakeup_cal) if wakeup_cal else _FAR

            # -- functional-unit pool reset ------------------------------
            free_alu = n_alu
            free_fpu = n_fpu
            free_agu = n_agu
            store_port_free = True

            # -- SB head retire into the L1D -----------------------------
            if lsu_sq:
                head = lsu_sq[0]
                if head.committed:
                    if head in sentinels:
                        c_sb_sent += 1
                    else:
                        fill_at = head.fill_ready
                        if (fill_at is not None and cycle >= fill_at
                                and store_port_free):
                            store_port_free = False
                            lsu_sq_popleft()
                            c_sb_retires += 1
                            if osca_dec is not None:
                                h_inst = head.inst
                                osca_dec(h_inst.mem_addr, h_inst.mem_size)

            # -- in-order commit from the ROB head -----------------------
            if rob:
                done = rob[0].done_at
                if done is not None and done <= cycle:
                    committed_n = 0
                    while committed_n < width and rob:
                        entry = rob[0]
                        done = entry.done_at
                        if done is None or done > cycle:
                            break
                        seq = entry.seq
                        kind = kind_col[seq]
                        violation = False
                        if kind == 1:
                            if fully_ooo:
                                violation = lsu_commit_load(entry, cycle)
                            else:
                                # inlined CasinoLsu.commit_load: unpin
                                # the TSO line sentinel, then value-check
                                # the snapshotted unresolved older stores
                                if line_pins and entry in line_pins:
                                    line_pins_remove(entry)
                                    line0 = addr_col[seq] >> 6
                                    cnt0 = line_sent_get(line0, 0)
                                    if cnt0 <= 1:
                                        line_sent_pop(line0, None)
                                    else:
                                        line_sentinels[line0] = cnt0 - 1
                                unresolved = entry.unresolved_older
                                if unresolved:
                                    c_sq_searches += 1
                                    c_sq_commit += 1
                                    l_inst = entry.inst
                                    for store in unresolved:
                                        if store.inst.overlaps(l_inst):
                                            violation = True
                                            break
                                    sent_target = entry.sentinel_on
                                    if (sent_target is not None
                                            and sentinels_get(sent_target)
                                            == seq):
                                        del sentinels[sent_target]
                                if violation:
                                    c_mem_viol += 1
                        if violation:
                            # On-commit value-check failed: flush this
                            # load and younger, then re-execute (inlined
                            # CasinoCore._squash + squash_from).
                            from_seq = seq
                            squashed = []
                            while rob and rob[-1].seq >= from_seq:
                                victim = rob.pop()
                                squashed.append(victim)
                                if victim.queue_tag == "dbuf":
                                    dbuf_used -= 1
                            renamer.free_int = free_int
                            renamer.free_fp = free_fp
                            renamer_squash(squashed)
                            free_int = renamer.free_int
                            free_fp = renamer.free_fp
                            for queue in queues:
                                while queue and queue[-1].seq >= from_seq:
                                    queue.pop()
                            lsu_squash(from_seq)
                            c_squashes += 1
                            core._last_squash_seq = from_seq
                            core._last_squash_reason = "mem_order"
                            while n_fq and fq[-1] & _FQ_MASK >= from_seq:
                                fq_pop()
                                n_fq -= 1
                            cursor = from_seq
                            if (blocked_seq is not None
                                    and blocked_seq >= from_seq):
                                blocked_seq = None
                            resume = cycle + mispredict_penalty
                            if resume > stalled_until:
                                stalled_until = resume
                            cur_line = -1
                            stale = [reg for reg, e in last_writer.items()
                                     if e.seq >= from_seq]
                            for reg in stale:
                                del last_writer[reg]
                            break
                        rob_popleft()
                        if kind == 2:
                            # inlined CasinoLsu.commit_store
                            entry.committed = True
                            s_addr = addr_col[seq]
                            if s_addr >= 0:
                                c_mem_stores += 1
                                fill = -1
                                line = s_addr >> l1d_shift
                                fill_at = l1d_mshrs_get(line)
                                if fill_at is None or fill_at <= cycle:
                                    tags = l1d_sets_get(line % l1d_nsets)
                                    if tags is not None and line in tags:
                                        # inlined L1D write-hit (see above)
                                        counters[k_l1d_accesses] += 1.0
                                        l1d_dirty_add(line)
                                        l1d._use_stamp = stamp = \
                                            l1d._use_stamp + 1
                                        tags[line] = stamp
                                        counters[k_l1d_hits] += 1.0
                                        fill = 0
                                if fill < 0:
                                    fill = (l1d_access(s_addr, cycle, True)
                                            - l1d_hit)
                                entry.fill_ready = \
                                    cycle + fill if fill > 0 else cycle
                            else:
                                latency = hier_store(None, cycle)
                                extra = latency - l1d_hit
                                entry.fill_ready = \
                                    cycle + extra if extra > 0 else cycle
                        # inlined ConditionalRenamer.commit/_free
                        if entry.fresh_phys:
                            if dst_col[seq] >= num_int:
                                free_fp += 1
                            else:
                                free_int += 1
                            c_freelist += 1
                        if entry.queue_tag == "dbuf":
                            dbuf_used -= 1
                            c_dbuf += 1
                        c_rob_reads += 1
                        # inlined note_commit
                        if seq != expected_seq:
                            core.cycle = cycle
                            core.dbuf_used = dbuf_used
                            renamer.free_int = free_int
                            renamer.free_fp = free_fp
                            raise SimulationError(
                                f"{name}: out-of-order commit: expected "
                                f"seq {expected_seq}, got {seq} at cycle "
                                f"{cycle} - {core._debug_state()}",
                                core=name, check="program_order",
                                cycle=cycle, expected=expected_seq,
                                got=seq, debug=core._debug_state())
                        expected_seq = seq + 1
                        entry.committed = True
                        c_committed += 1
                        committed_total += 1
                        last_commit_cycle = cycle
                        if schedule is not None:
                            schedule.append(
                                (seq, entry.inst, entry.issue_at, done,
                                 cycle, entry.from_siq, entry.dispatch_at))
                        dst = dst_col[seq]
                        if dst >= 0 and last_writer_get(dst) is entry:
                            del last_writer[dst]
                        if entry.from_siq:
                            c_com_s += 1
                        else:
                            c_com_iq += 1
                        committed_n += 1
                    next_trip = last_commit_cycle + watchdog
                    if max_cycles < next_trip:
                        next_trip = max_cycles

            # -- strict in-order issue from the final IQ -----------------
            budget = width
            if iq:
                issued_n = 0
                while iq and issued_n < budget:
                    entry = iq[0]
                    if entry.n_pending:
                        ready = True
                        for producer in entry.producers:
                            done = producer.done_at
                            if done is None or done > cycle:
                                ready = False
                                break
                        if not ready:
                            c_iq_src += 1
                            break
                    seq = entry.seq
                    needs_dbuf = use_dbuf and dst_col[seq] >= 0
                    if needs_dbuf and dbuf_used >= dbuf_size:
                        c_iq_dbuf += 1
                        break
                    fu_idx = fu_col[seq]
                    if fu_idx == 0:
                        if free_alu <= 0:
                            c_iq_fu += 1
                            break
                        free_alu -= 1
                    elif fu_idx == 2:
                        if free_agu <= 0:
                            c_iq_fu += 1
                            break
                        free_agu -= 1
                    else:
                        if free_fpu <= 0:
                            c_iq_fu += 1
                            break
                        free_fpu -= 1
                    iq_popleft()
                    if needs_dbuf:
                        dbuf_used += 1
                        entry.queue_tag = "dbuf"
                        c_dbuf += 1
                    # inlined ConditionalRenamer.on_iq_issue
                    if (use_dbuf and not entry.fresh_phys
                            and dst_col[seq] >= 0):
                        phys = entry.phys
                        cnt = pending_get(phys, 0)
                        if cnt == 1:
                            del pending_map[phys]
                        elif cnt > 1:
                            pending_map[phys] = cnt - 1
                    # inlined _execute(from_iq=True)
                    entry.issue_at = cycle
                    kind = kind_col[seq]
                    c_issued_iq += 1
                    if 0 < kind < 3:
                        c_issued_iq_mem += 1
                    else:
                        c_issued_iq_nonmem += 1
                    c_issued += 1
                    n_srcs = nsrc_col[seq]
                    if extra_srcs and seq in extra_srcs:
                        n_srcs += len(extra_srcs[seq])
                    c_prf_reads += n_srcs
                    if dst_col[seq] >= 0:
                        c_prf_writes += 1
                    if kind == 1:  # load
                        # inlined load_issued(from_iq=True): IQ loads are
                        # non-speculative — no unresolved snapshot, no
                        # sentinel, no TSO line pin.
                        addr0 = addr_col[seq]
                        if fully_ooo or addr0 < 0:
                            forward = lsu_load_issued(entry, cycle, True)
                        else:
                            forward = None
                            skip = False
                            if osca_counters is not None:
                                c_osca += 1
                                slot = addr0 // osca_granule
                                last_slot = ((addr0 + entry.inst.mem_size
                                              - 1) // osca_granule)
                                out = 0
                                while slot <= last_slot:
                                    v = osca_counters[slot % osca_entries]
                                    if v > out:
                                        out = v
                                    slot += 1
                                if not out:
                                    skip = True
                                    c_osca_skips += 1
                                    entry.osca_skipped = True
                            if not skip:
                                c_sq_searches += 1
                                l_inst = entry.inst
                                for store in lsu_sq:
                                    if (store.seq < seq
                                            and store.issue_at is not None
                                            and store.inst.overlaps(
                                                l_inst)):
                                        if (forward is None
                                                or store.seq > forward.seq):
                                            forward = store
                            entry.unresolved_older = []
                        entry.forward_store = forward
                        if forward is not None:
                            done = cycle + 2
                            c_stl += 1
                        else:
                            c_mem_loads += 1
                            load_addr = addr_col[seq]
                            latency = -1
                            if load_addr >= 0:
                                line = load_addr >> l1d_shift
                                fill_at = l1d_mshrs_get(line)
                                if fill_at is None or fill_at <= cycle:
                                    tags = l1d_sets_get(line % l1d_nsets)
                                    if tags is not None and line in tags:
                                        # inlined L1D read-hit (see above)
                                        counters[k_l1d_accesses] += 1.0
                                        l1d._use_stamp = stamp = \
                                            l1d._use_stamp + 1
                                        tags[line] = stamp
                                        counters[k_l1d_hits] += 1.0
                                        latency = l1d_hit
                            if latency < 0:
                                latency = l1d_access(
                                    load_addr if load_addr >= 0 else None,
                                    cycle)
                            entry.cache_miss = latency > l1d_hit
                            done = cycle + latency
                        entry.done_at = done
                    elif kind == 2:  # store
                        entry.done_at = done = cycle + 1
                        lsu_store_issued(entry, cycle)
                        # violation_seq is only set in fully_ooo mode and
                        # loads never reach the IQ unissued there; mirror
                        # the interpreted poll anyway for exactness.
                        if lsu.violation_seq is not None:
                            victim_seq = lsu.violation_seq
                            lsu.violation_seq = None
                            squashed = []
                            while rob and rob[-1].seq >= victim_seq:
                                victim = rob.pop()
                                squashed.append(victim)
                                if victim.queue_tag == "dbuf":
                                    dbuf_used -= 1
                            renamer.free_int = free_int
                            renamer.free_fp = free_fp
                            renamer_squash(squashed)
                            free_int = renamer.free_int
                            free_fp = renamer.free_fp
                            for queue in queues:
                                while (queue
                                       and queue[-1].seq >= victim_seq):
                                    queue.pop()
                            lsu_squash(victim_seq)
                            c_squashes += 1
                            core._last_squash_seq = victim_seq
                            core._last_squash_reason = "mem_order"
                            while (n_fq
                                   and fq[-1] & _FQ_MASK >= victim_seq):
                                fq_pop()
                                n_fq -= 1
                            cursor = victim_seq
                            if (blocked_seq is not None
                                    and blocked_seq >= victim_seq):
                                blocked_seq = None
                            resume = cycle + mispredict_penalty
                            if resume > stalled_until:
                                stalled_until = resume
                            cur_line = -1
                            stale = [reg for reg, e in last_writer.items()
                                     if e.seq >= victim_seq]
                            for reg in stale:
                                del last_writer[reg]
                    else:
                        entry.done_at = done = cycle + lat_col[seq]
                        if kind == 3 and blocked_seq == seq:
                            # resolve_branch: resume after the redirect
                            blocked_seq = None
                            resume = done + mispredict_penalty
                            if resume > stalled_until:
                                stalled_until = resume
                            c_redirects += 1
                    if done > cycle:
                        bucket = wakeup_cal_get(done)
                        if bucket is None:
                            wakeup_cal[done] = [entry]
                        else:
                            bucket.append(entry)
                        if done < next_wakeup:
                            next_wakeup = done
                    else:
                        waiters = entry.waiters
                        if waiters:
                            for waiter in waiters:
                                waiter.n_pending -= 1
                            waiters.clear()
                    issued_n += 1
                budget -= issued_n

            # -- SpecInO window scan over the cascaded S-IQs -------------
            qi = n_queues - 2
            while qi >= 0:
                queue = queues[qi]
                if not queue:
                    qi -= 1
                    continue
                first = qi == 0
                next_queue = queues[qi + 1]
                next_cap = queue_sizes[qi + 1]
                issued_n = 0
                processed = 0
                passes = 0
                while queue and processed < ws:
                    entry = queue[0]
                    if first:
                        c_siq_exam += 1
                    if entry.n_pending:
                        ready = True
                        for producer in entry.producers:
                            done = producer.done_at
                            if done is None or done > cycle:
                                ready = False
                                break
                    else:
                        ready = True
                    seq = entry.seq
                    kind = kind_col[seq]
                    if ready:
                        if issued_n >= budget:
                            break  # ready but out of slots: wait
                        # inlined _can_issue_spec (break on any blocker:
                        # waiting at the head beats passing)
                        if first:
                            if len(rob) >= rob_size:
                                break
                            dst = dst_col[seq]
                            if dst >= 0 and (free_fp if dst >= num_int
                                             else free_int) <= 0:
                                c_prf_stall += 1
                                break
                            if kind == 2 and len(lsu_sq) >= sq_sb_size:
                                break
                            if (kind == 1 and fully_ooo
                                    and len(lsu.lq) >= lq_size):
                                break
                        if agi_mode and 0 < kind < 3:
                            older = False
                            for other in rob:
                                if other.seq >= seq:
                                    break
                                if (0 < kind_col[other.seq] < 3
                                        and other.issue_at is None):
                                    older = True
                                    break
                            if older:
                                c_agi += 1
                                break
                        fu_idx = fu_col[seq]
                        if fu_idx == 0:
                            if free_alu <= 0:
                                break
                            free_alu -= 1
                        elif fu_idx == 2:
                            if free_agu <= 0:
                                break
                            free_agu -= 1
                        else:
                            if free_fpu <= 0:
                                break
                            free_fpu -= 1
                        queue.popleft()
                        n_srcs = nsrc_col[seq]
                        if extra_srcs and seq in extra_srcs:
                            n_srcs += len(extra_srcs[seq])
                        if first:
                            # inlined _leave_first_siq(passed=False):
                            # rename_speculative -> _alloc (can_alloc held
                            # just above, so the free list cannot be empty)
                            c_rat_reads += n_srcs
                            if dst >= 0:
                                if dst >= num_int:
                                    free_fp -= 1
                                    c_allocs_fp += 1
                                else:
                                    free_int -= 1
                                    c_allocs_int += 1
                                entry.prev_phys = rat[dst]
                                entry.phys = next_phys
                                entry.fresh_phys = True
                                rat[dst] = next_phys
                                next_phys += 1
                                c_rat_writes += 1
                                c_allocs += 1
                            entry.from_siq = True
                            rob_append(entry)
                            c_rob_writes += 1
                            if kind == 2:
                                lsu_sq_append(entry)
                                c_sq_writes += 1
                        # inlined _execute(from_iq=False)
                        entry.issue_at = cycle
                        entry.from_siq = True
                        c_issued_spec += 1
                        if 0 < kind < 3:
                            c_issued_spec_mem += 1
                        else:
                            c_issued_spec_nonmem += 1
                        c_issued += 1
                        c_prf_reads += n_srcs
                        if dst_col[seq] >= 0:
                            c_prf_writes += 1
                        if kind == 1:  # load
                            # inlined load_issued(from_iq=False):
                            # snapshot unresolved older stores, OSCA
                            # filter, SQ search, sentinel, TSO line pin.
                            addr0 = addr_col[seq]
                            if fully_ooo or addr0 < 0:
                                forward = lsu_load_issued(entry, cycle,
                                                          False)
                            else:
                                l_inst = entry.inst
                                if agi_mode:
                                    unresolved = []
                                else:
                                    unresolved = [s for s in lsu_sq
                                                  if s.seq < seq
                                                  and s.issue_at is None]
                                forward = None
                                skip = False
                                if osca_counters is not None:
                                    c_osca += 1
                                    slot = addr0 // osca_granule
                                    last_slot = ((addr0 + l_inst.mem_size
                                                  - 1) // osca_granule)
                                    out = 0
                                    while slot <= last_slot:
                                        v = osca_counters[
                                            slot % osca_entries]
                                        if v > out:
                                            out = v
                                        slot += 1
                                    if not out:
                                        skip = True
                                        c_osca_skips += 1
                                        entry.osca_skipped = True
                                if not skip:
                                    c_sq_searches += 1
                                    for store in lsu_sq:
                                        if (store.seq < seq
                                                and store.issue_at
                                                is not None
                                                and store.inst.overlaps(
                                                    l_inst)):
                                            if (forward is None
                                                    or store.seq
                                                    > forward.seq):
                                                forward = store
                                if forward is not None and unresolved:
                                    fseq = forward.seq
                                    unresolved = [s for s in unresolved
                                                  if s.seq > fseq]
                                entry.unresolved_older = unresolved
                                if unresolved:
                                    sent_target = unresolved[0]
                                    for s in unresolved:
                                        if s.seq < sent_target.seq:
                                            sent_target = s
                                    entry.sentinel_on = sent_target
                                    prev_owner = sentinels_get(sent_target)
                                    if (prev_owner is None
                                            or seq > prev_owner):
                                        sentinels[sent_target] = seq
                                    c_sentinels += 1
                                line0 = addr0 >> 6
                                line_sentinels[line0] = \
                                    line_sent_get(line0, 0) + 1
                                line_pins_append(entry)
                            entry.forward_store = forward
                            if forward is not None:
                                done = cycle + 2
                                c_stl += 1
                            else:
                                c_mem_loads += 1
                                load_addr = addr_col[seq]
                                latency = -1
                                if load_addr >= 0:
                                    line = load_addr >> l1d_shift
                                    fill_at = l1d_mshrs_get(line)
                                    if fill_at is None or fill_at <= cycle:
                                        tags = l1d_sets_get(
                                            line % l1d_nsets)
                                        if (tags is not None
                                                and line in tags):
                                            counters[k_l1d_accesses] += 1.0
                                            l1d._use_stamp = stamp = \
                                                l1d._use_stamp + 1
                                            tags[line] = stamp
                                            counters[k_l1d_hits] += 1.0
                                            latency = l1d_hit
                                if latency < 0:
                                    latency = l1d_access(
                                        load_addr if load_addr >= 0
                                        else None, cycle)
                                entry.cache_miss = latency > l1d_hit
                                done = cycle + latency
                            entry.done_at = done
                        elif kind == 2:  # store
                            entry.done_at = done = cycle + 1
                            lsu_store_issued(entry, cycle)
                            if lsu.violation_seq is not None:
                                victim_seq = lsu.violation_seq
                                lsu.violation_seq = None
                                squashed = []
                                while rob and rob[-1].seq >= victim_seq:
                                    victim = rob.pop()
                                    squashed.append(victim)
                                    if victim.queue_tag == "dbuf":
                                        dbuf_used -= 1
                                renamer.free_int = free_int
                                renamer.free_fp = free_fp
                                renamer_squash(squashed)
                                free_int = renamer.free_int
                                free_fp = renamer.free_fp
                                for squash_q in queues:
                                    while (squash_q and
                                           squash_q[-1].seq >= victim_seq):
                                        squash_q.pop()
                                lsu_squash(victim_seq)
                                c_squashes += 1
                                core._last_squash_seq = victim_seq
                                core._last_squash_reason = "mem_order"
                                while (n_fq and
                                       fq[-1] & _FQ_MASK >= victim_seq):
                                    fq_pop()
                                    n_fq -= 1
                                cursor = victim_seq
                                if (blocked_seq is not None
                                        and blocked_seq >= victim_seq):
                                    blocked_seq = None
                                resume = cycle + mispredict_penalty
                                if resume > stalled_until:
                                    stalled_until = resume
                                cur_line = -1
                                stale = [reg for reg, e
                                         in last_writer.items()
                                         if e.seq >= victim_seq]
                                for reg in stale:
                                    del last_writer[reg]
                        else:
                            entry.done_at = done = cycle + lat_col[seq]
                            if kind == 3 and blocked_seq == seq:
                                blocked_seq = None
                                resume = done + mispredict_penalty
                                if resume > stalled_until:
                                    stalled_until = resume
                                c_redirects += 1
                        if done > cycle:
                            bucket = wakeup_cal_get(done)
                            if bucket is None:
                                wakeup_cal[done] = [entry]
                            else:
                                bucket.append(entry)
                            if done < next_wakeup:
                                next_wakeup = done
                        else:
                            waiters = entry.waiters
                            if waiters:
                                for waiter in waiters:
                                    waiter.n_pending -= 1
                                waiters.clear()
                        issued_n += 1
                        processed += 1
                        continue
                    # Not ready: try to pass it to the next queue.
                    if passes < so and len(next_queue) < next_cap:
                        if first:
                            # inlined _can_pass_first
                            if len(rob) >= rob_size:
                                break
                            dst = dst_col[seq]
                            cnt = 0
                            if dst >= 0:
                                if use_dbuf:
                                    phys = rat[dst]
                                    cnt = pending_get(phys, 0)
                                    if cnt >= pc_max:
                                        c_pass_rename += 1
                                        break
                                elif (free_fp if dst >= num_int
                                      else free_int) <= 0:
                                    c_pass_rename += 1
                                    break
                            if kind == 2 and len(lsu_sq) >= sq_sb_size:
                                break
                            queue.popleft()
                            # inlined _leave_first_siq(passed=True):
                            # rename_passed bumps the shared mapping's
                            # ProducerCount (conditional scheme) or
                            # allocates conventionally
                            n_srcs = nsrc_col[seq]
                            if extra_srcs and seq in extra_srcs:
                                n_srcs += len(extra_srcs[seq])
                            c_rat_reads += n_srcs
                            if dst >= 0:
                                if use_dbuf:
                                    pending_map[phys] = cnt + 1
                                    entry.phys = phys
                                    entry.fresh_phys = False
                                    c_pc_incs += 1
                                else:
                                    if dst >= num_int:
                                        free_fp -= 1
                                        c_allocs_fp += 1
                                    else:
                                        free_int -= 1
                                        c_allocs_int += 1
                                    entry.prev_phys = rat[dst]
                                    entry.phys = next_phys
                                    entry.fresh_phys = True
                                    rat[dst] = next_phys
                                    next_phys += 1
                                    c_rat_writes += 1
                                    c_allocs += 1
                            rob_append(entry)
                            c_rob_writes += 1
                            if kind == 2:
                                lsu_sq_append(entry)
                                c_sq_writes += 1
                        else:
                            queue.popleft()
                        next_queue.append(entry)
                        c_siq_passes += 1
                        passes += 1
                        processed += 1
                        continue
                    break
                budget -= issued_n
                qi -= 1

            # -- dispatch into the first S-IQ ----------------------------
            if n_fq and fq[0] >> _FQ_SHIFT <= cycle:
                space = q0_cap - len(q0)
                limit = space if space < width else width
                dispatched_n = 0
                while dispatched_n < limit and n_fq \
                        and (packed := fq[0]) >> _FQ_SHIFT <= cycle:
                    fq_popleft()
                    n_fq -= 1
                    idx = packed & _FQ_MASK
                    # inlined make_entry
                    producers = []
                    n_srcs = nsrc_col[idx]
                    if n_srcs:
                        writer = last_writer_get(src0_col[idx])
                        if writer is not None:
                            producers.append(writer)
                        if n_srcs > 1:
                            writer = last_writer_get(src1_col[idx])
                            if writer is not None:
                                producers.append(writer)
                            if extra_srcs and idx in extra_srcs:
                                for src in extra_srcs[idx]:
                                    writer = last_writer_get(src)
                                    if writer is not None:
                                        producers.append(writer)
                    # InflightInst built via __new__ + direct slot writes:
                    # skips __init__'s call frame and its defensive
                    # list(producers) copy (the list here is fresh per
                    # dispatch and never reused).
                    entry = new_inflight(InflightInst)
                    entry.inst = objs[idx]
                    entry.seq = idx
                    entry.producers = producers
                    entry.waiters = []
                    entry.done_at = None
                    entry.issue_at = None
                    entry.dispatch_at = cycle
                    entry.committed = False
                    entry.fill_ready = None
                    entry.phys = None
                    entry.prev_phys = None
                    entry.fresh_phys = False
                    entry.from_siq = False
                    entry.unresolved_older = None
                    entry.forward_store = None
                    entry.sentinel_on = None
                    entry.osca_skipped = False
                    entry.cache_miss = False
                    entry.queue_tag = ""
                    n_pending = 0
                    for producer in producers:
                        done = producer.done_at
                        if done is None or done > cycle:
                            producer.waiters.append(entry)
                            n_pending += 1
                    entry.n_pending = n_pending
                    dst = dst_col[idx]
                    if dst >= 0:
                        last_writer[dst] = entry
                    q0.append(entry)
                    c_dispatched += 1
                    dispatched_n += 1

            # -- fetch ----------------------------------------------------
            if blocked_seq is None and cycle >= stalled_until and cursor < n:
                if n_fq < fetch_capacity:
                    fetched_n = 0
                    ready_tag = (cycle + frontend_latency) << _FQ_SHIFT
                    while fetched_n < width and n_fq < fetch_capacity \
                            and cursor < n:
                        line = line_col[cursor]
                        if line != cur_line:
                            cur_line = line
                            pc = pc_col[cursor]
                            iline = pc >> l1i_shift
                            fill_at = l1i_mshrs_get(iline)
                            if fill_at is None or fill_at <= cycle:
                                tags = l1i_sets_get(iline % l1i_nsets)
                            else:
                                tags = None
                            if tags is not None and iline in tags:
                                # inlined L1I hit: resident line, no
                                # in-flight fill -> no stall
                                counters[k_l1i_accesses] += 1.0
                                l1i._use_stamp = stamp = l1i._use_stamp + 1
                                tags[iline] = stamp
                                counters[k_l1i_hits] += 1.0
                            else:
                                extra = l1i_access(pc, cycle) - l1i_hit
                                if extra > 0:
                                    stalled_until = cycle + extra
                                    break
                        idx = cursor
                        cursor += 1
                        fq_append(ready_tag | idx)
                        n_fq += 1
                        fetched_n += 1
                        c_fetched += 1
                        if kind_col[idx] == 3:  # branch/jump
                            taken = taken_col[idx]
                            if op_col[idx] == _OP_BRANCH:
                                pred = tage_predict_update(
                                    pc_col[idx], taken == 1)
                            else:
                                pred = True
                            if taken:
                                tgt = target_col[idx]
                                predicted = btb_lookup_update(
                                    pc_col[idx], tgt)
                                if not pred or predicted != tgt:
                                    c_gates += 1
                                    blocked_seq = idx
                                break  # taken (or gated): group ends
                            elif pred:
                                c_gates += 1
                                blocked_seq = idx
                                break

            cycle += 1
            if committed_total >= warm_trigger:
                if c_committed:
                    counters["committed"] += float(c_committed)
                    c_committed = 0
                if c_rob_reads:
                    counters["rob_reads"] += float(c_rob_reads)
                    c_rob_reads = 0
                if c_dbuf:
                    counters["dbuf_access"] += float(c_dbuf)
                    c_dbuf = 0
                if c_com_s:
                    counters["committed_s_issue"] += float(c_com_s)
                    c_com_s = 0
                if c_com_iq:
                    counters["committed_iq_issue"] += float(c_com_iq)
                    c_com_iq = 0
                if c_mem_stores:
                    counters["mem_stores"] += float(c_mem_stores)
                    c_mem_stores = 0
                if c_mem_loads:
                    counters["mem_loads"] += float(c_mem_loads)
                    c_mem_loads = 0
                if c_squashes:
                    counters["squashes"] += float(c_squashes)
                    c_squashes = 0
                if c_iq_src:
                    counters["iq_stall_src"] += float(c_iq_src)
                    c_iq_src = 0
                if c_iq_dbuf:
                    counters["iq_stall_dbuf"] += float(c_iq_dbuf)
                    c_iq_dbuf = 0
                if c_iq_fu:
                    counters["iq_stall_fu"] += float(c_iq_fu)
                    c_iq_fu = 0
                if c_issued_iq:
                    counters["issued_iq"] += float(c_issued_iq)
                    c_issued_iq = 0
                if c_issued_iq_mem:
                    counters["issued_iq_mem"] += float(c_issued_iq_mem)
                    c_issued_iq_mem = 0
                if c_issued_iq_nonmem:
                    counters["issued_iq_nonmem"] += \
                        float(c_issued_iq_nonmem)
                    c_issued_iq_nonmem = 0
                if c_issued_spec:
                    counters["issued_spec"] += float(c_issued_spec)
                    c_issued_spec = 0
                if c_issued_spec_mem:
                    counters["issued_spec_mem"] += float(c_issued_spec_mem)
                    c_issued_spec_mem = 0
                if c_issued_spec_nonmem:
                    counters["issued_spec_nonmem"] += \
                        float(c_issued_spec_nonmem)
                    c_issued_spec_nonmem = 0
                if c_issued:
                    counters["issued"] += float(c_issued)
                    c_issued = 0
                if c_prf_reads:
                    counters["prf_reads"] += float(c_prf_reads)
                    c_prf_reads = 0
                if c_prf_writes:
                    counters["prf_writes"] += float(c_prf_writes)
                    c_prf_writes = 0
                if c_stl:
                    counters["stl_forwards"] += float(c_stl)
                    c_stl = 0
                if c_siq_exam:
                    counters["siq_examined"] += float(c_siq_exam)
                    c_siq_exam = 0
                if c_siq_passes:
                    counters["siq_passes"] += float(c_siq_passes)
                    c_siq_passes = 0
                if c_prf_stall:
                    counters["issue_stall_prf"] += float(c_prf_stall)
                    c_prf_stall = 0
                if c_agi:
                    counters["agi_order_stalls"] += float(c_agi)
                    c_agi = 0
                if c_pass_rename:
                    counters["pass_stall_rename"] += float(c_pass_rename)
                    c_pass_rename = 0
                if c_rob_writes:
                    counters["rob_writes"] += float(c_rob_writes)
                    c_rob_writes = 0
                if c_sq_writes:
                    counters["sq_writes"] += float(c_sq_writes)
                    c_sq_writes = 0
                if c_sb_retires:
                    counters["sb_retires"] += float(c_sb_retires)
                    c_sb_retires = 0
                if c_sb_sent:
                    counters["sb_sentinel_blocks"] += float(c_sb_sent)
                    c_sb_sent = 0
                if c_dispatched:
                    counters["dispatched"] += float(c_dispatched)
                    c_dispatched = 0
                if c_fetched:
                    counters["fetched"] += float(c_fetched)
                    c_fetched = 0
                if c_gates:
                    counters["fetch_mispredict_gates"] += float(c_gates)
                    c_gates = 0
                if c_redirects:
                    counters["branch_redirects"] += float(c_redirects)
                    c_redirects = 0
                if c_rat_reads:
                    counters["rat_reads"] += float(c_rat_reads)
                    c_rat_reads = 0
                if c_rat_writes:
                    counters["rat_writes"] += float(c_rat_writes)
                    c_rat_writes = 0
                if c_allocs:
                    counters["reg_allocs"] += float(c_allocs)
                    c_allocs = 0
                if c_allocs_fp:
                    counters["reg_allocs_fp"] += float(c_allocs_fp)
                    c_allocs_fp = 0
                if c_allocs_int:
                    counters["reg_allocs_int"] += float(c_allocs_int)
                    c_allocs_int = 0
                if c_pc_incs:
                    counters["producer_count_incs"] += float(c_pc_incs)
                    c_pc_incs = 0
                if c_freelist:
                    counters["freelist_ops"] += float(c_freelist)
                    c_freelist = 0
                if c_osca:
                    counters["osca_access"] += float(c_osca)
                    c_osca = 0
                if c_osca_skips:
                    counters["osca_search_skips"] += float(c_osca_skips)
                    c_osca_skips = 0
                if c_sq_searches:
                    counters["sq_searches"] += float(c_sq_searches)
                    c_sq_searches = 0
                if c_sentinels:
                    counters["sentinels_set"] += float(c_sentinels)
                    c_sentinels = 0
                if c_sq_commit:
                    counters["sq_commit_searches"] += float(c_sq_commit)
                    c_sq_commit = 0
                if c_mem_viol:
                    counters["mem_order_violations"] += float(c_mem_viol)
                    c_mem_viol = 0
                warm_snapshot = dict(counters)
                warm_cycle = cycle
                warm_trigger = _FAR
            # Fused watchdog/budget trip: ``next_trip`` under-approximates
            # the earliest cycle either limit can fire, so one compare
            # covers both; past it, re-derive exactly which (watchdog
            # first, matching the interpreted loop's check order).
            if cycle > next_trip:
                if cycle - last_commit_cycle > watchdog:
                    core.cycle = cycle - 1
                    core.dbuf_used = dbuf_used
                    renamer.free_int = free_int
                    renamer.free_fp = free_fp
                    raise SimulationError(
                        f"{name}: no commit for {watchdog} cycles at "
                        f"cycle {cycle} (deadlock?) - {core._debug_state()}",
                        core=name, check="deadlock_watchdog",
                        cycle=cycle, last_commit_cycle=last_commit_cycle,
                        committed=committed_total,
                        debug=core._debug_state())
                if cycle > max_cycles:
                    core.cycle = cycle - 1
                    core.dbuf_used = dbuf_used
                    renamer.free_int = free_int
                    renamer.free_fp = free_fp
                    raise SimulationError(
                        f"{name}: exceeded {max_cycles} cycles - "
                        f"{core._debug_state()}",
                        core=name, check="cycle_budget", cycle=cycle,
                        max_cycles=max_cycles,
                        committed=committed_total,
                        debug=core._debug_state())
                next_trip = last_commit_cycle + watchdog
                if max_cycles < next_trip:
                    next_trip = max_cycles
    finally:
        if c_committed:
            counters["committed"] += float(c_committed)
        if c_rob_reads:
            counters["rob_reads"] += float(c_rob_reads)
        if c_dbuf:
            counters["dbuf_access"] += float(c_dbuf)
        if c_com_s:
            counters["committed_s_issue"] += float(c_com_s)
        if c_com_iq:
            counters["committed_iq_issue"] += float(c_com_iq)
        if c_mem_stores:
            counters["mem_stores"] += float(c_mem_stores)
        if c_mem_loads:
            counters["mem_loads"] += float(c_mem_loads)
        if c_squashes:
            counters["squashes"] += float(c_squashes)
        if c_iq_src:
            counters["iq_stall_src"] += float(c_iq_src)
        if c_iq_dbuf:
            counters["iq_stall_dbuf"] += float(c_iq_dbuf)
        if c_iq_fu:
            counters["iq_stall_fu"] += float(c_iq_fu)
        if c_issued_iq:
            counters["issued_iq"] += float(c_issued_iq)
        if c_issued_iq_mem:
            counters["issued_iq_mem"] += float(c_issued_iq_mem)
        if c_issued_iq_nonmem:
            counters["issued_iq_nonmem"] += float(c_issued_iq_nonmem)
        if c_issued_spec:
            counters["issued_spec"] += float(c_issued_spec)
        if c_issued_spec_mem:
            counters["issued_spec_mem"] += float(c_issued_spec_mem)
        if c_issued_spec_nonmem:
            counters["issued_spec_nonmem"] += float(c_issued_spec_nonmem)
        if c_issued:
            counters["issued"] += float(c_issued)
        if c_prf_reads:
            counters["prf_reads"] += float(c_prf_reads)
        if c_prf_writes:
            counters["prf_writes"] += float(c_prf_writes)
        if c_stl:
            counters["stl_forwards"] += float(c_stl)
        if c_siq_exam:
            counters["siq_examined"] += float(c_siq_exam)
        if c_siq_passes:
            counters["siq_passes"] += float(c_siq_passes)
        if c_prf_stall:
            counters["issue_stall_prf"] += float(c_prf_stall)
        if c_agi:
            counters["agi_order_stalls"] += float(c_agi)
        if c_pass_rename:
            counters["pass_stall_rename"] += float(c_pass_rename)
        if c_rob_writes:
            counters["rob_writes"] += float(c_rob_writes)
        if c_sq_writes:
            counters["sq_writes"] += float(c_sq_writes)
        if c_sb_retires:
            counters["sb_retires"] += float(c_sb_retires)
        if c_sb_sent:
            counters["sb_sentinel_blocks"] += float(c_sb_sent)
        if c_dispatched:
            counters["dispatched"] += float(c_dispatched)
        if c_fetched:
            counters["fetched"] += float(c_fetched)
        if c_gates:
            counters["fetch_mispredict_gates"] += float(c_gates)
        if c_redirects:
            counters["branch_redirects"] += float(c_redirects)
        if c_rat_reads:
            counters["rat_reads"] += float(c_rat_reads)
        if c_rat_writes:
            counters["rat_writes"] += float(c_rat_writes)
        if c_allocs:
            counters["reg_allocs"] += float(c_allocs)
        if c_allocs_fp:
            counters["reg_allocs_fp"] += float(c_allocs_fp)
        if c_allocs_int:
            counters["reg_allocs_int"] += float(c_allocs_int)
        if c_pc_incs:
            counters["producer_count_incs"] += float(c_pc_incs)
        if c_freelist:
            counters["freelist_ops"] += float(c_freelist)
        if c_osca:
            counters["osca_access"] += float(c_osca)
        if c_osca_skips:
            counters["osca_search_skips"] += float(c_osca_skips)
        if c_sq_searches:
            counters["sq_searches"] += float(c_sq_searches)
        if c_sentinels:
            counters["sentinels_set"] += float(c_sentinels)
        if c_sq_commit:
            counters["sq_commit_searches"] += float(c_sq_commit)
        if c_mem_viol:
            counters["mem_order_violations"] += float(c_mem_viol)
        renamer.free_int = free_int
        renamer.free_fp = free_fp
        renamer._next_phys = next_phys
        core._committed = committed_total
        core._last_commit_cycle = last_commit_cycle
        core._expected_commit_seq = expected_seq
        core.ff_spans = ff_spans
        core.ff_skipped_cycles = ff_skipped
        core.dbuf_used = dbuf_used
        # Write the hoisted frontend state back so post-mortem inspection
        # (debug dumps, error details, drained checks) sees exactly what
        # the interpreted loop would leave behind.
        core.stream.cursor = cursor
        fetch.blocked_seq = blocked_seq
        fetch.stalled_until = stalled_until
        fetch._line = cur_line
        if fq:
            fetch_queue = fetch.queue
            for packed in fq:
                fetch_queue.append(FetchedInst(objs[packed & _FQ_MASK],
                                               packed >> _FQ_SHIFT))

    return cycle, warm_snapshot, warm_cycle
