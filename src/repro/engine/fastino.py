"""Kernelized run loop for the baseline in-order core (vector tier).

This is :class:`~repro.cores.inorder.InOrderCore`'s cycle loop with every
stage — fetch (including I-cache line checks and TAGE/BTB prediction),
dispatch, issue/execute, commit, store retirement and the quiescence
evaluator — inlined into one flat function.  The trace is consumed through
its :class:`~repro.engine.soatrace.TraceArrays` columns, and the in-flight
dataflow state itself is SoA: instead of allocating an ``InflightInst``
per dispatched instruction, the kernel keeps parallel per-seq lists
(``done_at``, ``issue_at``, pending counts, waiter lists) and the pipeline
queues hold bare sequence numbers.  Structure state is hoisted into locals
(queue lengths as plain ints, the fetch queue as a packed int deque, the
wakeup calendar behind a maintained minimum), per-cycle counter bumps
accumulate in plain ints flushed in bulk, and the functional-unit pool
collapses to three integers.

Bit-identity contract: every observable effect — counter values, commit
order, recorded schedules, wakeup-calendar behaviour, ``SimulationError``
messages, the post-run ``core.cycle`` and fetch/stream state — is exactly
what the interpreted path produces.  On the error paths the seq ints in
``iq``/``scb``/``sb`` are materialized back into real ``InflightInst``
objects first, so ``_debug_state()`` (embedded in the message) and
post-mortem queue inspection match the interpreted core.
``tests/test_vector_tier.py`` asserts the identity across apps, seeds and
both fast-forward settings; any change here must keep it green.

Counter flushing rule: an accumulator flushes only when nonzero, so the
counter *key set* (not just the values) matches the interpreted run.
Counters bumped by non-inlined callees (cache hierarchy, TAGE, BTB) are
never localised here.

The loop is deliberately one long function: the whole point of this tier
is removing call overhead, allocation and attribute traffic from the
per-event path, and the interpreted twin in ``cores/inorder.py`` remains
the readable specification.
"""

from __future__ import annotations

from collections import deque

from repro.engine.core_base import InflightInst, SimulationError, _FAR_FUTURE
from repro.frontend.fetch import FetchedInst
from repro.isa.opcodes import FU_FOR_OP, OpClass

#: Op-class value -> functional-unit pool index (0=ALU, 1=FPU, 2=AGU).
FU_OF = tuple(int(FU_FOR_OP[OpClass(i)]) for i in range(len(OpClass)))
#: Same mapping as a 256-byte translate table: ``bytes(op_col)`` maps the
#: whole opcode column to FU indices in one C-level pass at kernel entry.
_FU_TABLE = bytes(FU_OF[i] if i < len(FU_OF) else 0 for i in range(256))
_OP_BRANCH = int(OpClass.BRANCH)

#: Fetch-queue packing: one deque int per entry, ``(ready_at << 34) | idx``.
#: Python ints never overflow, so the shift only needs to clear the index
#: range (a trace is far below 2^34 instructions).
_FQ_SHIFT = 34
_FQ_MASK = (1 << _FQ_SHIFT) - 1

_FAR = _FAR_FUTURE


def _materialize(core, objs, kind_col, done_arr, issue_arr, disp_arr,
                 fill_arr, npend_arr):
    """Rebuild ``core.iq``/``scb``/``sb`` as real ``InflightInst`` objects.

    Called on the error paths only: the kernel's queues hold bare seq
    ints, but ``_debug_state()`` (embedded in every ``SimulationError``
    message) reprs the entries, and post-mortem inspection expects the
    interpreted core's object state.
    """
    for in_sb, queue in ((False, core.iq), (False, core.scb),
                         (True, core.sb)):
        seqs = list(queue)
        queue.clear()
        for seq in seqs:
            entry = InflightInst(objs[seq], ())
            issue_at = issue_arr[seq]
            if issue_at >= 0:
                entry.issue_at = issue_at
            done = done_arr[seq]
            if done < _FAR:
                entry.done_at = done
            entry.dispatch_at = disp_arr[seq]
            entry.n_pending = npend_arr[seq]
            if in_sb and kind_col[seq] == 2:
                entry.fill_ready = fill_arr[seq]
            queue.append(entry)


def run_inorder(core, arrays, max_cycles, watchdog, warmup, skip_ok):
    """Run the whole trace on an ``InOrderCore`` after ``reset()``.

    Returns ``(final_cycle, warm_snapshot, warm_cycle)`` exactly as the
    interpreted loop would leave them; raises the same
    :class:`SimulationError` family on watchdog/budget/ordering trips.
    """
    cfg = core.cfg
    width = cfg.width
    iq_size = cfg.iq_size
    scb_size = cfg.scb_size
    sb_size = cfg.sq_sb_size
    frontend_latency = cfg.frontend_latency
    mispredict_penalty = cfg.mispredict_penalty
    name = cfg.name

    # SoA trace columns (indexable by dynamic sequence number).
    pc_col = arrays.pc
    op_col = arrays.op
    dst_col = arrays.dst
    nsrc_col = arrays.nsrc
    src0_col = arrays.src0
    src1_col = arrays.src1
    addr_col = arrays.mem_addr
    size_col = arrays.mem_size
    taken_col = arrays.taken
    target_col = arrays.target
    kind_col, lat_col, line_col = arrays.hot_columns()
    extra_srcs = arrays.extra_srcs
    n = len(pc_col)
    fu_col = bytes(op_col).translate(_FU_TABLE)

    # SoA dataflow state, one slot per trace index (== dynamic seq).
    # ``_FAR`` in done_arr means "not finished"; -1 in issue_arr means
    # "not issued"; waiter/producer lists exist only while needed.
    done_arr = [_FAR] * n
    issue_arr = [-1] * n
    disp_arr = [0] * n
    fill_arr = [0] * n
    npend_arr = [0] * n
    wait_arr = [None] * n
    prod_arr = [None] * n

    counters = core.stats.counters
    iq = core.iq
    scb = core.scb
    sb = core.sb
    iq_append = iq.append
    iq_popleft = iq.popleft
    scb_append = scb.append
    scb_popleft = scb.popleft
    sb_append = sb.append
    sb_popleft = sb.popleft
    n_iq = len(iq)
    n_scb = len(scb)
    n_sb = len(sb)

    # Fetch state, fully hoisted: the queue becomes one packed int deque
    # (decode-ready cycle and trace index in a single value); predictor
    # and L1I calls bind direct.  Written back on every exit.
    fetch = core.fetch
    objs = core.stream.trace
    fetch_capacity = fetch.capacity
    tage_predict_update = fetch.tage.predict_update
    btb_lookup_update = fetch.btb.lookup_update
    l1i_access = core.hier.l1i.access
    l1i_hit = core.hier.l1i.cfg.latency
    fq = deque()
    fq_append = fq.append
    fq_popleft = fq.popleft
    n_fq = 0
    cursor = 0
    blocked_seq = None
    stalled_until = 0
    cur_line = -1

    hier = core.hier
    l1d = hier.l1d
    l1d_access = l1d.access
    l1d_hit = l1d.cfg.latency
    # L1D/L1I clean-hit fast path state (neither cache has an access hook
    # — only the L2 trains the prefetcher — so a resident, non-in-flight
    # line's access() reduces to counter bumps plus an LRU touch, inlined
    # at the call sites below; anything else falls through to access()).
    l1d_shift = l1d._line_shift
    l1d_nsets = l1d.n_sets
    l1d_sets_get = l1d.sets.get
    l1d_mshrs_get = l1d.mshrs.get
    l1d_dirty_add = l1d.dirty.add
    k_l1d_accesses = l1d._k_accesses
    k_l1d_hits = l1d._k_hits
    l1i = hier.l1i
    l1i_shift = l1i._line_shift
    l1i_nsets = l1i.n_sets
    l1i_sets_get = l1i.sets.get
    l1i_mshrs_get = l1i.mshrs.get
    k_l1i_accesses = l1i._k_accesses
    k_l1i_hits = l1i._k_hits

    capacity = core.fu.capacity
    n_alu, n_fpu, n_agu = capacity

    wakeup_cal = core._wakeup_cal
    next_wakeup = min(wakeup_cal) if wakeup_cal else _FAR
    last_writer = core.last_writer
    last_writer_get = last_writer.get
    schedule = core.schedule

    cycle = 0
    expected_seq = core._expected_commit_seq
    committed_total = core._committed
    last_commit_cycle = core._last_commit_cycle
    ff_spans = 0
    ff_skipped = 0
    warm_snapshot = None
    warm_cycle = 0
    warm_trigger = warmup if warmup else _FAR
    next_trip = last_commit_cycle + watchdog
    if max_cycles < next_trip:
        next_trip = max_cycles

    # Local counter accumulators (bulk-flushed; see module docstring).
    c_committed = 0
    c_scb_access = 0
    c_sb_retires = 0
    c_sb_writes = 0
    c_sb_full_stalls = 0
    c_issue_stall_src = 0
    c_issue_stall_scb = 0
    c_issue_stall_fu = 0
    c_issued = 0
    c_stl_forwards = 0
    c_sb_search = 0
    c_dispatched = 0
    c_fetched = 0
    c_gates = 0
    c_redirects = 0
    c_mem_loads = 0
    c_mem_stores = 0

    try:
        while True:
            if not n_iq and not n_scb and not n_sb and not n_fq \
                    and cursor >= n:
                core.cycle = cycle - 1 if cycle else 0
                break

            if skip_ok:
                # Inlined InOrderCore._next_event_cycle: scalar stall-rate
                # flags instead of a dict, min-tracking instead of a
                # candidate list.
                quiescent = True
                target = _FAR
                r_sb_full = r_src = r_scb = r_fu = False
                if n_sb:
                    fill_at = fill_arr[sb[0]]
                    if fill_at > cycle:
                        if fill_at < target:
                            target = fill_at
                    else:
                        quiescent = False
                if quiescent and n_scb:
                    head = scb[0]
                    if done_arr[head] <= cycle:
                        if kind_col[head] == 2 and n_sb >= sb_size:
                            r_sb_full = True
                        else:
                            quiescent = False
                if quiescent and n_iq:
                    head = iq[0]
                    if npend_arr[head]:
                        ready = True
                        for producer in prod_arr[head]:
                            if done_arr[producer] > cycle:
                                ready = False
                                break
                    else:
                        ready = True
                    if not ready:
                        r_src = True
                    elif n_scb >= scb_size:
                        r_scb = True
                    elif capacity[fu_col[head]]:
                        quiescent = False
                    else:
                        r_fu = True
                if quiescent and n_fq:
                    ready_at = fq[0] >> _FQ_SHIFT
                    if ready_at > cycle:
                        if ready_at < target:
                            target = ready_at
                    elif iq_size > n_iq:
                        quiescent = False
                if quiescent and blocked_seq is None:
                    if stalled_until > cycle:
                        if stalled_until < target:
                            target = stalled_until
                    elif cursor < n and n_fq < fetch_capacity:
                        quiescent = False
                if quiescent:
                    if next_wakeup < target:
                        target = next_wakeup
                    wd_fire = last_commit_cycle + watchdog + 1
                    mc_fire = max_cycles + 1
                    stop = target
                    if wd_fire < stop:
                        stop = wd_fire
                    if mc_fire < stop:
                        stop = mc_fire
                    if stop > cycle:
                        span = stop - cycle
                        if r_sb_full:
                            c_sb_full_stalls += span
                        if r_src:
                            c_issue_stall_src += span
                        if r_scb:
                            c_issue_stall_scb += span
                        if r_fu:
                            c_issue_stall_fu += span
                        ff_spans += 1
                        ff_skipped += span
                        if next_wakeup <= stop:
                            while True:
                                due = [key for key in wakeup_cal
                                       if key <= stop]
                                if not due:
                                    break
                                for key in due:
                                    for producer in wakeup_cal.pop(key):
                                        done = done_arr[producer]
                                        if done > key:
                                            bucket = wakeup_cal.get(done)
                                            if bucket is None:
                                                wakeup_cal[done] = [producer]
                                            else:
                                                bucket.append(producer)
                                            continue
                                        waiters = wait_arr[producer]
                                        if waiters is not None:
                                            for waiter in waiters:
                                                npend_arr[waiter] -= 1
                                            wait_arr[producer] = None
                            next_wakeup = (min(wakeup_cal) if wakeup_cal
                                           else _FAR)
                        cycle = stop
                        if stop == wd_fire:
                            core.cycle = stop - 1
                            _materialize(core, objs, kind_col, done_arr,
                                         issue_arr, disp_arr, fill_arr,
                                         npend_arr)
                            raise SimulationError(
                                f"{name}: no commit for "
                                f"{watchdog} cycles at cycle {cycle} "
                                f"(deadlock?) - {core._debug_state()}",
                                core=name,
                                check="deadlock_watchdog", cycle=cycle,
                                last_commit_cycle=last_commit_cycle,
                                committed=committed_total,
                                debug=core._debug_state())
                        if stop == mc_fire:
                            core.cycle = stop - 1
                            _materialize(core, objs, kind_col, done_arr,
                                         issue_arr, disp_arr, fill_arr,
                                         npend_arr)
                            raise SimulationError(
                                f"{name}: exceeded {max_cycles} "
                                f"cycles - {core._debug_state()}",
                                core=name, check="cycle_budget",
                                cycle=cycle, max_cycles=max_cycles,
                                committed=committed_total,
                                debug=core._debug_state())

            # -- wakeup calendar delivery --------------------------------
            if cycle >= next_wakeup:
                bucket = wakeup_cal.pop(cycle, None)
                if bucket is not None:
                    for producer in bucket:
                        done = done_arr[producer]
                        if done > cycle:
                            requeue = wakeup_cal.get(done)
                            if requeue is None:
                                wakeup_cal[done] = [producer]
                            else:
                                requeue.append(producer)
                            continue
                        waiters = wait_arr[producer]
                        if waiters is not None:
                            for waiter in waiters:
                                npend_arr[waiter] -= 1
                            wait_arr[producer] = None
                next_wakeup = min(wakeup_cal) if wakeup_cal else _FAR

            # -- functional-unit pool reset ------------------------------
            free_alu = n_alu
            free_fpu = n_fpu
            free_agu = n_agu

            # -- store-buffer retire -------------------------------------
            if n_sb and fill_arr[sb[0]] <= cycle:
                sb_popleft()
                n_sb -= 1
                c_sb_retires += 1

            # -- in-order commit from the SCB head -----------------------
            if n_scb and done_arr[scb[0]] <= cycle:
                committed_n = 0
                while n_scb and committed_n < width:
                    seq = scb[0]
                    done = done_arr[seq]
                    if done > cycle:
                        break
                    if kind_col[seq] == 2:  # store
                        if n_sb >= sb_size:
                            c_sb_full_stalls += 1
                            break
                        sb_append(seq)
                        n_sb += 1
                        s_addr = addr_col[seq]
                        c_mem_stores += 1
                        fill = -1
                        if s_addr >= 0:
                            line = s_addr >> l1d_shift
                            fill_at = l1d_mshrs_get(line)
                            if fill_at is None or fill_at <= cycle:
                                tags = l1d_sets_get(line % l1d_nsets)
                                if tags is not None and line in tags:
                                    # inlined L1D write-hit (see above)
                                    counters[k_l1d_accesses] += 1.0
                                    l1d_dirty_add(line)
                                    l1d._use_stamp = stamp = \
                                        l1d._use_stamp + 1
                                    tags[line] = stamp
                                    counters[k_l1d_hits] += 1.0
                                    fill = 0
                        if fill < 0:
                            fill = (l1d_access(
                                s_addr if s_addr >= 0 else None,
                                cycle, True) - l1d_hit)
                        fill_arr[seq] = cycle + fill if fill > 0 else cycle
                        c_sb_writes += 1
                    scb_popleft()
                    n_scb -= 1
                    if seq != expected_seq:
                        core.cycle = cycle
                        _materialize(core, objs, kind_col, done_arr,
                                     issue_arr, disp_arr, fill_arr,
                                     npend_arr)
                        raise SimulationError(
                            f"{name}: out-of-order commit: expected seq "
                            f"{expected_seq}, got {seq} at cycle "
                            f"{cycle} - {core._debug_state()}",
                            core=name, check="program_order",
                            cycle=cycle, expected=expected_seq, got=seq,
                            debug=core._debug_state())
                    expected_seq = seq + 1
                    c_committed += 1
                    committed_total += 1
                    last_commit_cycle = cycle
                    if schedule is not None:
                        schedule.append(
                            (seq, objs[seq], issue_arr[seq], done,
                             cycle, False, disp_arr[seq]))
                    dst = dst_col[seq]
                    if dst >= 0 and last_writer_get(dst) == seq:
                        del last_writer[dst]
                    c_scb_access += 1
                    committed_n += 1
                next_trip = last_commit_cycle + watchdog
                if max_cycles < next_trip:
                    next_trip = max_cycles

            # -- strict in-order issue -----------------------------------
            if n_iq:
                issued_n = 0
                while n_iq and issued_n < width:
                    seq = iq[0]
                    if npend_arr[seq]:
                        ready = True
                        for producer in prod_arr[seq]:
                            if done_arr[producer] > cycle:
                                ready = False
                                break
                        if not ready:
                            c_issue_stall_src += 1
                            break
                    if n_scb >= scb_size:
                        c_issue_stall_scb += 1
                        break
                    fu_idx = fu_col[seq]
                    if fu_idx == 0:
                        if free_alu <= 0:
                            c_issue_stall_fu += 1
                            break
                        free_alu -= 1
                    elif fu_idx == 2:
                        if free_agu <= 0:
                            c_issue_stall_fu += 1
                            break
                        free_agu -= 1
                    else:
                        if free_fpu <= 0:
                            c_issue_stall_fu += 1
                            break
                        free_fpu -= 1
                    iq_popleft()
                    n_iq -= 1
                    # execute
                    issue_arr[seq] = cycle
                    kind = kind_col[seq]
                    if kind == 1:  # load
                        c_sb_search += 1
                        forwarded = False
                        load_addr = addr_col[seq]
                        if load_addr >= 0:
                            # Youngest older overlapping store wins; both
                            # queues are seq-ordered (in-order issue), so
                            # scan newest-first and stop at the first hit.
                            load_end = load_addr + size_col[seq]
                            for s_seq in reversed(scb):
                                if s_seq < seq and kind_col[s_seq] == 2:
                                    s_addr = addr_col[s_seq]
                                    if (0 <= s_addr < load_end
                                            and load_addr < s_addr
                                            + size_col[s_seq]):
                                        forwarded = True
                                        break
                            if not forwarded:
                                for s_seq in reversed(sb):
                                    s_addr = addr_col[s_seq]
                                    if (0 <= s_addr < load_end
                                            and load_addr < s_addr
                                            + size_col[s_seq]):
                                        forwarded = True
                                        break
                        if forwarded:
                            done = cycle + 2
                            c_stl_forwards += 1
                        else:
                            c_mem_loads += 1
                            latency = -1
                            if load_addr >= 0:
                                line = load_addr >> l1d_shift
                                fill_at = l1d_mshrs_get(line)
                                if fill_at is None or fill_at <= cycle:
                                    tags = l1d_sets_get(line % l1d_nsets)
                                    if tags is not None and line in tags:
                                        # inlined L1D read-hit (see above)
                                        counters[k_l1d_accesses] += 1.0
                                        l1d._use_stamp = stamp = \
                                            l1d._use_stamp + 1
                                        tags[line] = stamp
                                        counters[k_l1d_hits] += 1.0
                                        latency = l1d_hit
                            if latency < 0:
                                latency = l1d_access(
                                    load_addr if load_addr >= 0 else None,
                                    cycle)
                            done = cycle + latency
                        done_arr[seq] = done
                    elif kind == 2:  # store
                        done_arr[seq] = done = cycle + 1
                    else:
                        done_arr[seq] = done = cycle + lat_col[seq]
                        if kind == 3 and blocked_seq == seq:
                            # resolve_branch: resume fetch after redirect
                            blocked_seq = None
                            resume = done + mispredict_penalty
                            if resume > stalled_until:
                                stalled_until = resume
                            c_redirects += 1
                    if done > cycle:
                        bucket = wakeup_cal.get(done)
                        if bucket is None:
                            wakeup_cal[done] = [seq]
                        else:
                            bucket.append(seq)
                        if done < next_wakeup:
                            next_wakeup = done
                    else:
                        waiters = wait_arr[seq]
                        if waiters is not None:
                            for waiter in waiters:
                                npend_arr[waiter] -= 1
                            wait_arr[seq] = None
                    scb_append(seq)
                    n_scb += 1
                    issued_n += 1
                    c_issued += 1
                    c_scb_access += 1

            # -- dispatch into the IQ ------------------------------------
            if n_fq and fq[0] >> _FQ_SHIFT <= cycle:
                space = iq_size - n_iq
                limit = space if space < width else width
                dispatched_n = 0
                while dispatched_n < limit and n_fq \
                        and (packed := fq[0]) >> _FQ_SHIFT <= cycle:
                    fq_popleft()
                    n_fq -= 1
                    idx = packed & _FQ_MASK
                    n_srcs = nsrc_col[idx]
                    if n_srcs:
                        producers = None
                        writer = last_writer_get(src0_col[idx])
                        if writer is not None:
                            producers = [writer]
                        if n_srcs > 1:
                            writer = last_writer_get(src1_col[idx])
                            if writer is not None:
                                if producers is None:
                                    producers = [writer]
                                else:
                                    producers.append(writer)
                            if extra_srcs and idx in extra_srcs:
                                for src in extra_srcs[idx]:
                                    writer = last_writer_get(src)
                                    if writer is not None:
                                        if producers is None:
                                            producers = [writer]
                                        else:
                                            producers.append(writer)
                        if producers is not None:
                            pending = 0
                            for producer in producers:
                                if done_arr[producer] > cycle:
                                    waiters = wait_arr[producer]
                                    if waiters is None:
                                        wait_arr[producer] = [idx]
                                    else:
                                        waiters.append(idx)
                                    pending += 1
                            if pending:
                                npend_arr[idx] = pending
                                prod_arr[idx] = producers
                    disp_arr[idx] = cycle
                    dst = dst_col[idx]
                    if dst >= 0:
                        last_writer[dst] = idx
                    iq_append(idx)
                    n_iq += 1
                    c_dispatched += 1
                    dispatched_n += 1

            # -- fetch ----------------------------------------------------
            if blocked_seq is None and cycle >= stalled_until and cursor < n:
                if n_fq < fetch_capacity:
                    fetched_n = 0
                    ready_tag = (cycle + frontend_latency) << _FQ_SHIFT
                    while fetched_n < width and n_fq < fetch_capacity \
                            and cursor < n:
                        line = line_col[cursor]
                        if line != cur_line:
                            cur_line = line
                            pc = pc_col[cursor]
                            iline = pc >> l1i_shift
                            fill_at = l1i_mshrs_get(iline)
                            if fill_at is None or fill_at <= cycle:
                                tags = l1i_sets_get(iline % l1i_nsets)
                            else:
                                tags = None
                            if tags is not None and iline in tags:
                                # inlined L1I hit: resident line, no
                                # in-flight fill -> no stall
                                counters[k_l1i_accesses] += 1.0
                                l1i._use_stamp = stamp = l1i._use_stamp + 1
                                tags[iline] = stamp
                                counters[k_l1i_hits] += 1.0
                            else:
                                extra = l1i_access(pc, cycle) - l1i_hit
                                if extra > 0:
                                    stalled_until = cycle + extra
                                    break
                        idx = cursor
                        cursor += 1
                        fq_append(ready_tag | idx)
                        n_fq += 1
                        fetched_n += 1
                        c_fetched += 1
                        if kind_col[idx] == 3:  # branch/jump
                            taken = taken_col[idx]
                            if op_col[idx] == _OP_BRANCH:
                                pred = tage_predict_update(
                                    pc_col[idx], taken == 1)
                            else:
                                pred = True
                            if taken:
                                tgt = target_col[idx]
                                predicted = btb_lookup_update(
                                    pc_col[idx], tgt)
                                if not pred or predicted != tgt:
                                    c_gates += 1
                                    blocked_seq = idx
                                break  # taken (or gated): group ends
                            elif pred:
                                c_gates += 1
                                blocked_seq = idx
                                break

            cycle += 1
            if committed_total >= warm_trigger:
                if c_committed:
                    counters["committed"] += float(c_committed)
                    c_committed = 0
                if c_scb_access:
                    counters["scb_access"] += float(c_scb_access)
                    c_scb_access = 0
                if c_sb_retires:
                    counters["sb_retires"] += float(c_sb_retires)
                    c_sb_retires = 0
                if c_sb_writes:
                    counters["sb_writes"] += float(c_sb_writes)
                    c_sb_writes = 0
                if c_sb_full_stalls:
                    counters["sb_full_stalls"] += float(c_sb_full_stalls)
                    c_sb_full_stalls = 0
                if c_issue_stall_src:
                    counters["issue_stall_src"] += float(c_issue_stall_src)
                    c_issue_stall_src = 0
                if c_issue_stall_scb:
                    counters["issue_stall_scb"] += float(c_issue_stall_scb)
                    c_issue_stall_scb = 0
                if c_issue_stall_fu:
                    counters["issue_stall_fu"] += float(c_issue_stall_fu)
                    c_issue_stall_fu = 0
                if c_issued:
                    counters["issued"] += float(c_issued)
                    c_issued = 0
                if c_stl_forwards:
                    counters["stl_forwards"] += float(c_stl_forwards)
                    c_stl_forwards = 0
                if c_sb_search:
                    counters["sb_search"] += float(c_sb_search)
                    c_sb_search = 0
                if c_dispatched:
                    counters["dispatched"] += float(c_dispatched)
                    c_dispatched = 0
                if c_fetched:
                    counters["fetched"] += float(c_fetched)
                    c_fetched = 0
                if c_gates:
                    counters["fetch_mispredict_gates"] += float(c_gates)
                    c_gates = 0
                if c_redirects:
                    counters["branch_redirects"] += float(c_redirects)
                    c_redirects = 0
                if c_mem_loads:
                    counters["mem_loads"] += float(c_mem_loads)
                    c_mem_loads = 0
                if c_mem_stores:
                    counters["mem_stores"] += float(c_mem_stores)
                    c_mem_stores = 0
                warm_snapshot = dict(counters)
                warm_cycle = cycle
                warm_trigger = _FAR
            # Fused watchdog/budget trip: ``next_trip`` under-approximates
            # the earliest cycle either limit can fire, so one compare
            # covers both; past it, re-derive exactly which (watchdog
            # first, matching the interpreted loop's check order).
            if cycle > next_trip:
                if cycle - last_commit_cycle > watchdog:
                    core.cycle = cycle - 1
                    _materialize(core, objs, kind_col, done_arr,
                                 issue_arr, disp_arr, fill_arr, npend_arr)
                    raise SimulationError(
                        f"{name}: no commit for {watchdog} cycles at "
                        f"cycle {cycle} (deadlock?) - {core._debug_state()}",
                        core=name, check="deadlock_watchdog",
                        cycle=cycle, last_commit_cycle=last_commit_cycle,
                        committed=committed_total,
                        debug=core._debug_state())
                if cycle > max_cycles:
                    core.cycle = cycle - 1
                    _materialize(core, objs, kind_col, done_arr,
                                 issue_arr, disp_arr, fill_arr, npend_arr)
                    raise SimulationError(
                        f"{name}: exceeded {max_cycles} cycles - "
                        f"{core._debug_state()}",
                        core=name, check="cycle_budget", cycle=cycle,
                        max_cycles=max_cycles,
                        committed=committed_total,
                        debug=core._debug_state())
                next_trip = last_commit_cycle + watchdog
                if max_cycles < next_trip:
                    next_trip = max_cycles
    finally:
        if c_committed:
            counters["committed"] += float(c_committed)
        if c_scb_access:
            counters["scb_access"] += float(c_scb_access)
        if c_sb_retires:
            counters["sb_retires"] += float(c_sb_retires)
        if c_sb_writes:
            counters["sb_writes"] += float(c_sb_writes)
        if c_sb_full_stalls:
            counters["sb_full_stalls"] += float(c_sb_full_stalls)
        if c_issue_stall_src:
            counters["issue_stall_src"] += float(c_issue_stall_src)
        if c_issue_stall_scb:
            counters["issue_stall_scb"] += float(c_issue_stall_scb)
        if c_issue_stall_fu:
            counters["issue_stall_fu"] += float(c_issue_stall_fu)
        if c_issued:
            counters["issued"] += float(c_issued)
        if c_stl_forwards:
            counters["stl_forwards"] += float(c_stl_forwards)
        if c_sb_search:
            counters["sb_search"] += float(c_sb_search)
        if c_dispatched:
            counters["dispatched"] += float(c_dispatched)
        if c_fetched:
            counters["fetched"] += float(c_fetched)
        if c_gates:
            counters["fetch_mispredict_gates"] += float(c_gates)
        if c_redirects:
            counters["branch_redirects"] += float(c_redirects)
        if c_mem_loads:
            counters["mem_loads"] += float(c_mem_loads)
        if c_mem_stores:
            counters["mem_stores"] += float(c_mem_stores)
        core._committed = committed_total
        core._last_commit_cycle = last_commit_cycle
        core._expected_commit_seq = expected_seq
        core.ff_spans = ff_spans
        core.ff_skipped_cycles = ff_skipped
        # Write the hoisted frontend state back so post-mortem inspection
        # (debug dumps, error details, drained checks) sees exactly what
        # the interpreted loop would leave behind.
        core.stream.cursor = cursor
        fetch.blocked_seq = blocked_seq
        fetch.stalled_until = stalled_until
        fetch._line = cur_line
        if fq:
            queue = fetch.queue
            for packed in fq:
                queue.append(FetchedInst(objs[packed & _FQ_MASK],
                                         packed >> _FQ_SHIFT))

    return cycle, warm_snapshot, warm_cycle
