"""Microarchitectural invariant sanitizer (resilience layer).

A :class:`Sanitizer` is attached to a core for one run (``core.run(...,
sanitize=True)`` or ``REPRO_SANITIZE=1``) and checks structural invariants
every cycle plus architectural invariants at every commit.  All checks are
strictly *read-only* — a sanitized run must produce bit-identical timing to
an unsanitized one — and any violation raises a :class:`SanitizerError`
carrying a structured diagnostic (core, cycle, check name, debug state).

The default check set covers every core model:

* **occupancy** — no bounded structure (IQ/S-IQ/ROB/LSQ/SCB/SB/free list/
  data buffer) ever exceeds its configured capacity or goes negative,
  via the per-core :meth:`CoreModel._occupancy` hook;
* **counters** — event counters never go negative;
* **rename** — no physical register is double-allocated and ProducerCount
  sharing never exceeds its bound (cores with a renamer / free lists);
* **timestamps** — per committed instruction, ``issue <= done <= commit``
  and the instruction actually issued and completed;
* **dataflow** — a committed instruction never issued before one of its
  register producers completed (a corrupted ready bit shows up here);
* **load order** — a load that recorded unresolved older stores committed
  through the sentinel/OSCA value-check path, never around it;
* **accounting** — when a :class:`~repro.obs.accounting.CycleAccounting`
  observer is attached, its CPI-stack components sum exactly to the
  counted cycles every cycle (the accounting identity); a no-op otherwise.

The check set is pluggable: pass ``Sanitizer(cycle_checks=[...],
commit_checks=[...])`` with ``(name, fn)`` pairs, where a cycle check is
``fn(core, cycle) -> Optional[str]`` and a commit check is ``fn(core,
entry, cycle) -> Optional[str]``; a returned string is the violation.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

from repro.engine.core_base import SimulationError


class SanitizerError(SimulationError):
    """An invariant violation found by the sanitizer."""


# -- cycle checks (structural state) ----------------------------------------

def check_occupancy(core, cycle: int) -> Optional[str]:
    for name, (used, cap) in core._occupancy().items():
        if used < 0:
            return f"{name} occupancy negative ({used})"
        if used > cap:
            return f"{name} occupancy {used} exceeds capacity {cap}"
    return None


def check_counters(core, cycle: int) -> Optional[str]:
    for name, value in core.stats.counters.items():
        if value < 0:
            return f"counter {name!r} went negative ({value})"
    return None


def check_accounting(core, cycle: int) -> Optional[str]:
    """Cycle-accounting identity: the CPI-stack components must sum to
    exactly the number of cycles the accounting observer has counted, and
    that count must track the engine's cycle counter (the observer runs
    just before this check, so it has seen ``cycle + 1`` cycles).  A no-op
    when no accounting observer is attached."""
    acct = getattr(core, "accounting", None)
    if acct is None:
        return None
    error = acct.identity_error()
    if error:
        return error
    if acct.total_cycles != cycle + 1:
        return (f"accounting counted {acct.total_cycles} cycles "
                f"at engine cycle {cycle}")
    return None


def check_rename(core, cycle: int) -> Optional[str]:
    """No double-allocation; ProducerCount within its bound."""
    renamer = getattr(core, "renamer", None)
    if renamer is None:
        return None
    limit = core.cfg.producer_count_max
    for phys, count in renamer.pending.items():
        if count < 0:
            return f"ProducerCount of phys {phys} negative ({count})"
        if count > limit:
            return (f"ProducerCount of phys {phys} is {count}, "
                    f"exceeds bound {limit}")
    rob = getattr(core, "rob", ())
    seen = set()
    for entry in rob:
        if not entry.fresh_phys or entry.phys is None:
            continue
        if entry.phys in seen:
            return f"physical register {entry.phys} allocated twice"
        seen.add(entry.phys)
    return None


# -- commit checks (per-instruction architectural contract) ------------------

def check_timestamps(core, entry, cycle: int) -> Optional[str]:
    if entry.issue_at is None:
        return f"#{entry.seq} committed without ever issuing"
    if entry.done_at is None:
        return f"#{entry.seq} committed without completing"
    if entry.issue_at > entry.done_at:
        return (f"#{entry.seq} completed at {entry.done_at} before "
                f"issuing at {entry.issue_at}")
    if entry.done_at > cycle:
        return (f"#{entry.seq} committed at cycle {cycle} before "
                f"completing at {entry.done_at}")
    return None


def check_dataflow(core, entry, cycle: int) -> Optional[str]:
    for producer in entry.producers:
        if producer.done_at is None or (entry.issue_at is not None
                                        and producer.done_at > entry.issue_at):
            return (f"#{entry.seq} issued at {entry.issue_at} before its "
                    f"producer #{producer.seq} completed "
                    f"(done_at={producer.done_at})")
    return None


def check_load_order(core, entry, cycle: int) -> Optional[str]:
    """Value-check contract: a speculative load that saw unresolved older
    stores must hold a sentinel (CASINO-style LSUs only)."""
    lsu = getattr(core, "lsu", None)
    if lsu is None or not hasattr(lsu, "sentinels"):
        return None
    if (entry.inst.is_load and entry.unresolved_older
            and entry.sentinel_on is None):
        return (f"load #{entry.seq} committed past {len(entry.unresolved_older)}"
                f" unresolved older store(s) without a sentinel")
    return None


DEFAULT_CYCLE_CHECKS: List[Tuple[str, Callable]] = [
    ("occupancy", check_occupancy),
    ("counters", check_counters),
    ("rename", check_rename),
    ("accounting", check_accounting),
]

DEFAULT_COMMIT_CHECKS: List[Tuple[str, Callable]] = [
    ("timestamps", check_timestamps),
    ("dataflow", check_dataflow),
    ("load_order", check_load_order),
]


class Sanitizer:
    """Runs the configured invariant checks against a live core."""

    def __init__(self,
                 cycle_checks: Optional[List[Tuple[str, Callable]]] = None,
                 commit_checks: Optional[List[Tuple[str, Callable]]] = None
                 ) -> None:
        self.cycle_checks = (list(cycle_checks) if cycle_checks is not None
                             else list(DEFAULT_CYCLE_CHECKS))
        self.commit_checks = (list(commit_checks) if commit_checks is not None
                              else list(DEFAULT_COMMIT_CHECKS))

    def check_cycle(self, core, cycle: int) -> None:
        for name, check in self.cycle_checks:
            violation = check(core, cycle)
            if violation:
                self._fail(core, cycle, name, violation)

    def check_commit(self, core, entry, cycle: int) -> None:
        for name, check in self.commit_checks:
            violation = check(core, entry, cycle)
            if violation:
                self._fail(core, cycle, name, violation)

    def _fail(self, core, cycle: int, check: str, violation: str) -> None:
        debug = core._debug_state()
        raise SanitizerError(
            f"{core.cfg.name}: sanitizer[{check}] at cycle {cycle}: "
            f"{violation} - {debug}",
            core=core.cfg.name, check=check, cycle=cycle,
            violation=violation, debug=debug)


def resolve_sanitizer(sanitize) -> Optional[Sanitizer]:
    """Map a ``run(sanitize=...)`` argument to a Sanitizer (or None).

    ``None`` defers to the ``REPRO_SANITIZE`` environment variable;
    ``True`` builds the default check set; an existing instance passes
    through; anything falsy disables checking.
    """
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "0") == "1"
    if isinstance(sanitize, Sanitizer):
        return sanitize
    return Sanitizer() if sanitize else None
