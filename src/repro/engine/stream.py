"""Rewindable dynamic instruction stream.

Wraps a pre-generated trace (list of :class:`~repro.isa.instruction.DynInst`)
and assigns each record its dynamic sequence number.  A squash (memory-order
violation) rewinds the cursor so the same records are re-fetched with the
same sequence numbers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instruction import DynInst


class InstStream:
    """Program-order instruction supply with squash/rewind support."""

    def __init__(self, trace: Sequence[DynInst]) -> None:
        self.trace: List[DynInst] = list(trace)
        for seq, inst in enumerate(self.trace):
            inst.seq = seq
        self.cursor = 0

    def __len__(self) -> int:
        return len(self.trace)

    @property
    def exhausted(self) -> bool:
        """True when every instruction has been fetched (pipeline may still
        hold in-flight work)."""
        return self.cursor >= len(self.trace)

    def peek(self) -> Optional[DynInst]:
        """The next instruction to fetch, without consuming it."""
        if self.cursor >= len(self.trace):
            return None
        return self.trace[self.cursor]

    def fetch(self) -> Optional[DynInst]:
        """Consume and return the next instruction (None at end of trace)."""
        if self.cursor >= len(self.trace):
            return None
        inst = self.trace[self.cursor]
        self.cursor += 1
        return inst

    def rewind(self, seq: int) -> None:
        """Move the cursor back so that ``seq`` is the next fetched record."""
        if seq < 0 or seq > len(self.trace):
            raise ValueError(f"rewind target {seq} out of range")
        if seq > self.cursor:
            raise ValueError(
                f"cannot rewind forward (cursor={self.cursor}, seq={seq})")
        self.cursor = seq
