"""Functional-unit pool: per-cycle issue-port accounting.

Table I gives every model 2 integer ALUs, 2 FP units and 2 AGUs; wider
configurations scale them with the pipeline width.
"""

from __future__ import annotations

from repro.common.params import CoreConfig
from repro.isa.opcodes import FU_FOR_OP, OpClass


class FuPool:
    """Tracks functional-unit availability within one cycle."""

    def __init__(self, cfg: CoreConfig) -> None:
        self.capacity = [cfg.n_alu, cfg.n_fpu, cfg.n_agu]
        self.free = list(self.capacity)
        self.store_port_free = True  # one L1D write port for retiring stores
        # Units claimed since the last reset (issue ports + store port),
        # so all_free() is one int compare in the run loop's pre-gate.
        self._taken = 0

    def reset(self) -> None:
        """Start a new cycle: all units available again."""
        if self._taken == 0:
            return  # nothing issued last cycle: already pristine
        self.free[0] = self.capacity[0]
        self.free[1] = self.capacity[1]
        self.free[2] = self.capacity[2]
        self.store_port_free = True
        self._taken = 0

    def available(self, op: OpClass) -> bool:
        """Is a unit of the right type free this cycle?"""
        return self.free[FU_FOR_OP[op]] > 0

    def all_free(self) -> bool:
        """Was the previous cycle issue-free (pool still fully stocked)?

        Cheap pre-gate for the fast-forward evaluators: a cycle that
        consumed any issue port or the store port had activity, so the
        next cycle starts from a state the evaluator need not analyse.
        """
        return self._taken == 0

    def zero_capacity(self, op: OpClass) -> bool:
        """True when ``op`` can *never* issue (no unit of its type exists).
        With a fully stocked pool this is the only way ``take`` can fail,
        which is what lets the evaluators test issueability read-only."""
        return self.capacity[FU_FOR_OP[op]] == 0

    def take(self, op: OpClass) -> bool:
        """Claim a unit for ``op``; False if none left this cycle."""
        fu = FU_FOR_OP[op]
        if self.free[fu] <= 0:
            return False
        self.free[fu] -= 1
        self._taken += 1
        return True

    def take_store_port(self) -> bool:
        """Claim the L1D write port for a retiring store."""
        if not self.store_port_free:
            return False
        self.store_port_free = False
        self._taken += 1
        return True
