"""Common machinery for every timing core model.

A core consumes a :class:`~repro.engine.stream.InstStream` through a
:class:`~repro.frontend.fetch.FetchUnit` and simulates its back end cycle by
cycle.  Subclasses implement the scheduling pipeline (dispatch / issue /
commit); this base class owns the run loop, the memory hierarchy, the
functional-unit pool, squash plumbing and the dataflow bookkeeping shared by
all models.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.params import (
    BranchPredictorConfig,
    CoreConfig,
    MemoryConfig,
)
from repro.common.stats import Stats
from repro.engine.funits import FuPool
from repro.engine.stream import InstStream
from repro.frontend.fetch import FetchUnit
from repro.isa.instruction import DynInst
from repro.memory.hierarchy import MemoryHierarchy


class SimulationError(RuntimeError):
    """Raised when a simulation deadlocks, exceeds its cycle budget or
    violates an architectural invariant.

    ``details`` carries a structured snapshot (core name, cycle, debug
    state, ...) so harness layers can log actionable diagnostics instead
    of a bare message string.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.details: Dict[str, object] = dict(details)


class InflightInst:
    """Per-core record of one in-flight dynamic instruction.

    The same :class:`DynInst` may be wrapped more than once across squashes;
    all scheduling state lives here, never on the trace record.
    """

    __slots__ = (
        "inst", "seq", "producers", "done_at", "issue_at", "committed",
        "dispatch_at", "fill_ready",
        # register renaming state
        "phys", "prev_phys", "fresh_phys", "from_siq",
        # memory state
        "unresolved_older", "forward_store", "sentinel_on", "osca_skipped",
        "cache_miss",
        # slice-core steering tag ('A' / 'B' / 'Y')
        "queue_tag",
    )

    def __init__(self, inst: DynInst,
                 producers: Sequence["InflightInst"]) -> None:
        self.inst = inst
        self.seq = inst.seq
        self.producers = list(producers)
        self.done_at: Optional[int] = None
        self.issue_at: Optional[int] = None
        self.dispatch_at: Optional[int] = None
        self.committed = False
        self.fill_ready: Optional[int] = None  # store line-fill (RFO) arrival
        self.phys: Optional[int] = None
        self.prev_phys: Optional[int] = None
        self.fresh_phys = False
        self.from_siq = False
        self.unresolved_older: Optional[list] = None
        self.forward_store: Optional["InflightInst"] = None
        self.sentinel_on: Optional["InflightInst"] = None
        self.osca_skipped = False
        self.cache_miss = False
        self.queue_tag = ""

    def ready(self, cycle: int) -> bool:
        """All source operands available by ``cycle``?"""
        for producer in self.producers:
            if producer.done_at is None or producer.done_at > cycle:
                return False
        return True

    def ready_ignoring_loads(self, cycle: int) -> bool:
        """Readiness treating pending *memory* producers as blockers too —
        used by limit models that distinguish ILP from MLP."""
        return self.ready(cycle)

    @property
    def resolved(self) -> bool:
        """For memory ops: has the address been computed (issued)?"""
        return self.issue_at is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("C" if self.committed else
                 "D" if self.done_at is not None else
                 "I" if self.issue_at is not None else "W")
        return f"<#{self.seq} {self.inst.op.name} {state}>"


class CoreModel:
    """Abstract timing core.  Subclasses implement ``_reset``, ``_step`` and
    ``pipeline_empty`` and do their own dispatch/issue/commit inside
    ``_step``."""

    kind = "base"

    def __init__(self, cfg: CoreConfig,
                 mem_cfg: Optional[MemoryConfig] = None,
                 bp_cfg: Optional[BranchPredictorConfig] = None) -> None:
        self.cfg = cfg
        self.mem_cfg = mem_cfg if mem_cfg is not None else MemoryConfig()
        self.bp_cfg = bp_cfg if bp_cfg is not None else BranchPredictorConfig()
        self.stats = Stats()
        self.cycle = 0
        #: When enabled (``record_schedule=True`` on :meth:`run`), one
        #: ``(seq, inst, issue_at, done_at, commit_at, from_siq)`` tuple is
        #: appended per committed instruction.
        self.schedule: Optional[list] = None
        # Populated by reset():
        self.hier: Optional[MemoryHierarchy] = None
        self.stream: Optional[InstStream] = None
        self.fetch: Optional[FetchUnit] = None
        self.fu: Optional[FuPool] = None
        self.last_writer: Dict[int, InflightInst] = {}
        # Optional resilience hooks, armed per-run by :meth:`run`.
        self.sanitizer = None      # repro.engine.sanitizer.Sanitizer
        self.faults = None         # repro.engine.faults.FaultInjector
        # Optional observability hooks (repro.obs), armed per-run.  All
        # three are strictly read-only: attached or not, timing is
        # bit-identical.
        self.tracer = None         # repro.obs.events.Tracer
        self.sampler = None        # repro.obs.metrics.MetricsSampler
        self.accounting = None     # repro.obs.accounting.CycleAccounting

    # -- lifecycle ---------------------------------------------------------

    def reset(self, trace: Sequence[DynInst]) -> None:
        """Prepare to simulate ``trace`` from a cold state."""
        self.stats = Stats()
        self.hier = MemoryHierarchy(self.mem_cfg, self.stats)
        self.stream = InstStream(trace)
        self.fetch = FetchUnit(self.cfg, self.stream, self.hier,
                               self.bp_cfg, self.stats)
        self.fu = FuPool(self.cfg)
        self.cycle = 0
        self.last_writer = {}
        self._last_commit_cycle = 0
        self._expected_commit_seq = 0
        self._last_squash_seq: Optional[int] = None
        self._last_squash_reason = ""
        if self.schedule is not None:
            self.schedule = []
        self._reset()

    def run(self, trace: Sequence[DynInst], max_cycles: int = 50_000_000,
            warmup: int = 0, warm_icache: bool = False,
            record_schedule: bool = False, sanitize=None, faults=None,
            deadlock_cycles: Optional[int] = None, tracer=None,
            sampler=None, profiler=None, accounting=None) -> Stats:
        """Simulate the whole trace; returns the statistics bag.

        ``warmup`` discards the counters accumulated while committing the
        first N instructions (caches, predictors and DRAM state stay warm),
        mirroring the paper's warm-up-then-measure methodology.
        ``warm_icache`` pre-installs every code line (for microbenchmarks
        whose timing should not include cold instruction fetch).
        ``record_schedule`` keeps a per-instruction (issue, complete,
        commit, dispatch) log for :mod:`repro.harness.timeline`
        rendering and :mod:`repro.obs.critpath` analysis.
        ``sanitize`` enables the microarchitectural invariant sanitizer:
        ``True``/``False`` force it, a :class:`~repro.engine.sanitizer.
        Sanitizer` instance is used as-is, and ``None`` defers to the
        ``REPRO_SANITIZE`` environment variable.  The sanitizer only reads
        simulator state, so enabling it never changes timing.
        ``faults`` optionally installs a deterministic
        :class:`~repro.engine.faults.FaultInjector` (self-test machinery).
        ``deadlock_cycles`` overrides ``cfg.deadlock_cycles``, the watchdog
        threshold on cycles between commits.
        ``tracer``/``sampler``/``profiler`` attach the observability layer
        (:mod:`repro.obs`): a structured event tracer, an interval metrics
        sampler and a host wall-clock self-profiler.  ``accounting``
        attaches a :class:`~repro.obs.accounting.CycleAccounting` observer
        that attributes every cycle to one CPI-stack component via the
        read-only ``_commit_head``/``_stall_structure`` hooks.  All four
        only read simulator state — attaching them never changes timing,
        and when left ``None`` (the default) the seed code paths run
        unchanged.
        """
        from repro.engine.sanitizer import resolve_sanitizer
        self.sanitizer = resolve_sanitizer(sanitize)
        self.faults = faults
        self.tracer = tracer
        self.sampler = sampler
        self.accounting = accounting
        watchdog = (deadlock_cycles if deadlock_cycles is not None
                    else self.cfg.deadlock_cycles)
        self.schedule = [] if record_schedule else None
        self.reset(trace)
        if profiler is not None:
            profiler.attach(self)
            profiler.begin_run()
        if warm_icache:
            for line in {inst.pc >> 6 for inst in trace}:
                self.hier.l1i.install_prefetch(line << 6, fill_at=-1)
        cycle = 0
        warm_snapshot = None
        warm_cycle = 0
        try:
            while not (self.fetch.drained and self.pipeline_empty()):
                self.cycle = cycle
                self.fu.reset()
                self._step(cycle)
                if self.faults is not None:
                    self.faults.on_cycle(self, cycle)
                if self.accounting is not None:
                    self.accounting.on_cycle(self, cycle)
                if self.sanitizer is not None:
                    self.sanitizer.check_cycle(self, cycle)
                if self.sampler is not None:
                    self.sampler.on_cycle(self, cycle)
                self.fetch.tick(cycle)
                cycle += 1
                if (warmup and warm_snapshot is None
                        and self.stats.counters.get("committed", 0) >= warmup):
                    warm_snapshot = dict(self.stats.counters)
                    warm_cycle = cycle
                    if self.accounting is not None:
                        self.accounting.on_warmup()
                if cycle - self._last_commit_cycle > watchdog:
                    raise SimulationError(
                        f"{self.cfg.name}: no commit for {watchdog} cycles at "
                        f"cycle {cycle} (deadlock?) - {self._debug_state()}",
                        core=self.cfg.name, check="deadlock_watchdog",
                        cycle=cycle, last_commit_cycle=self._last_commit_cycle,
                        committed=self.stats.counters.get("committed", 0),
                        debug=self._debug_state())
                if cycle > max_cycles:
                    raise SimulationError(
                        f"{self.cfg.name}: exceeded {max_cycles} cycles - "
                        f"{self._debug_state()}",
                        core=self.cfg.name, check="cycle_budget", cycle=cycle,
                        max_cycles=max_cycles,
                        committed=self.stats.counters.get("committed", 0),
                        debug=self._debug_state())
        finally:
            if profiler is not None:
                profiler.end_run()
        if self.sampler is not None:
            self.sampler.finish(self, cycle)
        if self.accounting is not None:
            self.accounting.finish(self, cycle)
        self.stats.add("cycles", cycle)
        if warm_snapshot is not None:
            for key, value in warm_snapshot.items():
                self.stats.counters[key] -= value
            self.stats.counters["cycles"] = cycle - warm_cycle
        return self.stats

    # -- hooks for subclasses -------------------------------------------------

    def _reset(self) -> None:
        raise NotImplementedError

    def _step(self, cycle: int) -> None:
        raise NotImplementedError

    def pipeline_empty(self) -> bool:
        raise NotImplementedError

    def _debug_state(self) -> str:  # pragma: no cover - diagnostics only
        return ""

    def _occupancy(self) -> Dict[str, tuple]:
        """``{structure: (occupancy, capacity)}`` for the sanitizer.

        Subclasses report every bounded structure they model (queues, ROB,
        LSQ, free lists); the sanitizer asserts ``0 <= occupancy <=
        capacity`` each cycle.
        """
        return {}

    def _commit_head(self) -> Optional[InflightInst]:
        """The oldest in-flight (uncommitted) instruction, or ``None`` when
        the back end is empty.

        This is the cycle-accounting attribution hook: on a cycle where
        nothing commits, :class:`~repro.obs.accounting.CycleAccounting`
        asks why *this* instruction is not committing.  Subclasses return
        the head of whatever structure holds the oldest instruction (ROB,
        SCB, first S-IQ, ...).  Strictly read-only.
        """
        return None

    def _stall_structure(self, head: InflightInst) -> str:
        """Short name of the structure currently holding ``head`` — the
        secondary ``component:structure`` detail key of the CPI stack
        (e.g. ``iq_head_blocked:siq0``).  Strictly read-only."""
        return ""

    def _issue_gate(self) -> Optional[InflightInst]:
        """The oldest *unissued* instruction gating in-order issue, or
        ``None`` for cores (OoO) whose issue stage has no head to block.

        Cycle accounting uses this to tell pure execution latency apart
        from the in-order penalty the paper targets: a cycle where the
        commit head is executing *and* nothing issued because this
        instruction's operands are unready is charged to
        ``iq_head_blocked`` (or ``load_miss`` when the blocking chain
        contains an outstanding miss), not to ``base``.  Read-only.
        """
        return None

    # -- shared helpers ---------------------------------------------------------

    def make_entry(self, inst: DynInst) -> InflightInst:
        """Wrap a dispatched instruction, wiring true register dependences
        from the program-order last-writer map."""
        producers = []
        for src in inst.srcs:
            writer = self.last_writer.get(src)
            if writer is not None:
                producers.append(writer)
        entry = InflightInst(inst, producers)
        entry.dispatch_at = self.cycle
        if inst.dst is not None:
            self.last_writer[inst.dst] = entry
        if self.faults is not None:
            self.faults.on_entry(entry)
        if self.tracer is not None:
            self.tracer.emit("dispatch", self.cycle, entry.seq,
                             op=inst.op.name,
                             producers=[p.seq for p in producers])
        return entry

    def note_commit(self, entry: InflightInst, cycle: int) -> None:
        """Common commit bookkeeping.  Asserts program-order commit — the
        architectural-correctness invariant every core must uphold."""
        if entry.seq != self._expected_commit_seq:
            raise SimulationError(
                f"{self.cfg.name}: out-of-order commit: expected seq "
                f"{self._expected_commit_seq}, got {entry.seq} at cycle "
                f"{cycle} - {self._debug_state()}",
                core=self.cfg.name, check="program_order", cycle=cycle,
                expected=self._expected_commit_seq, got=entry.seq,
                debug=self._debug_state())
        if self.sanitizer is not None:
            self.sanitizer.check_commit(self, entry, cycle)
        self._expected_commit_seq = entry.seq + 1
        entry.committed = True
        self.stats.add("committed")
        self._last_commit_cycle = cycle
        if self.schedule is not None:
            self.schedule.append((entry.seq, entry.inst, entry.issue_at,
                                  entry.done_at, cycle, entry.from_siq,
                                  entry.dispatch_at))
        if self.tracer is not None:
            self.tracer.emit("commit", cycle, entry.seq,
                             issue_at=entry.issue_at, done_at=entry.done_at,
                             from_siq=entry.from_siq)
        if self.last_writer.get(entry.inst.dst) is entry:
            # Keep the map small: a committed producer is always ready.
            del self.last_writer[entry.inst.dst]

    def resolve_branch_if_gating(self, entry: InflightInst) -> None:
        """Unblock fetch when the gating mispredicted branch gets a
        completion time."""
        if (entry.inst.is_branch and self.fetch.blocked_seq == entry.seq
                and entry.done_at is not None):
            self.fetch.resolve_branch(entry.seq, entry.done_at)

    def trace_issue(self, entry: InflightInst, cycle: int, **data) -> None:
        """Emit the wakeup / issue / execute-done events for an
        instruction that just issued (call after ``done_at`` is set).

        ``wakeup`` is stamped with the cycle the last source operand
        became available; ``execute_done`` with the (already determined)
        completion cycle — :meth:`Tracer.events` re-sorts by cycle.
        """
        tracer = self.tracer
        if tracer is None:
            return
        ready_at = 0
        for producer in entry.producers:
            if producer.done_at is not None and producer.done_at > ready_at:
                ready_at = producer.done_at
        tracer.emit("wakeup", ready_at, entry.seq, issued_at=cycle)
        tracer.emit("issue", cycle, entry.seq, op=entry.inst.op.name,
                    ready_at=ready_at, **data)
        if entry.done_at is not None:
            tracer.emit("execute_done", entry.done_at, entry.seq,
                        issued_at=cycle)

    def load_latency(self, entry: InflightInst, cycle: int) -> int:
        """Latency of a load that goes to the L1D at ``cycle``."""
        latency = self.hier.load(entry.inst.mem_addr, cycle)
        entry.cache_miss = latency > self.hier.l1d.cfg.latency
        if self.tracer is not None and entry.cache_miss:
            self.tracer.emit("cache_miss", cycle, entry.seq,
                             addr=entry.inst.mem_addr, latency=latency)
        return latency

    def start_store_fill(self, entry: InflightInst, cycle: int) -> None:
        """Begin the write-allocate fill (RFO) for a committing store, so
        the fill overlaps with whatever else is in flight; retirement later
        waits for ``entry.fill_ready``."""
        latency = self.hier.store(entry.inst.mem_addr, cycle)
        hit = self.hier.l1d.cfg.latency
        entry.fill_ready = cycle + max(0, latency - hit)

    def store_fill_arrived(self, entry: InflightInst, cycle: int) -> bool:
        return entry.fill_ready is not None and cycle >= entry.fill_ready

    def squash_from(self, from_seq: int, cycle: int,
                    reason: str = "mem_order") -> None:
        """Rewind fetch to ``from_seq``; subclasses clear their structures
        and must drop ``last_writer`` entries for squashed instructions
        via :meth:`clean_last_writers`.

        ``reason`` records *why* the flush happened (``mem_order`` for a
        memory-order violation — the only cause in the current models —
        anything else for injected faults or future squash sources) so
        cycle accounting can attribute the recovery shadow.
        """
        self.stats.add("squashes")
        self._last_squash_seq = from_seq
        self._last_squash_reason = reason
        if self.tracer is not None:
            self.tracer.emit("squash", cycle, from_seq, from_seq=from_seq)
        self.fetch.squash(from_seq, cycle + self.cfg.mispredict_penalty)
        self.clean_last_writers(from_seq)

    def clean_last_writers(self, from_seq: int) -> None:
        """Drop last-writer links produced by squashed instructions.

        After a squash the architectural value of those registers is the one
        produced by the newest *surviving* writer; the map conservatively
        falls back to "ready" (squashed producers never gate anyone)."""
        stale = [reg for reg, entry in self.last_writer.items()
                 if entry.seq >= from_seq]
        for reg in stale:
            del self.last_writer[reg]
