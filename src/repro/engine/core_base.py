"""Common machinery for every timing core model.

A core consumes a :class:`~repro.engine.stream.InstStream` through a
:class:`~repro.frontend.fetch.FetchUnit` and simulates its back end cycle by
cycle.  Subclasses implement the scheduling pipeline (dispatch / issue /
commit); this base class owns the run loop, the memory hierarchy, the
functional-unit pool, squash plumbing and the dataflow bookkeeping shared by
all models.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import (
    BranchPredictorConfig,
    CoreConfig,
    MemoryConfig,
)
from repro.common.stats import Stats
from repro.engine.funits import FuPool
from repro.engine.stream import InstStream
from repro.frontend.fetch import FetchUnit
from repro.isa.instruction import DynInst
from repro.memory.hierarchy import MemoryHierarchy

#: Sentinel "no event scheduled" cycle: far enough out that the watchdog
#: or cycle budget always clamps a fast-forward jump first.
_FAR_FUTURE = 1 << 62


def _resolve_fast_forward(fast_forward) -> bool:
    """Map a ``run(fast_forward=...)`` argument to a bool.  ``None``
    defers to the ``REPRO_NO_SKIP`` environment variable."""
    if fast_forward is None:
        return os.environ.get("REPRO_NO_SKIP", "0") != "1"
    return bool(fast_forward)


class SimulationError(RuntimeError):
    """Raised when a simulation deadlocks, exceeds its cycle budget or
    violates an architectural invariant.

    ``details`` carries a structured snapshot (core name, cycle, debug
    state, ...) so harness layers can log actionable diagnostics instead
    of a bare message string.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.details: Dict[str, object] = dict(details)


class InflightInst:
    """Per-core record of one in-flight dynamic instruction.

    The same :class:`DynInst` may be wrapped more than once across squashes;
    all scheduling state lives here, never on the trace record.
    """

    __slots__ = (
        "inst", "seq", "producers", "done_at", "issue_at", "committed",
        "dispatch_at", "fill_ready",
        # wakeup-driven readiness (maintained by CoreModel's calendar)
        "n_pending", "waiters",
        # register renaming state
        "phys", "prev_phys", "fresh_phys", "from_siq",
        # memory state
        "unresolved_older", "forward_store", "sentinel_on", "osca_skipped",
        "cache_miss",
        # slice-core steering tag ('A' / 'B' / 'Y')
        "queue_tag",
    )

    def __init__(self, inst: DynInst,
                 producers: Sequence["InflightInst"]) -> None:
        self.inst = inst
        self.seq = inst.seq
        self.producers = list(producers)
        # Conservative count of producers not yet complete; decremented by
        # the owning core's wakeup calendar.  Entries built outside
        # CoreModel.make_entry keep the conservative count and fall back to
        # the exact done_at poll in ready().
        self.n_pending = len(producers)
        self.waiters: List["InflightInst"] = []
        self.done_at: Optional[int] = None
        self.issue_at: Optional[int] = None
        self.dispatch_at: Optional[int] = None
        self.committed = False
        self.fill_ready: Optional[int] = None  # store line-fill (RFO) arrival
        self.phys: Optional[int] = None
        self.prev_phys: Optional[int] = None
        self.fresh_phys = False
        self.from_siq = False
        self.unresolved_older: Optional[list] = None
        self.forward_store: Optional["InflightInst"] = None
        self.sentinel_on: Optional["InflightInst"] = None
        self.osca_skipped = False
        self.cache_miss = False
        self.queue_tag = ""

    def ready(self, cycle: int) -> bool:
        """All source operands available by ``cycle``?

        Fast path: the wakeup calendar decrements ``n_pending`` as each
        producer's completion cycle is reached, so the common case is one
        integer compare.  The counter is conservative (it only reaches
        zero once every registered producer has genuinely completed), so
        a nonzero count falls back to the exact ``done_at`` poll — which
        keeps direct construction and fault-mutated producers correct.
        """
        if self.n_pending == 0:
            return True
        for producer in self.producers:
            if producer.done_at is None or producer.done_at > cycle:
                return False
        return True

    def ready_ignoring_loads(self, cycle: int) -> bool:
        """Readiness treating pending *memory* producers as blockers too —
        used by limit models that distinguish ILP from MLP."""
        return self.ready(cycle)

    @property
    def resolved(self) -> bool:
        """For memory ops: has the address been computed (issued)?"""
        return self.issue_at is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("C" if self.committed else
                 "D" if self.done_at is not None else
                 "I" if self.issue_at is not None else "W")
        return f"<#{self.seq} {self.inst.op.name} {state}>"


class CoreModel:
    """Abstract timing core.  Subclasses implement ``_reset``, ``_step`` and
    ``pipeline_empty`` and do their own dispatch/issue/commit inside
    ``_step``."""

    kind = "base"

    def __init__(self, cfg: CoreConfig,
                 mem_cfg: Optional[MemoryConfig] = None,
                 bp_cfg: Optional[BranchPredictorConfig] = None) -> None:
        self.cfg = cfg
        self.mem_cfg = mem_cfg if mem_cfg is not None else MemoryConfig()
        self.bp_cfg = bp_cfg if bp_cfg is not None else BranchPredictorConfig()
        self.stats = Stats()
        self.cycle = 0
        #: When enabled (``record_schedule=True`` on :meth:`run`), one
        #: ``(seq, inst, issue_at, done_at, commit_at, from_siq)`` tuple is
        #: appended per committed instruction.
        self.schedule: Optional[list] = None
        # Populated by reset():
        self.hier: Optional[MemoryHierarchy] = None
        self.stream: Optional[InstStream] = None
        self.fetch: Optional[FetchUnit] = None
        self.fu: Optional[FuPool] = None
        self.last_writer: Dict[int, InflightInst] = {}
        # Optional resilience hooks, armed per-run by :meth:`run`.
        self.sanitizer = None      # repro.engine.sanitizer.Sanitizer
        self.faults = None         # repro.engine.faults.FaultInjector
        # Optional observability hooks (repro.obs), armed per-run.  All
        # three are strictly read-only: attached or not, timing is
        # bit-identical.
        self.tracer = None         # repro.obs.events.Tracer
        self.sampler = None        # repro.obs.metrics.MetricsSampler
        self.accounting = None     # repro.obs.accounting.CycleAccounting
        #: Tier that executed the most recent :meth:`run` ("vector"/"pure").
        self.engine_tier_used = "pure"

    # -- lifecycle ---------------------------------------------------------

    def reset(self, trace: Sequence[DynInst]) -> None:
        """Prepare to simulate ``trace`` from a cold state."""
        self.stats = Stats()
        self.hier = MemoryHierarchy(self.mem_cfg, self.stats)
        self.stream = InstStream(trace)
        self.fetch = FetchUnit(self.cfg, self.stream, self.hier,
                               self.bp_cfg, self.stats)
        self.fu = FuPool(self.cfg)
        self.cycle = 0
        self.last_writer = {}
        self._last_commit_cycle = 0
        self._expected_commit_seq = 0
        self._last_squash_seq: Optional[int] = None
        self._last_squash_reason = ""
        # Wakeup calendar: completion cycle -> producers finishing then.
        # Fed by _schedule_wakeup() from every core's execute stage; its
        # minimum key doubles as the "next in-flight completion" event for
        # the fast-forward evaluators.
        self._wakeup_cal: Dict[int, List[InflightInst]] = {}
        # Integer mirror of stats.counters["committed"], so the hot loop's
        # warmup check avoids a dict lookup per cycle.
        self._committed = 0
        # Fast-forward telemetry (plain attributes, not Stats counters:
        # counters must stay bit-identical with skipping on or off).
        self.ff_spans = 0
        self.ff_skipped_cycles = 0
        if self.schedule is not None:
            self.schedule = []
        self._reset()

    def run(self, trace: Sequence[DynInst], max_cycles: int = 50_000_000,
            warmup: int = 0, warm_icache: bool = False,
            record_schedule: bool = False, sanitize=None, faults=None,
            deadlock_cycles: Optional[int] = None, tracer=None,
            sampler=None, profiler=None, accounting=None,
            fast_forward=None, engine_tier: Optional[str] = None) -> Stats:
        """Simulate the whole trace; returns the statistics bag.

        ``warmup`` discards the counters accumulated while committing the
        first N instructions (caches, predictors and DRAM state stay warm),
        mirroring the paper's warm-up-then-measure methodology.
        ``warm_icache`` pre-installs every code line (for microbenchmarks
        whose timing should not include cold instruction fetch).
        ``record_schedule`` keeps a per-instruction (issue, complete,
        commit, dispatch) log for :mod:`repro.harness.timeline`
        rendering and :mod:`repro.obs.critpath` analysis.
        ``sanitize`` enables the microarchitectural invariant sanitizer:
        ``True``/``False`` force it, a :class:`~repro.engine.sanitizer.
        Sanitizer` instance is used as-is, and ``None`` defers to the
        ``REPRO_SANITIZE`` environment variable.  The sanitizer only reads
        simulator state, so enabling it never changes timing.
        ``faults`` optionally installs a deterministic
        :class:`~repro.engine.faults.FaultInjector` (self-test machinery).
        ``deadlock_cycles`` overrides ``cfg.deadlock_cycles``, the watchdog
        threshold on cycles between commits.
        ``tracer``/``sampler``/``profiler`` attach the observability layer
        (:mod:`repro.obs`): a structured event tracer, an interval metrics
        sampler and a host wall-clock self-profiler.  ``accounting``
        attaches a :class:`~repro.obs.accounting.CycleAccounting` observer
        that attributes every cycle to one CPI-stack component via the
        read-only ``_commit_head``/``_stall_structure`` hooks.  All four
        only read simulator state — attaching them never changes timing,
        and when left ``None`` (the default) the seed code paths run
        unchanged.
        ``fast_forward`` controls event-driven quiescence skipping: when
        the core's read-only ``_next_event_cycle`` hook proves every cycle
        up to the next event is a no-op, the loop jumps straight there,
        accruing the per-cycle stall counters for the span.  Timing and
        every counter are bit-identical either way.  ``None`` defers to
        the ``REPRO_NO_SKIP`` environment variable; skipping is disabled
        automatically when faults, the sanitizer or a metrics sampler
        (which must see every cycle) are attached.
        ``engine_tier`` selects the execution tier: ``None`` (default)
        auto-selects the kernelized vector tier when this core type has a
        registered kernel, no attached observer forces the fallback and
        ``REPRO_PURE_PY=1`` is not set; ``"pure"`` forces the interpreted
        loop; ``"vector"`` demands the kernel and raises when it cannot
        run (see :mod:`repro.engine.vectortier`).  Both tiers are
        bit-identical; ``self.engine_tier_used`` records the tier that
        actually executed.
        """
        from repro.engine.sanitizer import resolve_sanitizer
        self.sanitizer = resolve_sanitizer(sanitize)
        self.faults = faults
        self.tracer = tracer
        self.sampler = sampler
        self.accounting = accounting
        watchdog = (deadlock_cycles if deadlock_cycles is not None
                    else self.cfg.deadlock_cycles)
        self.schedule = [] if record_schedule else None
        # Vector tier: a kernelized twin of the loop below, selected only
        # when it is provably equivalent (exact core type, no observers).
        # The kernel consumes the trace's SoA columns; object records back
        # the entries for observers and post-mortem inspection.
        from repro.engine.soatrace import TraceArrays
        from repro.engine.vectortier import arrays_for, select_kernel
        observers_attached = (faults is not None or self.sanitizer is not None
                              or sampler is not None or tracer is not None
                              or accounting is not None
                              or profiler is not None)
        kernel = select_kernel(self, engine_tier, observers_attached)
        self.engine_tier_used = "vector" if kernel is not None else "pure"
        arrays = None
        if isinstance(trace, TraceArrays):
            arrays = trace
            trace = arrays.materialize()
        elif kernel is not None:
            arrays = arrays_for(trace)
        self.reset(trace)
        if profiler is not None:
            profiler.attach(self)
            profiler.begin_run()
        if warm_icache:
            for line in {inst.line for inst in trace}:
                self.hier.l1i.install_prefetch(line << 6, fill_at=-1)
        cycle = 0
        warm_snapshot = None
        warm_cycle = 0
        # Quiescence skipping is provably bit-identical only for the pure
        # timing path plus the observers that tolerate (tracer, profiler)
        # or handle (accounting, via on_idle_span) idle spans.  Faults
        # mutate state on arbitrary cycles and sanitizer/sampler assert or
        # sample per cycle, so any of them pins the loop to single steps.
        skip_ok = (_resolve_fast_forward(fast_forward)
                   and faults is None and self.sanitizer is None
                   and sampler is None)
        if kernel is not None:
            cycle, warm_snapshot, warm_cycle = kernel(
                self, arrays, max_cycles, watchdog, warmup, skip_ok)
            self.stats.add("cycles", cycle)
            if warm_snapshot is not None:
                for key, value in warm_snapshot.items():
                    self.stats.counters[key] -= value
                self.stats.counters["cycles"] = cycle - warm_cycle
            return self.stats
        counters = self.stats.counters
        fu = self.fu
        fetch_tick = self.fetch.tick
        acct = self.accounting
        slow_observers = (self.faults is not None or acct is not None
                          or self.sanitizer is not None
                          or self.sampler is not None)
        wakeup_cal = self._wakeup_cal
        fire_wakeups = self._fire_wakeups
        next_event_cycle = self._next_event_cycle
        try:
            while not (self.fetch.drained and self.pipeline_empty()):
                if skip_ok:
                    hint = next_event_cycle(cycle)
                    if hint is not None:
                        target, rates = hint
                        wd_fire = self._last_commit_cycle + watchdog + 1
                        mc_fire = max_cycles + 1
                        stop = min(target, wd_fire, mc_fire)
                        if stop > cycle:
                            span = stop - cycle
                            for key, rate in rates.items():
                                counters[key] += float(rate * span)
                            if acct is not None:
                                acct.on_idle_span(self, cycle, stop - 1)
                            self.ff_spans += 1
                            self.ff_skipped_cycles += span
                            self._drain_wakeups(stop)
                            cycle = stop
                            if stop == wd_fire:
                                self.cycle = stop - 1
                                raise SimulationError(
                                    f"{self.cfg.name}: no commit for "
                                    f"{watchdog} cycles at cycle {cycle} "
                                    f"(deadlock?) - {self._debug_state()}",
                                    core=self.cfg.name,
                                    check="deadlock_watchdog", cycle=cycle,
                                    last_commit_cycle=self._last_commit_cycle,
                                    committed=self._committed,
                                    debug=self._debug_state())
                            if stop == mc_fire:
                                self.cycle = stop - 1
                                raise SimulationError(
                                    f"{self.cfg.name}: exceeded {max_cycles} "
                                    f"cycles - {self._debug_state()}",
                                    core=self.cfg.name, check="cycle_budget",
                                    cycle=cycle, max_cycles=max_cycles,
                                    committed=self._committed,
                                    debug=self._debug_state())
                self.cycle = cycle
                if wakeup_cal:
                    bucket = wakeup_cal.pop(cycle, None)
                    if bucket is not None:
                        fire_wakeups(bucket, cycle, wakeup_cal)
                fu.reset()
                self._step(cycle)
                if slow_observers:
                    if self.faults is not None:
                        self.faults.on_cycle(self, cycle)
                    if acct is not None:
                        acct.on_cycle(self, cycle)
                    if self.sanitizer is not None:
                        self.sanitizer.check_cycle(self, cycle)
                    if self.sampler is not None:
                        self.sampler.on_cycle(self, cycle)
                fetch_tick(cycle)
                cycle += 1
                if (warmup and warm_snapshot is None
                        and self._committed >= warmup):
                    warm_snapshot = dict(counters)
                    warm_cycle = cycle
                    if acct is not None:
                        acct.on_warmup()
                if cycle - self._last_commit_cycle > watchdog:
                    raise SimulationError(
                        f"{self.cfg.name}: no commit for {watchdog} cycles at "
                        f"cycle {cycle} (deadlock?) - {self._debug_state()}",
                        core=self.cfg.name, check="deadlock_watchdog",
                        cycle=cycle, last_commit_cycle=self._last_commit_cycle,
                        committed=self._committed,
                        debug=self._debug_state())
                if cycle > max_cycles:
                    raise SimulationError(
                        f"{self.cfg.name}: exceeded {max_cycles} cycles - "
                        f"{self._debug_state()}",
                        core=self.cfg.name, check="cycle_budget", cycle=cycle,
                        max_cycles=max_cycles,
                        committed=self._committed,
                        debug=self._debug_state())
        finally:
            if profiler is not None:
                profiler.end_run()
        if self.sampler is not None:
            self.sampler.finish(self, cycle)
        if self.accounting is not None:
            self.accounting.finish(self, cycle)
        self.stats.add("cycles", cycle)
        if warm_snapshot is not None:
            for key, value in warm_snapshot.items():
                self.stats.counters[key] -= value
            self.stats.counters["cycles"] = cycle - warm_cycle
        return self.stats

    # -- hooks for subclasses -------------------------------------------------

    def _reset(self) -> None:
        raise NotImplementedError

    def _step(self, cycle: int) -> None:
        raise NotImplementedError

    def pipeline_empty(self) -> bool:
        raise NotImplementedError

    def _debug_state(self) -> str:  # pragma: no cover - diagnostics only
        return ""

    def _occupancy(self) -> Dict[str, tuple]:
        """``{structure: (occupancy, capacity)}`` for the sanitizer.

        Subclasses report every bounded structure they model (queues, ROB,
        LSQ, free lists); the sanitizer asserts ``0 <= occupancy <=
        capacity`` each cycle.
        """
        return {}

    def _commit_head(self) -> Optional[InflightInst]:
        """The oldest in-flight (uncommitted) instruction, or ``None`` when
        the back end is empty.

        This is the cycle-accounting attribution hook: on a cycle where
        nothing commits, :class:`~repro.obs.accounting.CycleAccounting`
        asks why *this* instruction is not committing.  Subclasses return
        the head of whatever structure holds the oldest instruction (ROB,
        SCB, first S-IQ, ...).  Strictly read-only.
        """
        return None

    def _stall_structure(self, head: InflightInst) -> str:
        """Short name of the structure currently holding ``head`` — the
        secondary ``component:structure`` detail key of the CPI stack
        (e.g. ``iq_head_blocked:siq0``).  Strictly read-only."""
        return ""

    def _issue_gate(self) -> Optional[InflightInst]:
        """The oldest *unissued* instruction gating in-order issue, or
        ``None`` for cores (OoO) whose issue stage has no head to block.

        Cycle accounting uses this to tell pure execution latency apart
        from the in-order penalty the paper targets: a cycle where the
        commit head is executing *and* nothing issued because this
        instruction's operands are unready is charged to
        ``iq_head_blocked`` (or ``load_miss`` when the blocking chain
        contains an outstanding miss), not to ``base``.  Read-only.
        """
        return None

    # -- event-driven fast forward ---------------------------------------------

    def _next_event_cycle(self, cycle: int):
        """Fast-forward hook: prove the current state quiescent, or don't.

        Called at the top of the run loop (before this cycle's pool reset
        and ``_step``) and **strictly read-only**.  Returns ``None`` when
        any state change is (or may be) possible at ``cycle``; otherwise a
        ``(target, rates)`` pair where ``target > cycle`` is the earliest
        cycle at which the state can change and ``rates`` maps counter
        names to their exact per-cycle increment over the quiescent span
        ``cycle .. target-1``.  The base implementation never skips;
        subclasses combine the shared helpers below with their own
        structural-stall analysis.
        """
        return None

    def _finish_hint(self, cand: List[int], rates: Dict[str, int]):
        """Fold candidate events and the wakeup-calendar minimum into the
        ``(target, rates)`` hint.  The calendar covers every in-flight
        completion, so any readiness change is bounded by its minimum."""
        target = min(cand) if cand else _FAR_FUTURE
        cal = self._wakeup_cal
        if cal:
            first = min(cal)
            if first < target:
                target = first
        return target, rates

    def _fetch_quiescent(self, cycle: int, cand: List[int]) -> bool:
        """True when ``fetch.tick(cycle)`` is provably a no-op.

        Appends the icache-refill unblock cycle as an event candidate —
        both because fetch resumes then and because cycle accounting's
        frontend detail flips from ``refill`` to ``decode`` at that exact
        cycle.  A fetch blocked on an unresolved branch unblocks only via
        an issue (activity the other evaluator clauses bound), so it needs
        no candidate.
        """
        fetch = self.fetch
        if fetch.blocked_seq is not None:
            return True
        if fetch.stalled_until > cycle:
            cand.append(fetch.stalled_until)
            return True
        if fetch.stream.peek() is None:
            return True
        return len(fetch.queue) >= fetch.capacity

    def _dispatch_quiescent(self, cycle: int, cand: List[int],
                            space: int) -> bool:
        """True when a plain pop-into-queue dispatch stage (InO, SpecInO,
        CASINO) provably dispatches nothing at ``cycle``; appends the
        decode-ready cycle of the fetch-queue head as an event."""
        queue = self.fetch.queue
        if not queue:
            return True
        ready_at = queue[0].ready_at
        if ready_at > cycle:
            cand.append(ready_at)
            return True
        return space <= 0

    def _schedule_wakeup(self, entry: InflightInst) -> None:
        """Register a just-executed instruction's completion on the wakeup
        calendar.  Call from the execute stage once ``done_at`` is set."""
        done_at = entry.done_at
        if done_at is None:
            return
        if done_at <= self.cycle:
            waiters = entry.waiters
            if waiters:
                for waiter in waiters:
                    waiter.n_pending -= 1
                waiters.clear()
            return
        bucket = self._wakeup_cal.get(done_at)
        if bucket is None:
            self._wakeup_cal[done_at] = [entry]
        else:
            bucket.append(entry)

    @staticmethod
    def _fire_wakeups(producers: List[InflightInst], cycle: int,
                      cal: Dict[int, List[InflightInst]]) -> None:
        """Deliver one calendar bucket: decrement each waiter's pending
        count.  A producer whose ``done_at`` moved since scheduling (fault
        injection) is re-queued or dropped instead — ``n_pending`` only
        ever reaches zero once every producer has genuinely completed."""
        for producer in producers:
            done_at = producer.done_at
            if done_at is None:
                continue
            if done_at > cycle:
                cal.setdefault(done_at, []).append(producer)
                continue
            waiters = producer.waiters
            if waiters:
                for waiter in waiters:
                    waiter.n_pending -= 1
                waiters.clear()

    def _process_wakeups(self, cycle: int) -> None:
        producers = self._wakeup_cal.pop(cycle, None)
        if producers is not None:
            self._fire_wakeups(producers, cycle, self._wakeup_cal)

    def _drain_wakeups(self, stop: int) -> None:
        """Deliver every calendar bucket at or before ``stop`` (the target
        of a fast-forward jump), keeping the all-keys-in-the-future
        invariant that lets ``min(calendar)`` bound the next event."""
        cal = self._wakeup_cal
        while True:
            due = [key for key in cal if key <= stop]
            if not due:
                return
            for key in due:
                self._fire_wakeups(cal.pop(key), key, cal)

    # -- shared helpers ---------------------------------------------------------

    def make_entry(self, inst: DynInst) -> InflightInst:
        """Wrap a dispatched instruction, wiring true register dependences
        from the program-order last-writer map."""
        producers = []
        for src in inst.srcs:
            writer = self.last_writer.get(src)
            if writer is not None:
                producers.append(writer)
        entry = InflightInst(inst, producers)
        entry.dispatch_at = self.cycle
        # Exact pending count + wakeup registration: producers already
        # complete by now never gate this entry; the rest decrement
        # n_pending when their calendar bucket fires.
        if producers:
            cycle = self.cycle
            pending = 0
            for producer in producers:
                done_at = producer.done_at
                if done_at is None or done_at > cycle:
                    producer.waiters.append(entry)
                    pending += 1
            entry.n_pending = pending
        if inst.dst is not None:
            self.last_writer[inst.dst] = entry
        if self.faults is not None:
            self.faults.on_entry(entry)
        if self.tracer is not None:
            self.tracer.emit("dispatch", self.cycle, entry.seq,
                             op=inst.op_name,
                             producers=[p.seq for p in producers])
        return entry

    def note_commit(self, entry: InflightInst, cycle: int) -> None:
        """Common commit bookkeeping.  Asserts program-order commit — the
        architectural-correctness invariant every core must uphold."""
        if entry.seq != self._expected_commit_seq:
            raise SimulationError(
                f"{self.cfg.name}: out-of-order commit: expected seq "
                f"{self._expected_commit_seq}, got {entry.seq} at cycle "
                f"{cycle} - {self._debug_state()}",
                core=self.cfg.name, check="program_order", cycle=cycle,
                expected=self._expected_commit_seq, got=entry.seq,
                debug=self._debug_state())
        if self.sanitizer is not None:
            self.sanitizer.check_commit(self, entry, cycle)
        self._expected_commit_seq = entry.seq + 1
        entry.committed = True
        self.stats.counters["committed"] += 1.0
        self._committed += 1
        self._last_commit_cycle = cycle
        if self.schedule is not None:
            self.schedule.append((entry.seq, entry.inst, entry.issue_at,
                                  entry.done_at, cycle, entry.from_siq,
                                  entry.dispatch_at))
        if self.tracer is not None:
            self.tracer.emit("commit", cycle, entry.seq,
                             issue_at=entry.issue_at, done_at=entry.done_at,
                             from_siq=entry.from_siq)
        dst = entry.inst.dst
        if dst is not None and self.last_writer.get(dst) is entry:
            # Keep the map small: a committed producer is always ready.
            del self.last_writer[dst]

    def resolve_branch_if_gating(self, entry: InflightInst) -> None:
        """Unblock fetch when the gating mispredicted branch gets a
        completion time."""
        if (entry.inst.is_branch and self.fetch.blocked_seq == entry.seq
                and entry.done_at is not None):
            self.fetch.resolve_branch(entry.seq, entry.done_at)

    def trace_issue(self, entry: InflightInst, cycle: int, **data) -> None:
        """Emit the wakeup / issue / execute-done events for an
        instruction that just issued (call after ``done_at`` is set).

        ``wakeup`` is stamped with the cycle the last source operand
        became available; ``execute_done`` with the (already determined)
        completion cycle — :meth:`Tracer.events` re-sorts by cycle.
        """
        tracer = self.tracer
        if tracer is None:
            return
        ready_at = 0
        for producer in entry.producers:
            if producer.done_at is not None and producer.done_at > ready_at:
                ready_at = producer.done_at
        tracer.emit("wakeup", ready_at, entry.seq, issued_at=cycle)
        tracer.emit("issue", cycle, entry.seq, op=entry.inst.op_name,
                    ready_at=ready_at, **data)
        if entry.done_at is not None:
            tracer.emit("execute_done", entry.done_at, entry.seq,
                        issued_at=cycle)

    def load_latency(self, entry: InflightInst, cycle: int) -> int:
        """Latency of a load that goes to the L1D at ``cycle``."""
        latency = self.hier.load(entry.inst.mem_addr, cycle)
        entry.cache_miss = latency > self.hier.l1d.cfg.latency
        if self.tracer is not None and entry.cache_miss:
            self.tracer.emit("cache_miss", cycle, entry.seq,
                             addr=entry.inst.mem_addr, latency=latency)
        return latency

    def start_store_fill(self, entry: InflightInst, cycle: int) -> None:
        """Begin the write-allocate fill (RFO) for a committing store, so
        the fill overlaps with whatever else is in flight; retirement later
        waits for ``entry.fill_ready``."""
        latency = self.hier.store(entry.inst.mem_addr, cycle)
        hit = self.hier.l1d.cfg.latency
        entry.fill_ready = cycle + max(0, latency - hit)

    def store_fill_arrived(self, entry: InflightInst, cycle: int) -> bool:
        return entry.fill_ready is not None and cycle >= entry.fill_ready

    def squash_from(self, from_seq: int, cycle: int,
                    reason: str = "mem_order") -> None:
        """Rewind fetch to ``from_seq``; subclasses clear their structures
        and must drop ``last_writer`` entries for squashed instructions
        via :meth:`clean_last_writers`.

        ``reason`` records *why* the flush happened (``mem_order`` for a
        memory-order violation — the only cause in the current models —
        anything else for injected faults or future squash sources) so
        cycle accounting can attribute the recovery shadow.
        """
        self.stats.add("squashes")
        self._last_squash_seq = from_seq
        self._last_squash_reason = reason
        if self.tracer is not None:
            self.tracer.emit("squash", cycle, from_seq, from_seq=from_seq)
        self.fetch.squash(from_seq, cycle + self.cfg.mispredict_penalty)
        self.clean_last_writers(from_seq)

    def clean_last_writers(self, from_seq: int) -> None:
        """Drop last-writer links produced by squashed instructions.

        After a squash the architectural value of those registers is the one
        produced by the newest *surviving* writer; the map conservatively
        falls back to "ready" (squashed producers never gate anyone)."""
        stale = [reg for reg, entry in self.last_writer.items()
                 if entry.seq >= from_seq]
        for reg in stale:
            del self.last_writer[reg]
