"""Figure 11 — scaling to wider superscalar designs.

Performance and energy efficiency (performance/energy, PER) of InO, CASINO
and OoO at 2-, 3- and 4-way issue widths, everything normalised to the
2-way InO.  Structures scale per the paper: ROB/IQ/LSQ/PRF double at 3-way
and quadruple at 4-way; CASINO inserts one (3-way) or two (4-way) 8-entry
intermediate S-IQs and disables conditional renaming.

Paper anchors: at 2-way, CASINO's PER is +25% vs InO and +42% vs OoO; at
4-way CASINO reaches ~2x the PER of OoO with performance within ~13 points.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.params import (
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.common.stats import partial_geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table

WIDTHS = (2, 3, 4)


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None
        ) -> Dict[Tuple[str, int], Dict[str, float]]:
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    raw: Dict[Tuple[str, int], Dict[str, float]] = {}
    for width in WIDTHS:
        for make in (make_ino_config, make_casino_config, make_ooo_config):
            cfg = make(width)
            ipcs, energies = [], 0.0
            for profile in profiles:
                res = runner.run(cfg, profile)
                ipcs.append(res.ipc)
                energies += res.energy.total_j
            raw[(cfg.kind, width)] = {"perf": partial_geomean(ipcs)[0],
                                      "energy": energies}
    base = raw[("ino", 2)]
    out: Dict[Tuple[str, int], Dict[str, float]] = {}
    for key, row in raw.items():
        perf = row["perf"] / base["perf"]
        energy = row["energy"] / base["energy"]
        out[key] = {"perf": perf, "energy": energy, "per": perf / energy}
    return out


def main() -> None:
    results = run()
    rows = [[kind, width, r["perf"], r["energy"], r["per"]]
            for (kind, width), r in results.items()]
    print("Figure 11: width scaling (all relative to 2-way InO)")
    print(format_table(["core", "width", "perf", "energy", "perf/energy"],
                       rows))


if __name__ == "__main__":
    main()
