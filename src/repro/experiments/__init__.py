"""Experiment drivers — one module per figure of the paper's evaluation.

Every module exposes ``run(runner=None, profiles=None)`` returning a plain
dict of results, and ``main()`` that prints the same rows/series the paper
reports.  ``python -m repro.experiments.fig6_ipc`` regenerates Figure 6, etc.
"""

from repro.experiments.common import QUICK_APPS, make_runner, quick_profiles

__all__ = ["QUICK_APPS", "make_runner", "quick_profiles"]
