"""Figure 7 — effectiveness of conditional register renaming.

(a) Performance and physical-register allocations per cycle of CASINO with
conventional (ConV) vs conditional (ConD) renaming at [32 INT, 14 FP]
registers, plus ConV at [48, 24].

(b) Issue-rate breakdown per cycle: speculative memory / speculative
non-memory / IQ memory / IQ non-memory.

Paper anchors: ConD allocates ~27% fewer registers per cycle, yielding ~10%
higher issue rate and ~6% performance over ConV[32,14]; ConV[48,24] roughly
matches ConD[32,14]; ~65% of dynamic instructions issue from the S-IQ.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.common.params import (
    RENAME_CONDITIONAL,
    RENAME_CONVENTIONAL,
    make_casino_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table


def variants():
    base = make_casino_config()
    return [
        dataclasses.replace(base, name="ConV[32,14]",
                            rename_scheme=RENAME_CONVENTIONAL),
        dataclasses.replace(base, name="ConD[32,14]",
                            rename_scheme=RENAME_CONDITIONAL),
        dataclasses.replace(base, name="ConV[48,24]",
                            rename_scheme=RENAME_CONVENTIONAL,
                            prf_int=48, prf_fp=24),
    ]


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, Dict[str, float]]:
    """Returns per-variant: speedup (vs ConV[32,14]), allocations/cycle and
    the issue-rate breakdown."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    cfgs = variants()
    out: Dict[str, Dict[str, float]] = {}
    base_ipc = None
    for cfg in cfgs:
        per_app = []
        allocs = cycles = 0.0
        rates = {"spec_mem": 0.0, "spec_nonmem": 0.0,
                 "iq_mem": 0.0, "iq_nonmem": 0.0}
        for profile in profiles:
            res = runner.run(cfg, profile)
            per_app.append(res.ipc)
            allocs += res.stats.get("reg_allocs")
            cycles += res.stats.cycles
            rates["spec_mem"] += res.stats.get("issued_spec_mem")
            rates["spec_nonmem"] += res.stats.get("issued_spec_nonmem")
            rates["iq_mem"] += res.stats.get("issued_iq_mem")
            rates["iq_nonmem"] += res.stats.get("issued_iq_nonmem")
        perf = geomean(per_app)
        if base_ipc is None:
            base_ipc = perf
        out[cfg.name] = {
            "speedup": perf / base_ipc,
            "allocs_per_cycle": allocs / cycles,
            **{k: v / cycles for k, v in rates.items()},
        }
    return out


def main() -> None:
    results = run()
    rows = [[name, r["speedup"], r["allocs_per_cycle"],
             r["spec_mem"] + r["spec_nonmem"], r["iq_mem"] + r["iq_nonmem"]]
            for name, r in results.items()]
    print("Figure 7: conditional renaming (normalised to ConV[32,14])")
    print(format_table(
        ["variant", "speedup", "allocs/cyc", "spec issue/cyc", "iq issue/cyc"],
        rows))


if __name__ == "__main__":
    main()
