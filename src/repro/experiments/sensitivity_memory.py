"""Memory-system sensitivity (extension beyond the paper's figures).

The paper's core argument is that CASINO's win comes from exposing MLP
behind long-latency misses — but MLP is *capped by the instruction window*
(32-entry ROB, 8 MSHRs).  The expected shape is therefore:

* **DRAM latency**: with faster memory, misses clear inside the window and
  scheduling flexibility pays off most; as memory slows, every core
  converges toward the serial-miss bound (Amdahl on the un-overlappable
  fraction), so CASINO's and OoO's speedups over InO *shrink together*
  while remaining above 1.  CASINO tracks OoO across the whole sweep —
  evidence that the cascaded windows capture the same window-limited MLP.
* **Prefetching**: the L2 prefetcher removes latency for *everyone*; with
  it disabled, more of the schedule is at the window-capped memory bound.

Run:  python -m repro.experiments.sensitivity_memory
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.common.params import (
    MemoryConfig,
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles
from repro.harness.runner import Runner
from repro.harness.tables import format_table

#: DRAM service-time scale factors swept (1.0 = Table I DDR4-2400).
LATENCY_SCALES = (0.5, 1.0, 2.0, 4.0)


def _scaled_memory(scale: float, prefetch: bool = True) -> MemoryConfig:
    mem = MemoryConfig(prefetch_enabled=prefetch)
    dram = mem.dram
    mem = dataclasses.replace(
        mem,
        dram=dataclasses.replace(
            dram,
            t_rcd=round(dram.t_rcd * scale),
            t_rp=round(dram.t_rp * scale),
            t_cas=round(dram.t_cas * scale),
            frontend_overhead=round(dram.frontend_overhead * scale),
        ))
    return mem


def run_latency_sweep(profiles: Optional[Sequence] = None,
                      n_instrs: int = 12_000,
                      warmup: int = 3_000) -> Dict[float, Dict[str, float]]:
    """{latency scale: {core: geomean speedup over InO at that scale}}."""
    profiles = profiles if profiles is not None else default_profiles()
    out: Dict[float, Dict[str, float]] = {}
    for scale in LATENCY_SCALES:
        runner = Runner(n_instrs=n_instrs, warmup=warmup,
                        mem_cfg=_scaled_memory(scale))
        base = {p.name: runner.run(make_ino_config(), p).ipc
                for p in profiles}
        row = {}
        for cfg in (make_casino_config(), make_ooo_config()):
            row[cfg.name] = geomean(
                runner.run(cfg, p).ipc / base[p.name] for p in profiles)
        out[scale] = row
    return out


def run_prefetch_ablation(profiles: Optional[Sequence] = None,
                          n_instrs: int = 12_000,
                          warmup: int = 3_000) -> Dict[str, Dict[str, float]]:
    """{'on'/'off': {core: geomean speedup over InO}}."""
    profiles = profiles if profiles is not None else default_profiles()
    out: Dict[str, Dict[str, float]] = {}
    for label, enabled in (("on", True), ("off", False)):
        runner = Runner(n_instrs=n_instrs, warmup=warmup,
                        mem_cfg=_scaled_memory(1.0, prefetch=enabled))
        base = {p.name: runner.run(make_ino_config(), p).ipc
                for p in profiles}
        row = {}
        for cfg in (make_casino_config(), make_ooo_config()):
            row[cfg.name] = geomean(
                runner.run(cfg, p).ipc / base[p.name] for p in profiles)
        out[label] = row
    return out


def main() -> None:
    sweep = run_latency_sweep()
    print("DRAM-latency sensitivity (geomean speedup over InO)")
    print(format_table(
        ["DRAM scale", "casino", "ooo"],
        [[scale, row["casino"], row["ooo"]] for scale, row in sweep.items()],
        float_fmt="{:.2f}"))
    ablation = run_prefetch_ablation()
    print("\nL2 prefetcher ablation (geomean speedup over InO)")
    print(format_table(
        ["prefetcher", "casino", "ooo"],
        [[label, row["casino"], row["ooo"]]
         for label, row in ablation.items()],
        float_fmt="{:.2f}"))


if __name__ == "__main__":
    main()
