"""Figure 9 — core area and energy consumption.

(a) Core area of InO, CASINO and OoO broken down by structure group
(paper: CASINO ~+5% over InO; area-normalised performance of CASINO is
~43% / ~16% better than InO / OoO).

(b) Total energy (static + dynamic) over the suite, including the
OoO+NoLQ variant (paper: CASINO ~+22% energy vs InO and ~-37% vs OoO;
OoO+NoLQ saves ~8% of OoO's energy).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.common.params import (
    DISAMBIG_NOLQ,
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.common.stats import partial_geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table
from repro.power.accounting import build_power_model


def variants():
    ooo_nolq = dataclasses.replace(make_ooo_config(), name="ooo+nolq",
                                   disambiguation=DISAMBIG_NOLQ)
    return [make_ino_config(), make_casino_config(), make_ooo_config(),
            ooo_nolq]


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, Dict[str, float]]:
    """Per core: area (mm2 + relative), energy (relative), perf/area."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    raw: Dict[str, Dict[str, float]] = {}
    for cfg in variants():
        model = build_power_model(cfg)
        energy = 0.0
        ipcs = []
        groups: Dict[str, float] = {}
        for profile in profiles:
            res = runner.run(cfg, profile)
            energy += res.energy.total_j
            ipcs.append(res.ipc)
            for group, joules in res.energy.by_group.items():
                groups[group] = groups.get(group, 0.0) + joules
        # Failed runs contribute IPC 0; aggregate the partial geomean
        # rather than aborting the figure (exclusions are reported by the
        # resilient sweep driver).
        perf, _excluded = partial_geomean(ipcs)
        raw[cfg.name] = {"area": model.area_mm2(), "energy": energy,
                         "perf": perf, "groups": groups,
                         "area_groups": model.area_by_group()}
    base = raw["ino"]
    out: Dict[str, Dict[str, float]] = {}
    for name, row in raw.items():
        out[name] = {
            "area_mm2": row["area"],
            "area_rel": row["area"] / base["area"],
            "energy_rel": row["energy"] / base["energy"],
            "perf_rel": row["perf"] / base["perf"],
            "perf_per_area": ((row["perf"] / base["perf"])
                              / (row["area"] / base["area"])),
            "groups": row["groups"],
            "area_groups": row["area_groups"],
        }
    return out


def main() -> None:
    results = run()
    rows = [[name, r["area_mm2"], r["area_rel"], r["energy_rel"],
             r["perf_rel"], r["perf_per_area"]]
            for name, r in results.items()]
    print("Figure 9: area and energy (relative to InO)")
    print(format_table(
        ["core", "area mm2", "area", "energy", "perf", "perf/area"], rows))
    # Stacked-bar data: energy breakdown by structure group (Figure 9b).
    print("\nEnergy breakdown by group (fraction of each core's total):")
    groups = sorted({g for r in results.values() for g in r["groups"]})
    brows = []
    for name, r in results.items():
        total = sum(r["groups"].values())
        brows.append([name] + [r["groups"].get(g, 0.0) / total
                               for g in groups])
    print(format_table(["core"] + groups, brows, float_fmt="{:.3f}"))


if __name__ == "__main__":
    main()
