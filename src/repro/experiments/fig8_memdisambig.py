"""Figure 8 — effectiveness of memory disambiguation.

Compares four schemes on the CASINO pipeline, all relative to "Fully OoO"
(a conventional 16-entry LQ):

* ``fully_ooo``    — LQ-based disambiguation;
* ``agi_ordering`` — memory ops forced into program order (paper: ~-11%);
* ``nolq``         — on-commit value-check (paper: slightly above Fully OoO,
  but ~+31% more SQ searches);
* ``nolq_osca``    — value-check + OSCA (paper: ~70% of NoLQ's SQ searches
  removed, +5 points of energy efficiency).

Outputs (a) LSQ activity counts and (b) performance + energy efficiency.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    DISAMBIG_NOLQ,
    DISAMBIG_NOLQ_OSCA,
    make_casino_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table

SCHEMES = (DISAMBIG_FULLY_OOO, DISAMBIG_AGI_ORDERING,
           DISAMBIG_NOLQ, DISAMBIG_NOLQ_OSCA)


def variants():
    base = make_casino_config()
    return [dataclasses.replace(base, name=scheme, disambiguation=scheme)
            for scheme in SCHEMES]


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, Dict[str, float]]:
    """Per scheme: activity counts, perf and efficiency vs Fully OoO."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    raw: Dict[str, Dict[str, float]] = {}
    for cfg in variants():
        ipcs, effs = [], []
        counts = {"lq_searches": 0.0, "lq_reads": 0.0, "lq_writes": 0.0,
                  "sq_searches": 0.0, "osca_access": 0.0,
                  "mem_order_violations": 0.0}
        for profile in profiles:
            res = runner.run(cfg, profile)
            ipcs.append(res.ipc)
            effs.append(res.energy.efficiency())
            for key in counts:
                counts[key] += res.stats.get(key)
        raw[cfg.name] = {"perf": geomean(ipcs), "eff": geomean(effs), **counts}
    base = raw[DISAMBIG_FULLY_OOO]
    out: Dict[str, Dict[str, float]] = {}
    for name, row in raw.items():
        out[name] = {
            "perf": row["perf"] / base["perf"],
            "efficiency": row["eff"] / base["eff"],
            "sq_searches": (row["sq_searches"] / base["sq_searches"]
                            if base["sq_searches"] else 0.0),
            "lq_ops": ((row["lq_searches"] + row["lq_reads"] + row["lq_writes"])
                       / max(1.0, base["lq_searches"] + base["lq_reads"]
                             + base["lq_writes"])),
            "violations": row["mem_order_violations"],
        }
    return out


def main() -> None:
    results = run()
    rows = [[name, r["perf"], r["efficiency"], r["sq_searches"],
             r["lq_ops"], int(r["violations"])]
            for name, r in results.items()]
    print("Figure 8: memory disambiguation (normalised to Fully OoO)")
    print(format_table(
        ["scheme", "perf", "perf/energy", "SQ searches", "LQ ops", "violations"],
        rows))


if __name__ == "__main__":
    main()
