"""Shared experiment defaults.

The paper simulates 300M-instruction SimPoints; a pure-Python model runs
24k-instruction traces (6k warm-up) per application instead.  ``QUICK_APPS``
is a representative 8-app subset (memory-bound, compute-bound, branchy,
aliasing-heavy, streaming, FP-chain) used by the pytest benchmarks so a full
bench sweep stays in CI-friendly time; ``main()`` drivers default to the
full 25-application suite.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.harness.runner import Runner
from repro.workloads.generator import WorkloadProfile
from repro.workloads.suite import SUITE, suite_profiles

#: Representative subset spanning the behaviour space of the suite.
QUICK_APPS = ["hmmer", "mcf", "cactusADM", "h264ref", "libquantum",
              "gcc", "bwaves", "milc"]

DEFAULT_N_INSTRS = 24_000
DEFAULT_WARMUP = 6_000


def _env_lengths(n_instrs: Optional[int],
                 warmup: Optional[int]) -> "tuple[int, int]":
    """Resolve trace lengths, honouring REPRO_N_INSTRS / REPRO_WARMUP so CI
    smoke sweeps can shrink every figure without touching driver code."""
    if n_instrs is None:
        n_instrs = int(os.environ.get("REPRO_N_INSTRS", DEFAULT_N_INSTRS))
    if warmup is None:
        warmup = int(os.environ.get("REPRO_WARMUP", DEFAULT_WARMUP))
    return n_instrs, min(warmup, n_instrs // 4)


def make_runner(n_instrs: Optional[int] = None,
                warmup: Optional[int] = None,
                accounting: bool = False) -> Runner:
    """A fresh memoising runner with the standard trace length."""
    n_instrs, warmup = _env_lengths(n_instrs, warmup)
    return Runner(n_instrs=n_instrs, warmup=warmup, accounting=accounting)


def make_resilient_runner(n_instrs: Optional[int] = None,
                          warmup: Optional[int] = None, retries: int = 1,
                          sanitize: Optional[bool] = None):
    """A failure-containing runner for sweeps (see harness.resilience)."""
    from repro.harness.resilience import ResilientRunner
    n_instrs, warmup = _env_lengths(n_instrs, warmup)
    return ResilientRunner(n_instrs=n_instrs, warmup=warmup,
                           retries=retries, sanitize=sanitize)


def make_pooled_runner(pool, n_instrs: Optional[int] = None,
                       warmup: Optional[int] = None, retries: int = 1,
                       sanitize: Optional[bool] = None):
    """A pool+store-backed resilient runner (see repro.service.runner)."""
    from repro.service.runner import PooledRunner
    n_instrs, warmup = _env_lengths(n_instrs, warmup)
    return PooledRunner(pool, n_instrs=n_instrs, warmup=warmup,
                        retries=retries, sanitize=sanitize)


def quick_profiles() -> List[WorkloadProfile]:
    """The representative 8-app subset."""
    return [SUITE[name] for name in QUICK_APPS]


def default_profiles(full: Optional[bool] = None) -> List[WorkloadProfile]:
    """Full 25-app suite, or the quick subset when ``REPRO_QUICK=1``."""
    if full is None:
        full = os.environ.get("REPRO_QUICK", "0") != "1"
    return suite_profiles("all") if full else quick_profiles()
