"""Figure 10 — design-space exploration of the speculative issue policy.

(a) IQ-size sweep (4..20 entries) with the committed-instruction breakdown
by issue source (S-Issue vs Issue) under SpecInO[2,1] with generous other
resources.  Paper: performance peaks at 12 IQ entries; the Issue fraction
grows with IQ size.

(b) [WS, SO] sweep.  Paper: performance peaks around SpecInO[2,1].
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import make_casino_config
from repro.common.stats import partial_geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table

IQ_SIZES = (4, 8, 12, 16, 20)
WS_SO = ((1, 1), (2, 1), (2, 2), (3, 1), (3, 3), (4, 2))


def _generous(cfg):
    """Unlimited-other-resources variant used by the paper's sweep."""
    return dataclasses.replace(cfg, prf_int=128, prf_fp=64, rob_size=128,
                               sq_sb_size=16, data_buffer_size=16,
                               siq_size=8)


def run_iq_sweep(runner: Optional[Runner] = None,
                 profiles: Optional[Sequence] = None) -> Dict[int, Dict[str, float]]:
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    out: Dict[int, Dict[str, float]] = {}
    for iq_size in IQ_SIZES:
        cfg = _generous(dataclasses.replace(
            make_casino_config(), name=f"casino-iq{iq_size}", iq_size=iq_size))
        ipcs: List[float] = []
        s_issue = iq_issue = 0.0
        for profile in profiles:
            res = runner.run(cfg, profile)
            ipcs.append(res.ipc)
            s_issue += res.stats.get("committed_s_issue")
            iq_issue += res.stats.get("committed_iq_issue")
        total = max(1.0, s_issue + iq_issue)
        out[iq_size] = {"perf": partial_geomean(ipcs)[0],
                        "s_issue_frac": s_issue / total,
                        "iq_issue_frac": iq_issue / total}
    base = out[IQ_SIZES[0]]["perf"]
    for row in out.values():
        row["speedup"] = row["perf"] / base
    return out


def run_ws_so_sweep(runner: Optional[Runner] = None,
                    profiles: Optional[Sequence] = None
                    ) -> Dict[Tuple[int, int], float]:
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    out: Dict[Tuple[int, int], float] = {}
    for ws, so in WS_SO:
        cfg = dataclasses.replace(make_casino_config(),
                                  name=f"casino[{ws},{so}]",
                                  specino_ws=ws, specino_so=so)
        out[(ws, so)] = partial_geomean(
            runner.run(cfg, p).ipc for p in profiles)[0]
    base = out[WS_SO[0]]
    return {key: value / base for key, value in out.items()}


def main() -> None:
    iq = run_iq_sweep()
    print("Figure 10a: IQ-size sweep (SpecInO[2,1], generous resources)")
    print(format_table(
        ["IQ size", "perf (rel to 4)", "S-Issue frac", "Issue frac"],
        [[n, r["speedup"], r["s_issue_frac"], r["iq_issue_frac"]]
         for n, r in iq.items()]))
    ws = run_ws_so_sweep()
    print("\nFigure 10b: [WS, SO] sweep (relative to [1,1])")
    print(format_table(["WS", "SO", "perf"],
                       [[w, s, v] for (w, s), v in ws.items()]))


if __name__ == "__main__":
    main()
