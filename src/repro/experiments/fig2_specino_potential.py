"""Figure 2 — performance potential of SpecInO scheduling.

Geometric-mean speedup over the InO baseline of SpecInO[WS, SO] limit
machines (Non-mem vs All-Types speculative issue) and the OoO core.

Paper anchors: SpecInO[2,1] Non-mem ~ +33%, SpecInO[2,1] All ~ +49%,
SpecInO[2,2] below SpecInO[2,1], OoO ~ +68%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.params import (
    make_ino_config,
    make_ooo_config,
    make_specino_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, float]:
    """Returns {model name: geomean speedup over InO}."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    baseline = make_ino_config()
    models = [
        make_specino_config(2, 1, mem=False),
        make_specino_config(2, 2, mem=False),
        make_specino_config(2, 1, mem=True),
        make_specino_config(2, 2, mem=True),
        make_ooo_config(),
    ]
    speedups = runner.speedups(models, profiles, baseline)
    return {name: geomean(per_app.values())
            for name, per_app in speedups.items()}


def main() -> None:
    from repro.harness.tables import format_bars
    results = run()
    print("Figure 2: SpecInO potential (geomean speedup over InO)")
    print(format_bars({"ino": 1.0, **results}))


if __name__ == "__main__":
    main()
