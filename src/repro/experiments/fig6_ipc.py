"""Figure 6 — per-application IPC of LSC, Freeway, CASINO and OoO
normalised to the InO baseline.

Paper anchors: geomeans LSC +28%, Freeway +34%, CASINO +51%, OoO +68%;
CASINO's largest win on cactusADM (~+89%); CASINO slightly beats OoO on
h264ref (frequent memory-order violations on the OoO core).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, Dict[str, float]]:
    """Returns {model: {app: speedup over InO}} plus a ``geomean`` entry."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    baseline = make_ino_config()
    models = [make_lsc_config(), make_freeway_config(),
              make_casino_config(), make_ooo_config()]
    speedups = runner.speedups(models, profiles, baseline)
    for name in list(speedups):
        speedups[name] = dict(speedups[name])
        speedups[name]["geomean"] = geomean(
            v for k, v in speedups[name].items() if k != "geomean")
    return speedups


def main() -> None:
    from repro.harness.tables import format_bars
    results = run()
    models = list(results)
    apps = [a for a in results[models[0]] if a != "geomean"] + ["geomean"]
    rows = [[app] + [results[m][app] for m in models] for app in apps]
    print("Figure 6: IPC normalised to InO")
    print(format_table(["app"] + models, rows, float_fmt="{:.2f}"))
    print("\ngeomeans:")
    print(format_bars({"ino": 1.0,
                       **{m: results[m]["geomean"] for m in models}}))


if __name__ == "__main__":
    main()
