"""Figure 6 — per-application IPC of LSC, Freeway, CASINO and OoO
normalised to the InO baseline.

Paper anchors: geomeans LSC +28%, Freeway +34%, CASINO +51%, OoO +68%;
CASINO's largest win on cactusADM (~+89%); CASINO slightly beats OoO on
h264ref (frequent memory-order violations on the OoO core).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
)
from repro.common.stats import geomean
from repro.experiments.common import default_profiles, make_runner
from repro.harness.runner import Runner
from repro.harness.tables import format_table


def run(runner: Optional[Runner] = None,
        profiles: Optional[Sequence] = None) -> Dict[str, Dict[str, float]]:
    """Returns {model: {app: speedup over InO}} plus a ``geomean`` entry."""
    runner = runner or make_runner()
    profiles = profiles if profiles is not None else default_profiles()
    baseline = make_ino_config()
    models = [make_lsc_config(), make_freeway_config(),
              make_casino_config(), make_ooo_config()]
    speedups = runner.speedups(models, profiles, baseline)
    for name in list(speedups):
        speedups[name] = dict(speedups[name])
        speedups[name]["geomean"] = geomean(
            v for k, v in speedups[name].items() if k != "geomean")
    if getattr(runner, "accounting", False):
        # CPI stacks ride along (cached results, no extra simulation) so
        # the figure can explain *where* each speedup comes from.  The key
        # is only present on accounting runners, keeping the plain result
        # shape {model: {app: speedup}} stable.
        speedups["cpi_stacks"] = {
            cfg.name: {p.name: runner.run(cfg, p).accounting
                       for p in profiles}
            for cfg in [baseline] + models}
    return speedups


def main() -> None:
    from repro.harness.tables import format_bars
    from repro.obs.accounting import COMPONENTS, format_stack_table
    results = run(runner=make_runner(accounting=True))
    stacks = results.pop("cpi_stacks", None)
    models = list(results)
    apps = [a for a in results[models[0]] if a != "geomean"] + ["geomean"]
    rows = [[app] + [results[m][app] for m in models] for app in apps]
    print("Figure 6: IPC normalised to InO")
    print(format_table(["app"] + models, rows, float_fmt="{:.2f}"))
    print("\ngeomeans:")
    print(format_bars({"ino": 1.0,
                       **{m: results[m]["geomean"] for m in models}}))
    if stacks:
        # Suite-average CPI stack per core: where the cycles went.
        mean_reports = {}
        for core, per_app in stacks.items():
            reports = [r for r in per_app.values() if r]
            if not reports:
                continue
            n = len(reports)
            mean_reports[core] = {
                "cpi": sum(r["cpi"] for r in reports) / n,
                "cpi_stack": {c: sum(r["cpi_stack"][c] for r in reports) / n
                              for c in COMPONENTS},
            }
        headers, stack_rows = format_stack_table(mean_reports)
        print("\nsuite-average CPI stack (cycles per committed instruction):")
        print(format_table(headers, stack_rows, float_fmt="{:.3f}"))


if __name__ == "__main__":
    main()
