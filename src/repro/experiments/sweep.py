"""Resilient, resumable all-figures experiment sweep.

Drives every figure of the paper through a shared
:class:`~repro.harness.resilience.ResilientRunner`, checkpointing each
completed figure to JSON so a killed sweep resumes where it stopped, and
reporting per-figure failures/exclusions instead of aborting.  Exposed
both as ``python scripts/run_all_experiments.py`` and ``python -m repro
sweep``.
"""

from __future__ import annotations

import argparse
import io
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.experiments import (
    fig2_specino_potential,
    fig6_ipc,
    fig7_renaming,
    fig8_memdisambig,
    fig9_area_energy,
    fig10_design_space,
    fig11_wider_issue,
)
from repro.experiments.common import default_profiles, make_resilient_runner
from repro.harness.export import jsonable
from repro.harness.resilience import (
    ResilientRunner,
    SweepCheckpoint,
    failure_report,
)
from repro.obs.provenance import figure_manifest

#: ``(figure name, fn(runner, profiles) -> result)`` in sweep order.
FigureJob = Tuple[str, Callable]


def default_jobs() -> List[FigureJob]:
    return [
        ("Figure 2", fig2_specino_potential.run),
        ("Figure 6", fig6_ipc.run),
        ("Figure 7", fig7_renaming.run),
        ("Figure 8", fig8_memdisambig.run),
        ("Figure 9", fig9_area_energy.run),
        ("Figure 10a", fig10_design_space.run_iq_sweep),
        ("Figure 10b", fig10_design_space.run_ws_so_sweep),
        ("Figure 11", fig11_wider_issue.run),
    ]


def _printable(name: str, result) -> dict:
    if name == "Figure 9":  # drop the bulky per-group breakdowns
        return {k: {kk: vv for kk, vv in v.items()
                    if kk not in ("groups", "area_groups")}
                for k, v in result.items()}
    return result


def run_sweep(runner: ResilientRunner, profiles: Sequence,
              checkpoint: SweepCheckpoint, out_path: Optional[str] = None,
              jobs: Optional[List[FigureJob]] = None,
              echo: Callable[[str], None] = print) -> dict:
    """Run (or resume) the sweep; returns ``{figure: result}``.

    Completed figures found in ``checkpoint`` are reused verbatim; each
    newly computed figure is checkpointed (with its exclusion list) the
    moment it finishes, so killing the process loses at most the figure in
    flight.  A figure whose driver raises is reported and skipped — the
    sweep always runs to the end.
    """
    jobs = jobs if jobs is not None else default_jobs()
    buffer = io.StringIO()
    results = {}

    def emit(line: str) -> None:
        echo(line)
        buffer.write(line + "\n")

    def run_figure(fn):
        """One figure through the runner — pooled runners batch the
        figure's whole (core, app, config) grid across workers first."""
        from repro.service.runner import PooledRunner
        if isinstance(runner, PooledRunner):
            return runner.run_figure(fn, profiles)
        return fn(runner, profiles)

    for name, fn in jobs:
        if name in checkpoint:
            entry = checkpoint.get(name)
            results[name] = entry["result"]
            emit(f"=== {name} (checkpointed) ===")
            if entry.get("exclusions"):
                emit(f"excluded apps: {entry['exclusions']}")
        else:
            start = time.time()
            try:
                result = run_figure(fn)
            except Exception as exc:  # figure-level containment
                failures, excluded = runner.drain()
                emit(f"=== {name} FAILED: {exc!r} ===")
                if failures:
                    emit(failure_report(failures, excluded))
                continue
            elapsed = time.time() - start
            failures, excluded = runner.drain()
            checkpoint.put(name, result, exclusions=excluded,
                           failures=[f.summary() for f in failures],
                           manifest=figure_manifest(runner, elapsed,
                                                    jsonable(result)))
            results[name] = result
            emit(f"=== {name} ({elapsed:.0f}s) ===")
            if failures:
                emit(failure_report(failures, excluded))
        for key, value in _printable(name, results[name]).items():
            emit(f"{key}: {value}")
        buffer.write("\n")
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(buffer.getvalue())
        echo(f"\nwrote {out_path}")
    return results


def run_cli(output: str = "experiment_results.txt",
            checkpoint: Optional[str] = None, resume: bool = True,
            retries: int = 1, sanitize: Optional[bool] = None,
            workers: Optional[int] = None,
            store: Optional[str] = None) -> int:
    """Entry point shared by the script and ``python -m repro sweep``.

    ``workers``/``store`` route every simulation through the service
    worker pool and content-addressed result store: figures fan out
    across CPUs, and a warm-store rerun recomputes nothing.
    """
    ckpt = SweepCheckpoint(checkpoint or output + ".ckpt.json")
    if not resume:
        ckpt.clear()
    elif ckpt.completed():
        print(f"resuming: {len(ckpt.completed())} figure(s) checkpointed "
              f"in {ckpt.path}")
    if workers or store:
        from repro.experiments.common import make_pooled_runner
        from repro.service.pool import SimulationPool
        from repro.service.store import ResultStore
        result_store = ResultStore(store) if store else None
        journal = None
        if result_store is not None:
            # Journal every pool dispatch so a killed sweep can account
            # for dispatched-but-unfinished work on the next start (the
            # store already dedups whatever did complete).
            from pathlib import Path
            from repro.service.journal import (
                TERMINAL_STATES,
                Journal,
                fold_jobs,
            )
            journal = Journal(Path(store) / "sweep-journal")
            orphans = [state for state in
                       fold_jobs(journal.records()).values()
                       if state["status"] not in TERMINAL_STATES]
            if orphans:
                print(f"previous sweep left {len(orphans)} "
                      "dispatched-but-unfinished job(s); recomputing "
                      "any whose results missed the store")
            journal.compact([])
        pool = SimulationPool(n_workers=workers, store=result_store,
                              journal=journal)
        runner = make_pooled_runner(pool, retries=retries, sanitize=sanitize)
        print(f"pooled sweep: {pool.n_workers} worker(s)"
              + (f", store {store}" if store else ""))
        try:
            run_sweep(runner, default_profiles(), ckpt, out_path=output)
        finally:
            pool.close()
            if journal is not None:
                journal.close()
            if result_store is not None:
                stats = result_store.stats_snapshot()
                print(f"store: {stats['hits']} hit(s), "
                      f"{stats['misses']} miss(es), "
                      f"{stats['entries']} entries")
    else:
        runner = make_resilient_runner(retries=retries, sanitize=sanitize)
        run_sweep(runner, default_profiles(), ckpt, out_path=output)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate every figure (resumable, failure-tolerant)")
    parser.add_argument("output", nargs="?", default="experiment_results.txt")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="checkpoint file (default: <output>.ckpt.json)")
    parser.add_argument("--no-resume", action="store_true",
                        help="discard any existing checkpoint and restart")
    parser.add_argument("--retries", type=int, default=1,
                        help="reseeded retries per failed run (default 1)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the invariant sanitizer enabled")
    parser.add_argument("--workers", type=int, default=None,
                        help="fan simulations across N worker processes")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="content-addressed result store directory")
    args = parser.parse_args(argv)
    return run_cli(output=args.output, checkpoint=args.checkpoint,
                   resume=not args.no_resume, retries=args.retries,
                   sanitize=True if args.sanitize else None,
                   workers=args.workers, store=args.store)


if __name__ == "__main__":
    raise SystemExit(main())
