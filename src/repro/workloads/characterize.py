"""Trace characterisation: the statistics a workload substitution must get
right.

The synthetic suite stands in for SPEC CPU2006 (DESIGN.md, Substitutions);
this module measures, from a generated trace, the properties the paper's
mechanisms are sensitive to — instruction mix, register dependence
distances, memory footprint and line reuse, store->load alias distance, and
static-code recurrence — so profiles can be validated and compared
quantitatively (see ``tests/test_characterize.py`` and the
``python -m repro characterize`` command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.instruction import DynInst


@dataclass
class TraceProfile:
    """Measured characteristics of one dynamic trace."""

    n_instrs: int = 0
    # Mix (fractions of all instructions).
    frac_loads: float = 0.0
    frac_stores: float = 0.0
    frac_branches: float = 0.0
    frac_fp: float = 0.0
    # Dependences.
    mean_dep_distance: float = 0.0     # instructions back to the producer
    frac_ready_at_rename: float = 0.0  # sources produced >= 8 instrs ago
    # Memory behaviour.
    footprint_bytes: int = 0
    unique_lines: int = 0
    line_reuse: float = 0.0            # accesses per distinct 64B line
    mean_alias_distance: float = 0.0   # store -> aliasing load distance
    alias_pairs: int = 0
    # Control flow.
    taken_rate: float = 0.0
    static_pcs: int = 0
    dynamic_per_static: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def characterize(trace: Sequence[DynInst],
                 ready_horizon: int = 8) -> TraceProfile:
    """Measure a trace.  ``ready_horizon`` is the dependence distance
    beyond which a source is counted as 'stale' (ready at rename) — the
    operand class that fuels CASINO's speculative issue."""
    out = TraceProfile(n_instrs=len(trace))
    if not trace:
        return out
    loads = stores = branches = fp = taken = 0
    last_writer_pos: Dict[int, int] = {}
    dep_distances: List[int] = []
    stale_sources = total_sources = 0
    lines: Dict[int, int] = {}
    last_store_pos: Dict[int, int] = {}
    alias_distances: List[int] = []
    pcs = set()

    for pos, inst in enumerate(trace):
        pcs.add(inst.pc)
        if inst.is_load:
            loads += 1
        if inst.is_store:
            stores += 1
        if inst.is_branch:
            branches += 1
            if inst.taken:
                taken += 1
        if inst.op.is_fp:
            fp += 1
        for src in inst.srcs:
            total_sources += 1
            writer = last_writer_pos.get(src)
            if writer is None:
                stale_sources += 1
                continue
            distance = pos - writer
            dep_distances.append(distance)
            if distance >= ready_horizon:
                stale_sources += 1
        if inst.dst is not None:
            last_writer_pos[inst.dst] = pos
        if inst.mem_addr is not None:
            line = inst.mem_addr >> 6
            lines[line] = lines.get(line, 0) + 1
            if inst.is_store:
                last_store_pos[inst.mem_addr] = pos
            elif inst.is_load:
                store_pos = last_store_pos.get(inst.mem_addr)
                if store_pos is not None:
                    alias_distances.append(pos - store_pos)

    n = len(trace)
    out.frac_loads = loads / n
    out.frac_stores = stores / n
    out.frac_branches = branches / n
    out.frac_fp = fp / n
    if dep_distances:
        out.mean_dep_distance = sum(dep_distances) / len(dep_distances)
    if total_sources:
        out.frac_ready_at_rename = stale_sources / total_sources
    out.unique_lines = len(lines)
    out.footprint_bytes = len(lines) * 64
    accesses = sum(lines.values())
    out.line_reuse = accesses / len(lines) if lines else 0.0
    if alias_distances:
        out.mean_alias_distance = sum(alias_distances) / len(alias_distances)
        out.alias_pairs = len(alias_distances)
    out.taken_rate = taken / branches if branches else 0.0
    out.static_pcs = len(pcs)
    out.dynamic_per_static = n / len(pcs)
    return out


def compare(a: TraceProfile, b: TraceProfile,
            keys: Optional[Sequence[str]] = None) -> Dict[str, float]:
    """Relative differences (b vs a) for selected metrics — handy when
    tuning a profile against a reference characterisation."""
    keys = keys or ["frac_loads", "frac_stores", "frac_branches",
                    "mean_dep_distance", "line_reuse", "taken_rate"]
    out = {}
    for key in keys:
        va, vb = getattr(a, key), getattr(b, key)
        out[key] = (vb - va) / va if va else float("inf") if vb else 0.0
    return out
