"""Workloads: synthetic SPEC CPU2006-like profiles and assembled kernels.

The paper evaluates 12 SPECint + 13 SPECfp applications (300M-instruction
SimPoints).  SPEC binaries and reference inputs are licensed and far beyond a
Python timing model's throughput, so this package substitutes seeded
*synthetic applications*: each named profile generates a deterministic
dynamic instruction stream from a randomly-wired static program whose
dependence-chain shapes, memory footprint/locality, pointer chasing, branch
behaviour and store->load aliasing are tuned to the qualitative behaviour the
paper reports for that application (see DESIGN.md, Substitutions).
"""

from repro.workloads.characterize import TraceProfile, characterize
from repro.workloads.generator import SyntheticWorkload, WorkloadProfile
from repro.workloads.kernels import KERNELS, kernel_trace
from repro.workloads.suite import (
    SPEC_FP,
    SPEC_INT,
    SUITE,
    get_profile,
    suite_profiles,
)

__all__ = [
    "SyntheticWorkload",
    "WorkloadProfile",
    "TraceProfile",
    "characterize",
    "KERNELS",
    "kernel_trace",
    "SPEC_INT",
    "SPEC_FP",
    "SUITE",
    "get_profile",
    "suite_profiles",
]
