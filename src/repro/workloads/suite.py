"""Named synthetic stand-ins for the SPEC CPU2006 applications of the paper.

Each profile's parameters are chosen to echo that application's published
characterisation (memory boundedness, branch behaviour, FP-ness, pointer
chasing, store/load aliasing).  Notable anchors used by the paper itself:

* ``cactusADM`` — long FP dependence chains behind cache-missing loads with
  plenty of independent work: the biggest CASINO win (+89% over InO).
* ``h264ref`` — many intricately-dependent loads and stores: frequent memory
  order violations on the OoO core, so CASINO slightly beats OoO there.
* ``mcf`` / ``omnetpp`` / ``xalancbmk`` — large-footprint pointer chasers.
* ``libquantum`` / ``lbm``-like streamers — prefetcher-friendly.
* ``hmmer`` / ``gamess`` — compute-dense, high baseline ILP.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generator import WorkloadProfile

#: Default dynamic instruction count per application run.  Chosen so a full
#: 25-app sweep of all five cores finishes in minutes in pure Python while
#: still exercising thousands of loop iterations per app.
DEFAULT_INSTRS = 24_000


def _p(name: str, seed: int, **kw) -> WorkloadProfile:
    kw.setdefault("n_instrs", DEFAULT_INSTRS)
    return WorkloadProfile(name=name, seed=seed, **kw)


#: The 12 SPECint-like profiles.
SPEC_INT: List[WorkloadProfile] = [
    _p("perlbench", 101, frac_mem=0.38, frac_store=0.35, frac_fp=0.0,
       footprint_kib=384, frac_stream=0.40, frac_random=0.50, frac_chase=0.10,
       br_random_frac=0.18, br_pattern_frac=0.30, alias_frac=0.08,
       n_blocks=40, block_len_mean=7),
    _p("bzip2", 102, frac_mem=0.34, frac_store=0.30, frac_fp=0.0,
       footprint_kib=512, frac_stream=0.55, frac_random=0.40, frac_chase=0.05,
       br_random_frac=0.22, br_pattern_frac=0.20, block_len_mean=8),
    _p("gcc", 103, frac_mem=0.40, frac_store=0.36, frac_fp=0.0,
       footprint_kib=1024, frac_stream=0.35, frac_random=0.50, frac_chase=0.15,
       br_random_frac=0.20, br_pattern_frac=0.30, alias_frac=0.07,
       n_blocks=48, block_len_mean=6),
    _p("mcf", 104, frac_mem=0.42, frac_store=0.18, frac_fp=0.0,
       footprint_kib=4096, frac_stream=0.20, frac_random=0.55, frac_chase=0.25,
       chase_region_kib=4096, br_random_frac=0.12, block_len_mean=7,
       load_consumer_frac=0.40, rand_locality=0.80),
    _p("gobmk", 105, frac_mem=0.33, frac_store=0.30, frac_fp=0.0,
       footprint_kib=256, frac_stream=0.45, frac_random=0.45, frac_chase=0.10,
       br_random_frac=0.28, br_pattern_frac=0.25, block_len_mean=6),
    _p("hmmer", 106, frac_mem=0.28, frac_store=0.22, frac_fp=0.0,
       footprint_kib=64, frac_stream=0.80, frac_random=0.20, frac_chase=0.0,
       br_random_frac=0.04, br_bias=0.95, block_len_mean=12,
       serial_frac=0.25, load_consumer_frac=0.35),
    _p("sjeng", 107, frac_mem=0.30, frac_store=0.25, frac_fp=0.0,
       footprint_kib=512, frac_stream=0.40, frac_random=0.50, frac_chase=0.10,
       br_random_frac=0.25, br_pattern_frac=0.25, block_len_mean=6),
    _p("libquantum", 108, frac_mem=0.36, frac_store=0.25, frac_fp=0.0,
       footprint_kib=8192, frac_stream=0.90, frac_random=0.10, frac_chase=0.0,
       br_random_frac=0.02, br_bias=0.97, block_len_mean=10,
       load_consumer_frac=0.60),
    _p("h264ref", 109, frac_mem=0.45, frac_store=0.42, frac_fp=0.0,
       footprint_kib=192, frac_stream=0.55, frac_random=0.40, frac_chase=0.05,
       alias_frac=0.30, alias_distance=9, br_random_frac=0.10,
       br_pattern_frac=0.30, block_len_mean=12, serial_frac=0.45),
    _p("omnetpp", 110, frac_mem=0.40, frac_store=0.30, frac_fp=0.0,
       footprint_kib=2048, frac_stream=0.20, frac_random=0.50, frac_chase=0.30,
       chase_region_kib=2048, br_random_frac=0.15, block_len_mean=7),
    _p("astar", 111, frac_mem=0.38, frac_store=0.22, frac_fp=0.0,
       footprint_kib=1024, frac_stream=0.30, frac_random=0.45, frac_chase=0.25,
       chase_region_kib=1024, br_random_frac=0.20, block_len_mean=7),
    _p("xalancbmk", 112, frac_mem=0.41, frac_store=0.30, frac_fp=0.0,
       footprint_kib=2048, frac_stream=0.25, frac_random=0.50, frac_chase=0.25,
       chase_region_kib=1536, br_random_frac=0.16, br_pattern_frac=0.30,
       n_blocks=48, block_len_mean=6),
]

#: The 13 SPECfp-like profiles.
SPEC_FP: List[WorkloadProfile] = [
    _p("bwaves", 201, frac_mem=0.40, frac_store=0.25, frac_fp=0.75,
       footprint_kib=4096, frac_stream=0.80, frac_random=0.20, frac_chase=0.0,
       br_random_frac=0.02, br_bias=0.97, block_len_mean=14,
       load_consumer_frac=0.60, serial_frac=0.40),
    _p("gamess", 202, frac_mem=0.28, frac_store=0.22, frac_fp=0.70,
       footprint_kib=128, frac_stream=0.70, frac_random=0.30, frac_chase=0.0,
       br_random_frac=0.05, block_len_mean=12, serial_frac=0.30),
    _p("milc", 203, frac_mem=0.42, frac_store=0.28, frac_fp=0.70,
       footprint_kib=4096, frac_stream=0.65, frac_random=0.35, frac_chase=0.0,
       br_random_frac=0.03, block_len_mean=12, load_consumer_frac=0.60),
    _p("zeusmp", 204, frac_mem=0.38, frac_store=0.26, frac_fp=0.72,
       footprint_kib=2048, frac_stream=0.70, frac_random=0.30, frac_chase=0.0,
       br_random_frac=0.03, block_len_mean=13),
    _p("gromacs", 205, frac_mem=0.32, frac_store=0.24, frac_fp=0.65,
       footprint_kib=512, frac_stream=0.60, frac_random=0.40, frac_chase=0.0,
       br_random_frac=0.06, block_len_mean=11),
    _p("cactusADM", 206, frac_mem=0.40, frac_store=0.20, frac_fp=0.80,
       footprint_kib=4096, frac_stream=0.55, frac_random=0.45, frac_chase=0.0,
       br_random_frac=0.01, br_bias=0.98, block_len_mean=16,
       serial_frac=0.50, load_consumer_frac=0.60, n_mem_streams=8,
       rand_locality=0.75),
    _p("leslie3d", 207, frac_mem=0.40, frac_store=0.26, frac_fp=0.72,
       footprint_kib=2048, frac_stream=0.70, frac_random=0.30, frac_chase=0.0,
       br_random_frac=0.02, block_len_mean=13, load_consumer_frac=0.55),
    _p("namd", 208, frac_mem=0.30, frac_store=0.20, frac_fp=0.70,
       footprint_kib=256, frac_stream=0.65, frac_random=0.35, frac_chase=0.0,
       br_random_frac=0.04, block_len_mean=12),
    _p("dealII", 209, frac_mem=0.36, frac_store=0.28, frac_fp=0.55,
       footprint_kib=1024, frac_stream=0.45, frac_random=0.45, frac_chase=0.10,
       br_random_frac=0.10, block_len_mean=9),
    _p("soplex", 210, frac_mem=0.40, frac_store=0.25, frac_fp=0.50,
       footprint_kib=2048, frac_stream=0.40, frac_random=0.50, frac_chase=0.10,
       br_random_frac=0.12, block_len_mean=8),
    _p("povray", 211, frac_mem=0.33, frac_store=0.27, frac_fp=0.55,
       footprint_kib=128, frac_stream=0.50, frac_random=0.45, frac_chase=0.05,
       br_random_frac=0.14, br_pattern_frac=0.30, block_len_mean=8),
    _p("calculix", 212, frac_mem=0.35, frac_store=0.25, frac_fp=0.65,
       footprint_kib=1024, frac_stream=0.60, frac_random=0.40, frac_chase=0.0,
       br_random_frac=0.05, block_len_mean=11),
    _p("GemsFDTD", 213, frac_mem=0.42, frac_store=0.28, frac_fp=0.75,
       footprint_kib=4096, frac_stream=0.75, frac_random=0.25, frac_chase=0.0,
       br_random_frac=0.02, block_len_mean=14, load_consumer_frac=0.60),
]

#: Every application, SPECint first, keyed by name.
SUITE: Dict[str, WorkloadProfile] = {
    p.name: p for p in (*SPEC_INT, *SPEC_FP)
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a suite profile by application name."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(SUITE)}") from None


def suite_profiles(subset: str = "all") -> List[WorkloadProfile]:
    """Profiles for ``"int"``, ``"fp"`` or ``"all"`` applications."""
    if subset == "int":
        return list(SPEC_INT)
    if subset == "fp":
        return list(SPEC_FP)
    if subset == "all":
        return [*SPEC_INT, *SPEC_FP]
    raise ValueError(f"subset must be int/fp/all, got {subset!r}")
