"""Hand-written assembly kernels run on the functional emulator.

These are real programs with real dataflow — useful for validating the
timing cores against schedules you can reason about by hand, and as the
domain-specific examples:

* ``pointer_chase`` — a linked-list walk: serial cache misses, the workload
  class where stall-on-use InO and OoO converge (no MLP to extract).
* ``daxpy`` — streaming FP: independent iterations, plenty of ILP + MLP.
* ``reduction`` — serial FP accumulation fed by streaming loads.
* ``histogram`` — load/compute/store with store->load aliasing potential.
* ``stencil3`` — 3-point stencil: overlapping loads, short FP chains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.isa.instruction import DynInst
from repro.isa.program import Program


def pointer_chase_program(nodes: int = 256, hops: int = 2048) -> Tuple[Program, Dict[int, int]]:
    """Walk a pseudo-random singly-linked list for ``hops`` steps.

    Returns the program plus an initial memory image holding the list, whose
    nodes are spread one per cache line so every hop is a new line.
    """
    base = 0x40_0000
    step = 0x1000  # 4 KiB apart: defeats the stride prefetcher
    memory = {}
    order = list(range(nodes))
    # Deterministic shuffle (LCG) so the walk order is scattered.
    state = 12345
    for i in range(nodes - 1, 0, -1):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        j = state % (i + 1)
        order[i], order[j] = order[j], order[i]
    for i in range(nodes):
        src = base + order[i] * step
        dst = base + order[(i + 1) % nodes] * step
        memory[src] = dst
    source = f"""
        li   r1, {base + order[0] * step}   ; head pointer
        li   r2, 0            ; hop counter
        li   r3, {hops}
        li   r4, 0            ; checksum
    loop:
        ld   r1, 0(r1)        ; p = p->next (serial miss chain)
        add  r4, r4, r1
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    return assemble(source), memory


def daxpy_program(n: int = 1024, unroll: int = 4,
                  passes: int = 4) -> Tuple[Program, Dict[int, int]]:
    """``y[i] += a * x[i]`` over ``n`` doubles, ``passes`` times over the
    arrays (so timing reflects warm caches, not the cold first touch)."""
    x_base, y_base = 0x10_0000, 0x20_0000
    body = []
    for u in range(unroll):
        body.append(f"    fld  f1, {8 * u}(r1)")
        body.append(f"    fld  f2, {8 * u}(r2)")
        body.append("    fmul f3, f1, f0")
        body.append("    fadd f4, f3, f2")
        body.append(f"    fst  f4, {8 * u}(r2)")
    source = "\n".join([
        "    li   r5, 0",
        "    li   r6, %d" % passes,
        "    fli  f0, 3",
        "pass:",
        "    li   r1, %d" % x_base,
        "    li   r2, %d" % y_base,
        "    li   r3, 0",
        "    li   r4, %d" % (n // unroll),
        "loop:",
        *body,
        "    addi r1, r1, %d" % (8 * unroll),
        "    addi r2, r2, %d" % (8 * unroll),
        "    addi r3, r3, 1",
        "    blt  r3, r4, loop",
        "    addi r5, r5, 1",
        "    blt  r5, r6, pass",
        "    halt",
    ])
    memory = {x_base + 8 * i: i + 1 for i in range(n)}
    memory.update({y_base + 8 * i: 2 * i for i in range(n)})
    return assemble(source), memory


def reduction_program(n: int = 2048) -> Tuple[Program, Dict[int, int]]:
    """Serial FP sum of an array: one long dependence chain fed by loads."""
    base = 0x30_0000
    source = f"""
        li   r1, {base}
        li   r2, 0
        li   r3, {n}
        fli  f0, 0
    loop:
        fld  f1, 0(r1)
        fadd f0, f0, f1       ; serial accumulation
        addi r1, r1, 8
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {base + 8 * i: i for i in range(n)}
    return assemble(source), memory


def histogram_program(n: int = 2048, buckets: int = 64) -> Tuple[Program, Dict[int, int]]:
    """Histogram: data-dependent read-modify-write with aliasing stores."""
    data, hist = 0x50_0000, 0x60_0000
    source = f"""
        li   r1, {data}
        li   r2, 0
        li   r3, {n}
        li   r6, {buckets - 1}
    loop:
        ld   r4, 0(r1)        ; value
        andi r5, r4, {buckets - 1}
        slli r5, r5, 3
        addi r7, r5, {hist}
        ld   r8, 0(r7)        ; hist[b]   (may alias the previous store)
        addi r8, r8, 1
        st   r8, 0(r7)        ; hist[b]++
        addi r1, r1, 8
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {data + 8 * i: (i * 2654435761) & 0xFFFF for i in range(n)}
    memory.update({hist + 8 * b: 0 for b in range(buckets)})
    return assemble(source), memory


def stencil3_program(n: int = 2048) -> Tuple[Program, Dict[int, int]]:
    """3-point stencil ``out[i] = (a[i-1] + a[i] + a[i+1])``."""
    a_base, out_base = 0x70_0000, 0x80_0000
    source = f"""
        li   r1, {a_base + 8}
        li   r2, {out_base}
        li   r3, 1
        li   r4, {n - 1}
    loop:
        fld  f1, -8(r1)
        fld  f2, 0(r1)
        fld  f3, 8(r1)
        fadd f4, f1, f2
        fadd f5, f4, f3
        fst  f5, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    memory = {a_base + 8 * i: i + 1 for i in range(n)}
    return assemble(source), memory


def matmul_program(n: int = 12) -> Tuple[Program, Dict[int, int]]:
    """Naive ``C = A x B`` on n x n integer matrices (triple loop)."""
    a_base, b_base, c_base = 0x90_0000, 0xA0_0000, 0xB0_0000
    source = f"""
        li   r1, 0            ; i
    iloop:
        li   r2, 0            ; j
    jloop:
        li   r3, 0            ; k
        li   r4, 0            ; acc
    kloop:
        ; A[i][k]
        li   r5, {n}
        mul  r6, r1, r5
        add  r6, r6, r3
        slli r6, r6, 3
        addi r6, r6, {a_base & 0xFFFFF}
        li   r7, {a_base & ~0xFFFFF}
        add  r6, r6, r7
        ld   r8, 0(r6)
        ; B[k][j]
        mul  r9, r3, r5
        add  r9, r9, r2
        slli r9, r9, 3
        li   r7, {b_base}
        add  r9, r9, r7
        ld   r10, 0(r9)
        mul  r11, r8, r10
        add  r4, r4, r11
        addi r3, r3, 1
        blt  r3, r5, kloop
        ; C[i][j] = acc
        li   r5, {n}
        mul  r6, r1, r5
        add  r6, r6, r2
        slli r6, r6, 3
        li   r7, {c_base}
        add  r6, r6, r7
        st   r4, 0(r6)
        addi r2, r2, 1
        blt  r2, r5, jloop
        addi r1, r1, 1
        blt  r1, r5, iloop
        halt
    """
    memory = {}
    for i in range(n):
        for j in range(n):
            memory[a_base + 8 * (i * n + j)] = i + j + 1
            memory[b_base + 8 * (i * n + j)] = (i * j) % 7 + 1
    return assemble(source), memory


def memcpy_program(n: int = 2048) -> Tuple[Program, Dict[int, int]]:
    """Word-wise copy of ``n`` doubles: pure load/store streaming."""
    src_base, dst_base = 0xC0_0000, 0xD0_0000
    source = f"""
        li   r1, {src_base}
        li   r2, {dst_base}
        li   r3, 0
        li   r4, {n}
    loop:
        ld   r5, 0(r1)
        st   r5, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    memory = {src_base + 8 * i: i * 3 + 1 for i in range(n)}
    return assemble(source), memory


def binary_search_program(n: int = 1024,
                          lookups: int = 256) -> Tuple[Program, Dict[int, int]]:
    """Repeated binary searches over a sorted array: data-dependent
    branches (hard for TAGE) and data-dependent addresses (hard for the
    prefetcher)."""
    base = 0xE0_0000
    source = f"""
        li   r10, 0           ; lookup counter
        li   r11, {lookups}
        li   r12, 12345       ; key-generator state
    outer:
        ; key = lcg(state) % n, pseudo-random but deterministic
        li   r5, 1103515245
        mul  r12, r12, r5
        addi r12, r12, 12345
        srli r5, r12, 16
        andi r13, r5, {n - 1} ; key index
        slli r5, r13, 1       ; key value = 2*index (array holds 2*i)
        li   r1, 0            ; lo
        li   r2, {n}          ; hi
    search:
        add  r3, r1, r2
        srli r3, r3, 1        ; mid
        slli r4, r3, 3
        addi r4, r4, 0
        li   r6, {base}
        add  r4, r4, r6
        ld   r7, 0(r4)        ; a[mid]
        beq  r7, r5, found
        blt  r7, r5, right
        mv   r2, r3           ; hi = mid
        jmp  check
    right:
        addi r1, r3, 1        ; lo = mid + 1
    check:
        blt  r1, r2, search
    found:
        addi r10, r10, 1
        blt  r10, r11, outer
        halt
    """
    memory = {base + 8 * i: 2 * i for i in range(n)}
    return assemble(source), memory


def partition_program(n: int = 1024) -> Tuple[Program, Dict[int, int]]:
    """Hoare-style partition pass (the quicksort inner loop): branchy,
    with stores close behind data-dependent loads."""
    base = 0xF0_0000
    source = f"""
        li   r1, {base}       ; array
        li   r2, 0            ; write cursor (store index)
        li   r3, 0            ; read index
        li   r4, {n}
        li   r5, {n // 2}     ; pivot value ~ median of 0..n-1
    loop:
        slli r6, r3, 3
        add  r6, r6, r1
        ld   r7, 0(r6)        ; a[i]
        bge  r7, r5, skip     ; if a[i] < pivot: swap into front
        slli r8, r2, 3
        add  r8, r8, r1
        ld   r9, 0(r8)        ; a[w]
        st   r7, 0(r8)        ; a[w] = a[i]
        st   r9, 0(r6)        ; a[i] = old a[w]
        addi r2, r2, 1
    skip:
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    # Deterministically scrambled values 0..n-1.
    memory = {}
    state = 99
    values = list(range(n))
    for i in range(n - 1, 0, -1):
        state = (state * 48271) % 2147483647
        j = state % (i + 1)
        values[i], values[j] = values[j], values[i]
    for i, v in enumerate(values):
        memory[base + 8 * i] = v
    return assemble(source), memory


#: All kernels by name: () -> (Program, memory image)
KERNELS = {
    "pointer_chase": pointer_chase_program,
    "daxpy": daxpy_program,
    "reduction": reduction_program,
    "histogram": histogram_program,
    "stencil3": stencil3_program,
    "matmul": matmul_program,
    "memcpy": memcpy_program,
    "binary_search": binary_search_program,
    "partition": partition_program,
}


def kernel_trace(name: str, **kwargs) -> List[DynInst]:
    """Assemble, functionally execute and return the trace of a kernel."""
    program, memory = KERNELS[name](**kwargs)
    return list(Emulator(program, memory=memory).run())
