"""Synthetic application generator.

A :class:`WorkloadProfile` describes an application statistically; a
:class:`SyntheticWorkload` expands it into a deterministic dynamic
instruction stream in two phases:

1. **Static phase** — build a random static program: a ring of basic blocks,
   each a fixed sequence of micro-ops with fixed register wiring, memory
   "streams" (strided / random-in-footprint / pointer-chase) bound to the
   memory slots, and a branch personality (loop / biased / patterned /
   random) bound to each block-ending branch.  Static structure repeats every
   iteration, giving predictors and slice tables real PC recurrence.

2. **Dynamic phase** — walk the ring repeatedly, resolving addresses from
   per-stream state and branch outcomes from each branch's personality,
   emitting :class:`~repro.isa.instruction.DynInst` records until the
   requested instruction count is reached.

Everything is driven by one seeded :class:`random.Random`, so a profile
always produces bit-identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.params import NUM_FP_ARCH, NUM_INT_ARCH
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass

# Memory stream behaviours.
STREAM_STRIDE = "stride"
STREAM_RANDOM = "random"
STREAM_CHASE = "chase"

# Branch personalities.
BR_LOOP = "loop"        # block-repeat back-edge: taken (reps-1)/reps of the time
BR_BIASED = "biased"    # strongly biased conditional, easy to predict
BR_PATTERN = "pattern"  # short periodic pattern, learnable by TAGE
BR_RANDOM = "random"    # coin flip at the profile's bias - hard to predict


@dataclass
class WorkloadProfile:
    """Statistical description of one synthetic application."""

    name: str
    seed: int = 1
    n_instrs: int = 30_000

    # Instruction mix (fractions of all non-branch slots).
    frac_mem: float = 0.35          # loads + stores
    frac_store: float = 0.30        # share of memory ops that are stores
    frac_fp: float = 0.10           # share of compute ops that are FP
    frac_mul: float = 0.06          # share of INT compute that is multiply
    frac_div: float = 0.01          # share of INT compute that is divide
    frac_fp_div: float = 0.03       # share of FP compute that is divide

    # Static shape.
    n_blocks: int = 24
    block_len_mean: int = 9         # non-branch ops per block (>=2)
    loop_block_frac: float = 0.25   # blocks that self-repeat (inner loops)
    loop_reps_mean: int = 4

    # Dependence wiring.
    serial_frac: float = 0.22       # src = most recent writer (serial chains)
    dep_geom_p: float = 0.30        # geometric(P) dependence distance otherwise
    load_consumer_frac: float = 0.30  # compute ops wired onto the latest load
    stale_src_frac: float = 0.35    # sources reading long-stable registers
    addr_stable_frac: float = 0.70  # load/store bases that are stable regs

    # Memory behaviour.
    footprint_kib: int = 256
    rand_locality: float = 0.85     # random-stream accesses near the last one
    n_mem_streams: int = 6
    frac_stream: float = 0.50       # strided streams (cache friendly)
    frac_random: float = 0.35       # uniform within the footprint
    frac_chase: float = 0.15        # serialised pointer chasing
    chase_region_kib: int = 512
    alias_frac: float = 0.05        # loads reading a just-stored address
    alias_distance: int = 4         # slots between the store and aliasing load

    # Branch behaviour.
    br_random_frac: float = 0.10    # block-ending branches that are coin flips
    br_pattern_frac: float = 0.25
    br_bias: float = 0.90           # taken-probability of biased branches
    br_pattern_period: int = 5

    def __post_init__(self) -> None:
        if not 0.999 <= self.frac_stream + self.frac_random + self.frac_chase <= 1.001:
            raise ValueError(
                f"{self.name}: stream/random/chase fractions must sum to 1")


# Hand-rolled __slots__ (not @dataclass(slots=True), which needs 3.10):
# these three are read on every generated instruction, so they stay
# __dict__-free like DynInst/InflightInst — pinned by the slots test.
class _MemStream:
    __slots__ = ("kind", "base", "span", "stride", "addr", "hot")

    def __init__(self, kind: str, base: int, span: int,
                 stride: int = 64, addr: int = 0) -> None:
        self.kind = kind
        self.base = base
        self.span = span            # bytes
        self.stride = stride
        self.addr = addr
        self.hot: list = []         # recently-touched addresses


class _Slot:
    """One static micro-op slot inside a block."""

    __slots__ = ("pc", "op", "dst", "srcs", "stream", "alias_store",
                 "alias_of")

    def __init__(self, pc: int, op: OpClass) -> None:
        self.pc = pc
        self.op = op
        self.dst: Optional[int] = None
        self.srcs: tuple = ()
        self.stream: Optional[int] = None  # memory stream index
        self.alias_store = False           # store opening an alias pair
        self.alias_of: Optional[int] = None  # paired store's slot index


class _Block:
    __slots__ = ("pc", "slots", "branch_pc", "br_kind", "loop_reps",
                 "pattern_phase", "next_pc")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.slots: List[_Slot] = []
        self.branch_pc = 0
        self.br_kind = BR_BIASED
        self.loop_reps = 1
        self.pattern_phase = 0
        self.next_pc = 0            # fall-through target (next block)


class SyntheticWorkload:
    """Deterministic dynamic-trace generator for one profile."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed * 0x5DEECE66D + 0xB)
        self._build_streams()
        self._build_static()

    # -- static construction ------------------------------------------------

    def _build_streams(self) -> None:
        p = self.profile
        rng = self.rng
        self.streams: List[_MemStream] = []
        footprint = p.footprint_kib * 1024
        kinds = ([STREAM_STRIDE] * max(1, round(p.frac_stream * p.n_mem_streams))
                 + [STREAM_RANDOM] * max(0, round(p.frac_random * p.n_mem_streams))
                 + [STREAM_CHASE] * max(0, round(p.frac_chase * p.n_mem_streams)))
        if p.frac_chase > 0 and STREAM_CHASE not in kinds:
            kinds.append(STREAM_CHASE)
        if p.frac_random > 0 and STREAM_RANDOM not in kinds:
            kinds.append(STREAM_RANDOM)
        # The profile's footprint is the application's *total* data working
        # set: split it across the non-chase streams so small-footprint apps
        # really fit in the caches.
        n_regular = max(1, sum(1 for k in kinds if k != STREAM_CHASE))
        span_regular = max(4096, footprint // n_regular)
        offset = 0x10_0000
        for kind in kinds:
            span = (max(4096, p.chase_region_kib * 1024)
                    if kind == STREAM_CHASE else span_regular)
            stride = rng.choice((8, 8, 8, 16, 64))
            stream = _MemStream(kind=kind, base=offset, span=span,
                                stride=stride, addr=offset)
            offset += span + 0x1_0000
            self.streams.append(stream)
        # Weights used when binding memory slots to streams.
        self._stream_weights = []
        for stream in self.streams:
            if stream.kind == STREAM_STRIDE:
                self._stream_weights.append(p.frac_stream)
            elif stream.kind == STREAM_RANDOM:
                self._stream_weights.append(p.frac_random)
            else:
                self._stream_weights.append(p.frac_chase)

    def _pick_stream(self) -> int:
        return self.rng.choices(range(len(self.streams)),
                                weights=self._stream_weights)[0]

    def _build_static(self) -> None:
        p = self.profile
        rng = self.rng
        self.blocks: List[_Block] = []
        pc = 0x1000
        # Register pools.  A few registers are reserved as *stable* names
        # (base pointers, loop bounds, constants): they are read often but
        # written rarely, so reading them never blocks — the dominant
        # operand pattern in real code and the fuel for speculative issue.
        self._int_pool = list(range(1, NUM_INT_ARCH - 4))
        self._stable_int = list(range(NUM_INT_ARCH - 4, NUM_INT_ARCH))
        self._fp_pool = list(range(NUM_INT_ARCH, NUM_INT_ARCH + NUM_FP_ARCH - 2))
        self._stable_fp = list(range(NUM_INT_ARCH + NUM_FP_ARCH - 2,
                                     NUM_INT_ARCH + NUM_FP_ARCH))
        recent_int: List[int] = [1, 2, 3]
        recent_fp: List[int] = [NUM_INT_ARCH]
        last_load_dst: Optional[int] = None
        # Per-stream "pointer" register carrying chase-load results.
        chase_reg = {i: self._int_pool[(3 + i) % len(self._int_pool)]
                     for i, s in enumerate(self.streams) if s.kind == STREAM_CHASE}

        for b in range(p.n_blocks):
            block = _Block(pc=pc)
            length = max(2, round(rng.gauss(p.block_len_mean, 2)))
            pending_alias: List[tuple] = []  # (emit_at_index, store_slot_idx)
            for j in range(length):
                op = self._pick_op()
                slot = _Slot(pc=pc, op=op)
                pc += 4
                due_alias = next((a for a in pending_alias if a[0] <= j), None)
                if due_alias is not None and not op.is_mem:
                    # Convert this slot into the aliasing load.
                    pending_alias.remove(due_alias)
                    slot.op = OpClass.LOAD
                    slot.alias_of = due_alias[1]
                    slot.dst = self._pick_dst(False, recent_int, recent_fp)
                    slot.srcs = (self._pick_src(False, recent_int, recent_fp,
                                                last_load_dst),)
                    block.slots.append(slot)
                    last_load_dst = slot.dst
                    continue
                if op.is_mem:
                    stream_idx = self._pick_stream()
                    stream = self.streams[stream_idx]
                    slot.stream = stream_idx
                    fp = op in (OpClass.LOAD_FP, OpClass.STORE_FP)
                    if stream.kind == STREAM_CHASE and op.is_load:
                        # Pointer chase: address register is the destination
                        # of the previous load of this stream.
                        reg = chase_reg.get(stream_idx,
                                            self._int_pool[stream_idx % 8])
                        slot.srcs = (reg,)
                        slot.dst = reg
                        slot.op = OpClass.LOAD
                        block.slots.append(slot)
                        last_load_dst = reg
                        recent_int.append(reg)
                        continue
                    if rng.random() < p.addr_stable_frac:
                        base = rng.choice(self._stable_int)
                    else:
                        base = self._pick_src(False, recent_int, recent_fp, None)
                    if op.is_load:
                        slot.dst = self._pick_dst(fp, recent_int, recent_fp)
                        slot.srcs = (base,)
                        last_load_dst = slot.dst
                    else:
                        data = self._pick_src(fp, recent_int, recent_fp,
                                              last_load_dst)
                        slot.srcs = (base, data)
                        if rng.random() < p.alias_frac:
                            slot.alias_store = True
                            pending_alias.append(
                                (j + max(1, min(p.alias_distance, length - j - 1)),
                                 len(block.slots)))
                else:
                    fp = op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV)
                    n_srcs = 2
                    srcs = tuple(self._pick_src(fp, recent_int, recent_fp,
                                                last_load_dst)
                                 for _ in range(n_srcs))
                    slot.srcs = srcs
                    slot.dst = self._pick_dst(fp, recent_int, recent_fp)
                block.slots.append(slot)
                if slot.dst is not None:
                    if slot.dst >= NUM_INT_ARCH:
                        recent_fp.append(slot.dst)
                        del recent_fp[:-6]
                    else:
                        recent_int.append(slot.dst)
                        del recent_int[:-10]
            # Block-ending branch.
            block.branch_pc = pc
            pc += 4
            roll = rng.random()
            if rng.random() < p.loop_block_frac:
                block.br_kind = BR_LOOP
                block.loop_reps = max(2, round(rng.expovariate(
                    1.0 / p.loop_reps_mean)))
            elif roll < p.br_random_frac:
                block.br_kind = BR_RANDOM
            elif roll < p.br_random_frac + p.br_pattern_frac:
                block.br_kind = BR_PATTERN
                block.pattern_phase = rng.randrange(p.br_pattern_period)
            else:
                block.br_kind = BR_BIASED
            self.blocks.append(block)
        for i, block in enumerate(self.blocks):
            block.next_pc = self.blocks[(i + 1) % len(self.blocks)].pc

    def _pick_op(self) -> OpClass:
        p, rng = self.profile, self.rng
        if rng.random() < p.frac_mem:
            store = rng.random() < p.frac_store
            fp = rng.random() < p.frac_fp
            if store:
                return OpClass.STORE_FP if fp else OpClass.STORE
            return OpClass.LOAD_FP if fp else OpClass.LOAD
        if rng.random() < p.frac_fp:
            roll = rng.random()
            if roll < p.frac_fp_div:
                return OpClass.FP_DIV
            return OpClass.FP_MUL if roll < 0.5 else OpClass.FP_ADD
        roll = rng.random()
        if roll < p.frac_div:
            return OpClass.INT_DIV
        if roll < p.frac_div + p.frac_mul:
            return OpClass.INT_MUL
        return OpClass.INT_ALU

    def _pick_src(self, fp: bool, recent_int: List[int], recent_fp: List[int],
                  last_load_dst: Optional[int]) -> int:
        p, rng = self.profile, self.rng
        pool = recent_fp if fp else recent_int
        if rng.random() < p.stale_src_frac:
            return rng.choice(self._stable_fp if fp else self._stable_int)
        if (last_load_dst is not None and rng.random() < p.load_consumer_frac
                and (last_load_dst >= NUM_INT_ARCH) == fp):
            return last_load_dst
        if rng.random() < p.serial_frac and pool:
            return pool[-1]
        if not pool:
            return NUM_INT_ARCH if fp else 1
        distance = min(len(pool), 1 + int(rng.expovariate(p.dep_geom_p)))
        return pool[-distance]

    def _pick_dst(self, fp: bool, recent_int: List[int],
                  recent_fp: List[int]) -> int:
        rng = self.rng
        if rng.random() < 0.02:
            # Occasionally refresh a stable register (pointer bump etc.).
            return rng.choice(self._stable_fp if fp else self._stable_int)
        if fp:
            return rng.choice(self._fp_pool)
        return rng.choice(self._int_pool)

    # -- dynamic generation --------------------------------------------------

    def generate(self, n_instrs: Optional[int] = None) -> List[DynInst]:
        """Produce the dynamic trace (``n_instrs`` overrides the profile)."""
        p = self.profile
        limit = n_instrs if n_instrs is not None else p.n_instrs
        rng = random.Random(p.seed * 0x2545F491 + 0x1F)
        out: List[DynInst] = []
        iteration = 0
        alias_addr: dict = {}
        while len(out) < limit:
            for block in self.blocks:
                reps = block.loop_reps if block.br_kind == BR_LOOP else 1
                for rep in range(reps):
                    for idx, slot in enumerate(block.slots):
                        dyn = DynInst(pc=slot.pc, op=slot.op, srcs=slot.srcs,
                                      dst=slot.dst)
                        if slot.op.is_mem:
                            dyn.mem_size = 8
                            if slot.alias_of is not None:
                                dyn.mem_addr = alias_addr.get(
                                    (id(block), slot.alias_of), 0x10_0000)
                            else:
                                dyn.mem_addr = self._next_addr(slot.stream, rng)
                                if slot.alias_store:
                                    alias_addr[(id(block), idx)] = dyn.mem_addr
                        out.append(dyn)
                        if len(out) >= limit:
                            return out
                    taken = self._branch_outcome(block, rep, reps, iteration, rng)
                    target = block.pc if block.br_kind == BR_LOOP else block.next_pc
                    dyn = DynInst(pc=block.branch_pc, op=OpClass.BRANCH,
                                  srcs=self._branch_srcs(block), taken=taken,
                                  target=target if taken else None)
                    if taken:
                        dyn.target = target
                    out.append(dyn)
                    if len(out) >= limit:
                        return out
                    if block.br_kind == BR_LOOP and not taken:
                        break
            iteration += 1
        return out

    def _branch_srcs(self, block: _Block) -> tuple:
        # Branches test the most recent integer results in the block, so
        # their resolution waits on real work.
        for slot in reversed(block.slots):
            if slot.dst is not None and slot.dst < NUM_INT_ARCH:
                return (slot.dst,)
        return (1,)

    def _branch_outcome(self, block: _Block, rep: int, reps: int,
                        iteration: int, rng: random.Random) -> bool:
        p = self.profile
        if block.br_kind == BR_LOOP:
            return rep < reps - 1
        if block.br_kind == BR_RANDOM:
            return rng.random() < 0.5
        if block.br_kind == BR_PATTERN:
            return ((iteration + block.pattern_phase)
                    % p.br_pattern_period) != 0
        return rng.random() < p.br_bias

    def _next_addr(self, stream_idx: Optional[int], rng: random.Random) -> int:
        if stream_idx is None:
            stream_idx = 0
        stream = self.streams[stream_idx]
        if stream.kind == STREAM_STRIDE:
            stream.addr += stream.stride
            if stream.addr >= stream.base + stream.span:
                stream.addr = stream.base
            return stream.addr
        if stream.kind == STREAM_RANDOM:
            hot = stream.hot
            if hot and rng.random() < self.profile.rand_locality:
                # Temporal/spatial locality: revisit a hot address, possibly
                # a neighbouring word on the same line.
                addr = hot[rng.randrange(len(hot))] + (rng.randrange(8) << 3)
            else:
                addr = stream.base + (rng.randrange(stream.span) & ~7)
                hot.append(addr & ~63)
                if len(hot) > 24:
                    del hot[0]
            stream.addr = addr
            return addr
        # Pointer chase: deterministic scrambled walk touching a new cache
        # line each step.
        nxt = (stream.addr * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & ((1 << 63) - 1)
        stream.addr = stream.base + ((nxt % stream.span) & ~63)
        return stream.addr


def generate_trace(profile: WorkloadProfile,
                   n_instrs: Optional[int] = None) -> Sequence[DynInst]:
    """Convenience: build the workload and produce its trace."""
    return SyntheticWorkload(profile).generate(n_instrs)
