"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                     show the 25 synthetic applications
``run --core X --app Y``     simulate one (core, app) pair and print stats
``compare --app Y``          all Table I cores on one application
``trace --core X --app Y``   instrumented run: events, metrics, Perfetto
                             export, simulator self-profile
``explain Y --core X``       cycle accounting: CPI stack, critical path,
                             and (with ``--vs Z``) a schedule diff
``figure figN``              regenerate one figure of the paper
``sweep [out.txt]``          all figures, checkpointed + failure-tolerant
                             (``--workers N --store DIR`` parallelises
                             through the simulation service pool + store)
``serve``                    run the simulation service (HTTP JSON API;
                             journaled, drains gracefully on SIGTERM)
``store scrub``              integrity-walk a result store, quarantine
                             mismatches (``--repair`` recomputes them)
``submit``                   submit jobs to a running service
"""

from __future__ import annotations

import argparse
import sys

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.harness.runner import Runner
from repro.harness.tables import format_table
from repro.workloads.suite import SUITE, get_profile

_CORES = {
    "ino": make_ino_config,
    "casino": make_casino_config,
    "ooo": make_ooo_config,
    "lsc": make_lsc_config,
    "freeway": make_freeway_config,
    "specino": make_specino_config,
}

_FIGURES = {
    "fig2": "repro.experiments.fig2_specino_potential",
    "fig6": "repro.experiments.fig6_ipc",
    "fig7": "repro.experiments.fig7_renaming",
    "fig8": "repro.experiments.fig8_memdisambig",
    "fig9": "repro.experiments.fig9_area_energy",
    "fig10": "repro.experiments.fig10_design_space",
    "fig11": "repro.experiments.fig11_wider_issue",
}


def _cmd_list(_args) -> int:
    rows = [[p.name, p.n_instrs, p.footprint_kib,
             f"{p.frac_mem:.2f}", f"{p.frac_fp:.2f}"]
            for p in SUITE.values()]
    print(format_table(["app", "instrs", "footprint KiB", "mem frac",
                        "fp frac"], rows))
    return 0


def _load_cfg(args):
    if getattr(args, "config", None):
        from repro.common.config_io import load_core_config
        return load_core_config(args.config)
    return _CORES[args.core]()


def _result_dict(res, n_instrs: int, warmup: int, profile=None,
                 runner=None) -> dict:
    """Machine-readable record of one RunResult (with provenance).

    Carries the fast-forward telemetry (spans jumped, cycles elided by
    the quiescence skipper) and, when the producing ``runner`` is
    passed, its trace-cache hit/miss counters — observability fields
    only, never part of the counter digest.
    """
    from repro.obs.provenance import run_manifest
    doc = {
        "core": res.core.name, "app": res.app, "ipc": res.ipc,
        "n_instrs": n_instrs, "warmup": warmup,
        "energy_j": res.energy.total_j, "epi_nj": res.energy.epi_nj,
        "ff_spans": res.ff_spans,
        "ff_skipped_cycles": res.ff_skipped_cycles,
        "counters": res.stats.as_dict(),
        "manifest": run_manifest(res.core, profile, stats=res.stats),
    }
    if runner is not None:
        doc["trace_cache"] = runner.trace_cache_stats()
    return doc


def _render_simulation_error(exc) -> str:
    """Human-readable rendering of SimulationError.details for stderr.

    Users of ``run``/``compare`` get the structured diagnostics (which
    check fired, at what cycle, the core's debug snapshot) instead of a
    raw traceback, and scripts get a non-zero exit status.
    """
    details = dict(getattr(exc, "details", {}) or {})
    lines = [f"error: simulation failed: {exc}"]
    for field in ("core", "check", "cycle"):
        if field in details:
            lines.append(f"  {field}: {details.pop(field)}")
    debug = details.pop("debug", None)
    for key in sorted(details):
        lines.append(f"  {key}: {details[key]}")
    if debug:
        lines.append(f"  debug: {debug}")
    return "\n".join(lines)


def _cmd_run(args) -> int:
    from repro.engine.core_base import SimulationError
    cfg = _load_cfg(args)
    runner = Runner(n_instrs=args.n, warmup=args.warmup,
                    sanitize=True if args.sanitize else None)
    profile = get_profile(args.app)
    try:
        res = runner.run(cfg, profile)
    except SimulationError as exc:
        print(_render_simulation_error(exc), file=sys.stderr)
        return 3
    stats = res.stats
    print(f"{args.core} on {args.app}: IPC {res.ipc:.3f} "
          f"({int(stats.committed)} instrs, {int(stats.cycles)} cycles)")
    print(f"energy {res.energy.total_j * 1e6:.2f} uJ "
          f"({res.energy.epi_nj:.2f} nJ/inst)")
    interesting = ("issued_spec", "issued_iq", "siq_passes", "sq_searches",
                   "osca_search_skips", "mem_order_violations",
                   "l1d_misses", "dram_accesses", "bp_mispredicts")
    rows = [[k, int(stats.get(k))] for k in interesting if k in stats]
    if rows:
        print(format_table(["counter", "value"], rows))
    if args.json:
        from repro.harness.export import write_json
        write_json(_result_dict(res, args.n, args.warmup, profile,
                                runner=runner),
                   args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_compare(args) -> int:
    from repro.engine.core_base import SimulationError
    from repro.obs.accounting import format_stack_table
    runner = Runner(n_instrs=args.n, warmup=args.warmup,
                    sanitize=True if args.sanitize else None,
                    accounting=True, sample_interval=args.interval)
    profile = get_profile(args.app)
    rows = []
    base = None
    results = {}
    reports = {}
    stalls = {}
    for name in ("ino", "lsc", "freeway", "casino", "ooo"):
        try:
            res = runner.run(_CORES[name](), profile)
        except SimulationError as exc:
            print(_render_simulation_error(exc), file=sys.stderr)
            return 3
        if base is None:
            base = res
        rows.append([name, res.ipc, res.ipc / base.ipc,
                     res.energy.total_j / base.energy.total_j])
        results[name] = _result_dict(res, args.n, args.warmup, profile,
                                     runner=runner)
        results[name]["speedup"] = res.ipc / base.ipc
        if res.accounting:
            reports[name] = results[name]["accounting"] = res.accounting
        if res.stalls is not None:
            stalls[name] = results[name]["stalls"] = res.stalls
    print(f"{args.app} ({profile.n_instrs} instrs)")
    print(format_table(["core", "IPC", "speedup", "energy (rel)"], rows))
    if reports:
        headers, stack_rows = format_stack_table(reports)
        print("\nCPI stack (cycles per committed instruction):")
        print(format_table(headers, stack_rows, float_fmt="{:.3f}"))
    if stalls:
        keys = sorted({k for per_core in stalls.values() for k in per_core})
        stall_rows = [[name] + [int(stalls[name].get(k, 0)) for k in keys]
                      for name in stalls]
        print("\nsampled stall counters:")
        print(format_table(["core"] + keys, stall_rows))
    if args.json:
        from repro.harness.export import write_json
        write_json({"app": args.app, "baseline": "ino", "cores": results},
                   args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace_service(args) -> int:
    """Render a service journal's per-job spans as a Perfetto trace:
    per-job lifecycle slices with queued/running segments, instant
    markers for lease reclaims and worker deaths, and queue-depth /
    jobs-running counter tracks."""
    from repro.harness.export import write_json
    from repro.obs.perfetto import build_service_trace
    from repro.obs.telemetry import TERMINAL_SPAN_EVENTS, fold_spans
    from repro.service.journal import Journal

    journal = Journal(args.service, sync="off")
    try:
        spans = fold_spans(journal.records()).spans()
    finally:
        journal.close()
    if not spans:
        print(f"error: no job spans in {args.service} (empty journal, "
              "or one written before journal schema 2)", file=sys.stderr)
        return 1
    terminal = sum(1 for span in spans.values()
                   if any(e["ev"] in TERMINAL_SPAN_EVENTS
                          for e in span["events"]))
    out = args.perfetto or "service-trace.json"
    write_json(build_service_trace(spans), out)
    print(f"{len(spans)} job span(s), {terminal} with a terminal event")
    print(f"wrote {out} (open in https://ui.perfetto.dev)")
    return 0


def _cmd_trace(args) -> int:
    """Instrumented single run: event tracing, interval metrics, Perfetto
    export and simulator self-profiling (all read-only — the simulated
    timing matches an uninstrumented ``run``)."""
    import time

    if args.service:
        return _cmd_trace_service(args)

    from repro.cores import build_core
    from repro.harness.tables import format_table as _table
    from repro.obs.events import Tracer
    from repro.obs.metrics import MetricsSampler
    from repro.obs.perfetto import build_trace
    from repro.obs.profile import SelfProfiler
    from repro.obs.provenance import run_manifest
    from repro.workloads.generator import SyntheticWorkload

    cfg = _load_cfg(args)
    profile = get_profile(args.app)
    kinds = args.kinds.split(",") if args.kinds else None
    if kinds:
        from repro.obs.events import EVENT_KINDS
        unknown = sorted(set(kinds) - set(EVENT_KINDS))
        if unknown:
            print(f"error: unknown event kind(s): {', '.join(unknown)}\n"
                  f"valid kinds: {', '.join(EVENT_KINDS)}", file=sys.stderr)
            return 2
    trace = SyntheticWorkload(profile).generate(args.n)
    seq_min = seq_max = None
    if args.seq_range:
        lo, _, hi = args.seq_range.partition(":")
        seq_min = int(lo) if lo else None
        seq_max = int(hi) if hi else None
    tracer = Tracer(capacity=args.events, kinds=kinds,
                    seq_min=seq_min, seq_max=seq_max)
    sampler = MetricsSampler(interval=args.interval)
    profiler = SelfProfiler() if args.profile else None
    core = build_core(cfg)
    start = time.perf_counter()
    stats = core.run(trace, warmup=args.warmup, record_schedule=True,
                     sanitize=True if args.sanitize else None,
                     tracer=tracer, sampler=sampler, profiler=profiler)
    wall = time.perf_counter() - start
    manifest = run_manifest(cfg, profile, stats=stats, wall_time=wall)
    print(f"{cfg.name} on {args.app}: IPC {stats.ipc:.3f} "
          f"({int(stats.committed)} instrs, {int(stats.cycles)} cycles, "
          f"{wall:.2f}s host)")
    print(f"provenance: config {manifest['config_hash']} "
          f"seed {manifest['trace_seed']} git {manifest['git_rev']} "
          f"counters {manifest['counter_digest']}")
    rows = [[kind, count] for kind, count in sorted(tracer.counts.items())]
    print(_table(["event", "count"], rows) if rows else "(no events)")
    if tracer.dropped:
        print(f"(ring buffer kept {len(tracer)} of {tracer.emitted} "
              f"events; oldest {tracer.dropped} dropped)")
    if args.perfetto:
        from repro.harness.export import write_json
        doc = build_trace(core.schedule, tracer=tracer, sampler=sampler,
                          core_name=cfg.name)
        doc["otherData"]["manifest"] = manifest
        write_json(doc, args.perfetto)
        print(f"wrote {args.perfetto} "
              f"(open in https://ui.perfetto.dev)")
    if args.metrics:
        from repro.harness.export import write_json
        report = sampler.report()
        report["manifest"] = manifest
        write_json(report, args.metrics)
        print(f"wrote {args.metrics}")
    if profiler is not None:
        print(profiler.report())
    return 0


def _cmd_explain(args) -> int:
    """Explain where the cycles go: live CPI stack, post-mortem critical
    path, per-edge-type slack — and, with ``--vs``, an instruction-aligned
    schedule diff against a second core on the *same* trace."""
    from repro.cores import build_core
    from repro.obs.accounting import COMPONENTS, CycleAccounting, \
        format_stack_table
    from repro.obs.critpath import critical_path, edge_slack
    from repro.obs.schedulediff import diff_schedules, format_diff_report
    from repro.workloads.generator import SyntheticWorkload

    profile = get_profile(args.app)
    trace = SyntheticWorkload(profile).generate(args.n)

    def simulate(core_name):
        core = build_core(_CORES[core_name]())
        acct = CycleAccounting()
        stats = core.run(trace, warmup=args.warmup, record_schedule=True,
                         sanitize=True if args.sanitize else None,
                         accounting=acct)
        hit = core.hier.l1d.cfg.latency
        return {"stats": stats, "schedule": core.schedule,
                "accounting": acct.report(), "hit_latency": hit}

    runs = {args.core: simulate(args.core)}
    if args.vs:
        if args.vs == args.core:
            print("error: --vs core must differ from --core",
                  file=sys.stderr)
            return 2
        runs[args.vs] = simulate(args.vs)

    for name, run in runs.items():
        stats = run["stats"]
        print(f"{name} on {args.app}: IPC {stats.ipc:.3f} "
              f"({int(stats.committed)} instrs, {int(stats.cycles)} cycles)")
    reports = {name: run["accounting"] for name, run in runs.items()}
    headers, stack_rows = format_stack_table(reports)
    print("\nCPI stack (cycles per committed instruction):")
    print(format_table(headers, stack_rows, float_fmt="{:.3f}"))

    for name, run in runs.items():
        run["critical_path"] = cp = critical_path(
            run["schedule"], hit_latency=run["hit_latency"])
        run["edge_slack"] = slack = edge_slack(
            run["schedule"], hit_latency=run["hit_latency"])
        print(f"\n{name} critical path: {cp['length']} cycles, "
              f"{len(cp['path'])} instructions")
        rows = [[edge, cp["breakdown"][edge],
                 100.0 * cp["breakdown"][edge] / max(cp["length"], 1)]
                for edge in sorted(cp["breakdown"],
                                   key=cp["breakdown"].get, reverse=True)
                if cp["breakdown"][edge]]
        print(format_table(["edge type", "cycles", "% of path"], rows,
                           float_fmt="{:.1f}"))
        hot = sorted(cp["path"],
                     key=lambda s: s["exec"] + s["memory"] + s["order_wait"],
                     reverse=True)[:args.top]
        if hot:
            print(f"costliest path instructions (top {len(hot)}):")
            print(format_table(
                ["inst", "issue", "done", "exec", "mem", "order wait", "via"],
                [[s["label"], s["issue_at"], s["done_at"], s["exec"],
                  s["memory"], s["order_wait"], s["via"]] for s in hot]))
        slack_rows = [[edge, slack[edge]] for edge in sorted(
            slack, key=slack.get, reverse=True) if slack[edge]]
        print(f"{name} whole-schedule slack by edge type:")
        print(format_table(["edge type", "cycles"], slack_rows))

    diff = None
    if args.vs:
        diff = diff_schedules(runs[args.core]["schedule"],
                              runs[args.vs]["schedule"],
                              name_a=args.core, name_b=args.vs,
                              top=args.top,
                              hit_latency=runs[args.core]["hit_latency"])
        print()
        print(format_diff_report(diff))

    if args.json:
        from repro.harness.export import write_json
        doc = {"app": args.app, "n_instrs": args.n, "warmup": args.warmup,
               "core": args.core, "vs": args.vs,
               "cores": {name: {"ipc": run["stats"].ipc,
                                "cycles": int(run["stats"].cycles),
                                "accounting": run["accounting"],
                                "critical_path": run["critical_path"],
                                "edge_slack": run["edge_slack"]}
                         for name, run in runs.items()}}
        if diff is not None:
            doc["diff"] = diff
        write_json(doc, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        import csv
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["core", "component", "cycles", "fraction",
                             "cpi_contribution"])
            for name, run in runs.items():
                report = run["accounting"]
                for comp in COMPONENTS:
                    writer.writerow([
                        name, comp, report["components"][comp],
                        f"{report['fractions'][comp]:.6f}",
                        f"{report['cpi_stack'][comp]:.6f}"])
        print(f"wrote {args.csv}")
    return 0


def _cmd_characterize(args) -> int:
    from repro.workloads.characterize import characterize
    from repro.workloads.generator import SyntheticWorkload
    profile = get_profile(args.app)
    trace = SyntheticWorkload(profile).generate(args.n)
    measured = characterize(trace)
    rows = [[key, value] for key, value in measured.as_dict().items()]
    print(f"{args.app} ({args.n} instructions)")
    print(format_table(["metric", "value"], rows, float_fmt="{:.4f}"))
    return 0


def _cmd_figure(args) -> int:
    import importlib
    module = importlib.import_module(_FIGURES[args.name])
    if args.json:
        from repro.harness.export import write_json
        if args.name == "fig10":
            results = {"iq_sweep": module.run_iq_sweep(),
                       "ws_so_sweep": module.run_ws_so_sweep()}
        else:
            results = module.run()
        write_json(results, args.json)
        print(f"wrote {args.json}")
    else:
        module.main()
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import run_cli
    return run_cli(output=args.output, checkpoint=args.checkpoint,
                   resume=not args.no_resume, retries=args.retries,
                   sanitize=True if args.sanitize else None,
                   workers=args.workers, store=args.store)


def _cmd_serve(args) -> int:
    journal_sync = None if args.journal == "none" else args.journal
    if args.role == "coordinator":
        from repro.service.cluster.frontdoor import serve_coordinator
        return serve_coordinator(host=args.host, port=args.port,
                                 store_dir=args.store,
                                 max_queue=args.queue_size,
                                 journal_sync=journal_sync,
                                 telemetry=not args.no_telemetry,
                                 suspect_after_s=args.suspect_after,
                                 dead_after_s=args.dead_after,
                                 drain_timeout_s=args.drain_timeout)
    if args.role == "node":
        if not args.coordinator:
            print("error: --role node requires --coordinator URL",
                  file=sys.stderr)
            return 2
        from repro.service.cluster.node import run_node
        run_node(args.coordinator, args.store, node_id=args.node_id,
                 workers=args.workers or 1, job_timeout_s=args.timeout)
        return 0
    from repro.service.server import serve
    return serve(host=args.host, port=args.port, workers=args.workers,
                 store_dir=args.store, max_queue=args.queue_size,
                 timeout=args.timeout,
                 drain_timeout_s=args.drain_timeout,
                 journal_sync=journal_sync,
                 telemetry=not args.no_telemetry,
                 stats_interval=args.stats_interval)


def _cmd_store(args) -> int:
    from repro.service.store import ResultStore
    store = ResultStore(args.store)
    report = store.scrub()
    results = report["results"]
    print(f"results: {results['checked']} checked, {results['ok']} ok, "
          f"{len(results['quarantined'])} quarantined")
    if "traces" in report:
        traces = report["traces"]
        print(f"traces:  {traces['checked']} checked, {traces['ok']} ok, "
              f"{traces['deleted']} corrupt deleted")
    if args.repair and report["quarantine_backlog"]:
        from repro.service.pool import SimulationPool
        from repro.service.scrub import repair_quarantined
        with SimulationPool(n_workers=args.workers, store=store) as pool:
            repair = repair_quarantined(store, pool)
        report["repair"] = repair
        print(f"repair:  {repair['repaired']} recomputed, "
              f"{repair['failed']} failed, "
              f"{len(repair['unrepairable'])} unrepairable")
        report["quarantine_backlog"] = len(store.quarantined_paths())
    if args.json:
        from repro.harness.export import write_json
        write_json(report, args.json)
        print(f"wrote {args.json}")
    backlog = report["quarantine_backlog"]
    if backlog:
        print(f"{backlog} entr{'y' if backlog == 1 else 'ies'} remain "
              "quarantined (inspect <store>/quarantine/)")
    return 1 if backlog else 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceBusyError, ServiceClient, \
        ServiceError, ServiceUnavailableError

    jobs = []
    if args.batch:
        for pair in args.batch.split(","):
            core, _, app = pair.strip().partition(":")
            if not core or not app:
                print(f"error: bad --batch entry {pair!r} "
                      "(expected core:app)", file=sys.stderr)
                return 2
            jobs.append({"core": core, "app": app})
    else:
        jobs.append({"core": args.core, "app": args.app})
    for job in jobs:
        job.update({"n": args.n, "warmup": args.warmup,
                    "priority": args.priority})

    client = ServiceClient(args.url)
    try:
        accepted = client.submit(jobs, retries_on_busy=args.retries_on_busy,
                                 deadline_s=args.deadline,
                                 retry_connect=args.retries_on_busy > 0)
    except ServiceUnavailableError as exc:
        print(f"error: service unavailable after {exc.attempts} "
              f"attempt(s): {exc.last_error}", file=sys.stderr)
        return 4
    except ServiceBusyError as exc:
        print(f"error: service busy: {exc} "
              f"(retry after {exc.retry_after_s:.0f}s)", file=sys.stderr)
        return 4
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    for entry in accepted:
        cached = " (cached)" if entry.get("cached") else ""
        print(f"{entry['id']}: {entry['core']}/{entry['app']} "
              f"{entry['status']}{cached} key={entry['key']}")
    if not args.wait:
        return 0

    finished = client.wait([e["id"] for e in accepted],
                           timeout_s=args.wait_timeout)
    rows = []
    failed = 0
    for entry in accepted:
        final = finished[entry["id"]]
        if final["status"] != "done":
            failed += 1
            rows.append([final["core"], final["app"], final["status"],
                         final.get("error", "?")])
            continue
        record = client.result(final["key"])["record"]
        rows.append([final["core"], final["app"],
                     f"{record['ipc']:.3f}",
                     "cached" if entry.get("cached") else "computed"])
    print(format_table(["core", "app", "IPC", "via"], rows))
    if args.json:
        from repro.harness.export import write_json
        write_json({"jobs": [finished[e["id"]] for e in accepted],
                    "stats": client.stats()}, args.json)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="CASINO core reproduction (HPCA 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the synthetic applications")

    run_p = sub.add_parser("run", help="simulate one (core, app) pair")
    run_p.add_argument("--core", choices=sorted(_CORES), default="casino")
    run_p.add_argument("--config", metavar="JSON", default=None,
                       help="load the core config from a JSON file instead")
    run_p.add_argument("--app", default="milc")
    run_p.add_argument("-n", type=int, default=24_000)
    run_p.add_argument("--warmup", type=int, default=6_000)
    run_p.add_argument("--sanitize", action="store_true",
                       help="check microarchitectural invariants every cycle")
    run_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write stats + provenance as JSON")

    cmp_p = sub.add_parser("compare", help="all cores on one application")
    cmp_p.add_argument("--app", default="milc")
    cmp_p.add_argument("-n", type=int, default=24_000)
    cmp_p.add_argument("--warmup", type=int, default=6_000)
    cmp_p.add_argument("--sanitize", action="store_true",
                       help="check microarchitectural invariants every cycle")
    cmp_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write per-core stats + provenance as JSON")
    cmp_p.add_argument("--interval", type=int, default=200,
                       help="stall-counter sampling interval in cycles")

    exp_p = sub.add_parser(
        "explain", help="cycle accounting: CPI stack, critical path, "
                        "schedule diff")
    exp_p.add_argument("app", help="application to explain")
    exp_p.add_argument("--core", choices=sorted(_CORES), default="casino")
    exp_p.add_argument("--vs", choices=sorted(_CORES), default=None,
                       help="second core to diff the schedule against")
    exp_p.add_argument("-n", type=int, default=24_000)
    exp_p.add_argument("--warmup", type=int, default=6_000)
    exp_p.add_argument("--top", type=int, default=10,
                       help="instructions to show in path/diff rankings")
    exp_p.add_argument("--sanitize", action="store_true",
                       help="check microarchitectural invariants every cycle")
    exp_p.add_argument("--json", metavar="PATH", default=None,
                       help="write the full report (stacks, paths, diff)")
    exp_p.add_argument("--csv", metavar="PATH", default=None,
                       help="write the CPI-stack components as CSV")

    trace_p = sub.add_parser(
        "trace", help="instrumented run: events, metrics, Perfetto export, "
                      "self-profile")
    trace_p.add_argument("--core", choices=sorted(_CORES), default="casino")
    trace_p.add_argument("--config", metavar="JSON", default=None,
                         help="load the core config from a JSON file instead")
    trace_p.add_argument("--app", default="milc")
    trace_p.add_argument("-n", type=int, default=24_000)
    trace_p.add_argument("--warmup", type=int, default=6_000)
    trace_p.add_argument("--sanitize", action="store_true",
                         help="check microarchitectural invariants every cycle")
    trace_p.add_argument("--perfetto", metavar="PATH", default=None,
                         help="write a Perfetto/Chrome trace-event JSON")
    trace_p.add_argument("--metrics", metavar="PATH", default=None,
                         help="write interval time-series metrics as JSON")
    trace_p.add_argument("--profile", action="store_true",
                         help="print a host wall-clock self-profile")
    trace_p.add_argument("--interval", type=int, default=100,
                         help="metrics sampling interval in cycles")
    trace_p.add_argument("--events", type=int, default=65_536,
                         help="event ring-buffer capacity")
    trace_p.add_argument("--kinds", default=None,
                         help="comma-separated event kinds to record")
    trace_p.add_argument("--seq-range", metavar="LO:HI", default=None,
                         help="only record events for this seq window")
    trace_p.add_argument("--service", metavar="JOURNAL_DIR", default=None,
                         help="instead of simulating, render a service "
                              "journal's job spans (queue waits, lease "
                              "reclaims, worker occupancy) as a Perfetto "
                              "trace (--perfetto sets the output path)")

    char_p = sub.add_parser("characterize",
                            help="measure a synthetic application's trace")
    char_p.add_argument("--app", default="milc")
    char_p.add_argument("-n", type=int, default=24_000)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("name", choices=sorted(_FIGURES))
    fig_p.add_argument("--json", metavar="PATH", default=None,
                       help="write raw results as JSON instead of a table")

    sweep_p = sub.add_parser(
        "sweep", help="run every figure with checkpointing and retries")
    sweep_p.add_argument("output", nargs="?", default="experiments_out.txt")
    sweep_p.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="checkpoint file (default <output>.ckpt.json)")
    sweep_p.add_argument("--no-resume", action="store_true",
                         help="discard any existing checkpoint and restart")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="retry-with-reseed attempts per failed run")
    sweep_p.add_argument("--sanitize", action="store_true",
                         help="check microarchitectural invariants every cycle")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help="fan simulations across N worker processes")
    sweep_p.add_argument("--store", metavar="DIR", default=None,
                         help="content-addressed result store directory "
                              "(warm reruns skip completed simulations)")

    serve_p = sub.add_parser(
        "serve", help="run the simulation service (HTTP JSON API)")
    serve_p.add_argument("--role", choices=["single", "coordinator", "node"],
                         default="single",
                         help="'single' = self-contained service (default); "
                              "'coordinator' = cluster front door + job "
                              "registry (no local workers); 'node' = worker "
                              "agent pulling leases from --coordinator")
    serve_p.add_argument("--coordinator", metavar="URL", default=None,
                         help="coordinator base URL (required for "
                              "--role node)")
    serve_p.add_argument("--node-id", default=None,
                         help="stable node identity (default: "
                              "node-<hostname>-<pid>)")
    serve_p.add_argument("--suspect-after", type=float, default=5.0,
                         metavar="S",
                         help="coordinator marks a silent node 'suspect' "
                              "after S seconds without a heartbeat")
    serve_p.add_argument("--dead-after", type=float, default=15.0,
                         metavar="S",
                         help="coordinator declares a silent node dead "
                              "after S seconds (leases reclaimed and "
                              "redelivered)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642)
    serve_p.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: CPU count)")
    serve_p.add_argument("--store", metavar="DIR", default=".repro-store",
                         help="result store directory")
    serve_p.add_argument("--queue-size", type=int, default=64,
                         help="bounded job queue (full -> HTTP 429)")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds SIGTERM/SIGINT waits for leased "
                              "jobs before exiting (queued work stays "
                              "journaled)")
    serve_p.add_argument("--journal",
                         choices=["always", "batch", "off", "none"],
                         default="batch",
                         help="write-ahead journal fsync policy; 'none' "
                              "disables journaling (volatile job state)")
    serve_p.add_argument("--stats-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="periodically log a one-line service stats "
                              "summary (queue depth, jobs, store hits)")
    serve_p.add_argument("--no-telemetry", action="store_true",
                         help="disable the metrics registry, per-job "
                              "spans and /metrics (results are "
                              "byte-identical either way)")

    store_p = sub.add_parser(
        "store", help="maintain a content-addressed result store")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    scrub_p = store_sub.add_parser(
        "scrub", help="integrity-walk every store entry; quarantine "
                      "mismatches")
    scrub_p.add_argument("--store", metavar="DIR", default=".repro-store",
                         help="result store directory")
    scrub_p.add_argument("--repair", action="store_true",
                         help="re-run reconstructable quarantined entries "
                              "through a local pool")
    scrub_p.add_argument("--workers", type=int, default=None,
                         help="pool size for --repair (default: CPU count)")
    scrub_p.add_argument("--json", metavar="PATH", default=None,
                         help="write the scrub report as JSON")

    submit_p = sub.add_parser(
        "submit", help="submit simulation jobs to a running service")
    submit_p.add_argument("--url", default="http://127.0.0.1:8642")
    submit_p.add_argument("--core", choices=sorted(_CORES), default="casino")
    submit_p.add_argument("--app", default="milc")
    submit_p.add_argument("--batch", metavar="CORE:APP,CORE:APP,...",
                          default=None,
                          help="submit several (core, app) jobs at once")
    submit_p.add_argument("-n", type=int, default=24_000)
    submit_p.add_argument("--warmup", type=int, default=6_000)
    submit_p.add_argument("--priority", type=int, default=100,
                          help="lower numbers are served first")
    submit_p.add_argument("--retries-on-busy", type=int, default=0,
                          help="resubmission attempts on 429/503 or "
                               "connection failure (capped exponential "
                               "backoff + jitter)")
    submit_p.add_argument("--deadline", type=float, default=None,
                          help="overall submission deadline in seconds "
                               "across all retries")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until every job finishes, then print "
                               "a result table")
    submit_p.add_argument("--wait-timeout", type=float, default=600.0)
    submit_p.add_argument("--json", metavar="PATH", default=None,
                          help="with --wait: write final job states + stats")

    args = parser.parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run,
            "compare": _cmd_compare, "explain": _cmd_explain,
            "figure": _cmd_figure,
            "characterize": _cmd_characterize, "trace": _cmd_trace,
            "sweep": _cmd_sweep, "serve": _cmd_serve,
            "store": _cmd_store, "submit": _cmd_submit}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
