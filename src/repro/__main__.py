"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                     show the 25 synthetic applications
``run --core X --app Y``     simulate one (core, app) pair and print stats
``compare --app Y``          all Table I cores on one application
``figure figN``              regenerate one figure of the paper
``sweep [out.txt]``          all figures, checkpointed + failure-tolerant
"""

from __future__ import annotations

import argparse
import sys

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.harness.runner import Runner
from repro.harness.tables import format_table
from repro.workloads.suite import SUITE, get_profile

_CORES = {
    "ino": make_ino_config,
    "casino": make_casino_config,
    "ooo": make_ooo_config,
    "lsc": make_lsc_config,
    "freeway": make_freeway_config,
    "specino": make_specino_config,
}

_FIGURES = {
    "fig2": "repro.experiments.fig2_specino_potential",
    "fig6": "repro.experiments.fig6_ipc",
    "fig7": "repro.experiments.fig7_renaming",
    "fig8": "repro.experiments.fig8_memdisambig",
    "fig9": "repro.experiments.fig9_area_energy",
    "fig10": "repro.experiments.fig10_design_space",
    "fig11": "repro.experiments.fig11_wider_issue",
}


def _cmd_list(_args) -> int:
    rows = [[p.name, p.n_instrs, p.footprint_kib,
             f"{p.frac_mem:.2f}", f"{p.frac_fp:.2f}"]
            for p in SUITE.values()]
    print(format_table(["app", "instrs", "footprint KiB", "mem frac",
                        "fp frac"], rows))
    return 0


def _cmd_run(args) -> int:
    if args.config:
        from repro.common.config_io import load_core_config
        cfg = load_core_config(args.config)
    else:
        cfg = _CORES[args.core]()
    runner = Runner(n_instrs=args.n, warmup=args.warmup,
                    sanitize=True if args.sanitize else None)
    res = runner.run(cfg, get_profile(args.app))
    stats = res.stats
    print(f"{args.core} on {args.app}: IPC {res.ipc:.3f} "
          f"({int(stats.committed)} instrs, {int(stats.cycles)} cycles)")
    print(f"energy {res.energy.total_j * 1e6:.2f} uJ "
          f"({res.energy.epi_nj:.2f} nJ/inst)")
    interesting = ("issued_spec", "issued_iq", "siq_passes", "sq_searches",
                   "osca_search_skips", "mem_order_violations",
                   "l1d_misses", "dram_accesses", "bp_mispredicts")
    rows = [[k, int(stats.get(k))] for k in interesting if k in stats]
    if rows:
        print(format_table(["counter", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    runner = Runner(n_instrs=args.n, warmup=args.warmup,
                    sanitize=True if args.sanitize else None)
    profile = get_profile(args.app)
    rows = []
    base = None
    for name in ("ino", "lsc", "freeway", "casino", "ooo"):
        res = runner.run(_CORES[name](), profile)
        if base is None:
            base = res
        rows.append([name, res.ipc, res.ipc / base.ipc,
                     res.energy.total_j / base.energy.total_j])
    print(f"{args.app} ({profile.n_instrs} instrs)")
    print(format_table(["core", "IPC", "speedup", "energy (rel)"], rows))
    return 0


def _cmd_characterize(args) -> int:
    from repro.workloads.characterize import characterize
    from repro.workloads.generator import SyntheticWorkload
    profile = get_profile(args.app)
    trace = SyntheticWorkload(profile).generate(args.n)
    measured = characterize(trace)
    rows = [[key, value] for key, value in measured.as_dict().items()]
    print(f"{args.app} ({args.n} instructions)")
    print(format_table(["metric", "value"], rows, float_fmt="{:.4f}"))
    return 0


def _cmd_figure(args) -> int:
    import importlib
    module = importlib.import_module(_FIGURES[args.name])
    if args.json:
        from repro.harness.export import write_json
        if args.name == "fig10":
            results = {"iq_sweep": module.run_iq_sweep(),
                       "ws_so_sweep": module.run_ws_so_sweep()}
        else:
            results = module.run()
        write_json(results, args.json)
        print(f"wrote {args.json}")
    else:
        module.main()
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import run_cli
    return run_cli(output=args.output, checkpoint=args.checkpoint,
                   resume=not args.no_resume, retries=args.retries,
                   sanitize=True if args.sanitize else None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="CASINO core reproduction (HPCA 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the synthetic applications")

    run_p = sub.add_parser("run", help="simulate one (core, app) pair")
    run_p.add_argument("--core", choices=sorted(_CORES), default="casino")
    run_p.add_argument("--config", metavar="JSON", default=None,
                       help="load the core config from a JSON file instead")
    run_p.add_argument("--app", default="milc")
    run_p.add_argument("-n", type=int, default=24_000)
    run_p.add_argument("--warmup", type=int, default=6_000)
    run_p.add_argument("--sanitize", action="store_true",
                       help="check microarchitectural invariants every cycle")

    cmp_p = sub.add_parser("compare", help="all cores on one application")
    cmp_p.add_argument("--app", default="milc")
    cmp_p.add_argument("-n", type=int, default=24_000)
    cmp_p.add_argument("--warmup", type=int, default=6_000)
    cmp_p.add_argument("--sanitize", action="store_true",
                       help="check microarchitectural invariants every cycle")

    char_p = sub.add_parser("characterize",
                            help="measure a synthetic application's trace")
    char_p.add_argument("--app", default="milc")
    char_p.add_argument("-n", type=int, default=24_000)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("name", choices=sorted(_FIGURES))
    fig_p.add_argument("--json", metavar="PATH", default=None,
                       help="write raw results as JSON instead of a table")

    sweep_p = sub.add_parser(
        "sweep", help="run every figure with checkpointing and retries")
    sweep_p.add_argument("output", nargs="?", default="experiments_out.txt")
    sweep_p.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="checkpoint file (default <output>.ckpt.json)")
    sweep_p.add_argument("--no-resume", action="store_true",
                         help="discard any existing checkpoint and restart")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="retry-with-reseed attempts per failed run")
    sweep_p.add_argument("--sanitize", action="store_true",
                         help="check microarchitectural invariants every cycle")

    args = parser.parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run,
            "compare": _cmd_compare, "figure": _cmd_figure,
            "characterize": _cmd_characterize,
            "sweep": _cmd_sweep}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
